"""SimGraph: homophily-based fast post recommendation.

A complete reproduction of "An Homophily-based Approach for Fast Post
Recommendation on Twitter" (Grossetti, Constantin, du Mouza, Travers —
EDBT 2018): the popularity-adjusted similarity measure, the 2-hop
SimGraph construction, the convergent propagation model with its
threshold and scheduling optimizations, the three competitor systems
(collaborative filtering, Bayesian inference, GraphJet), a synthetic
Twitter-scale data generator, and the paper's full evaluation protocol.

Quickstart
----------
>>> from repro import SynthConfig, generate_dataset, SimGraphRecommender
>>> from repro.data import temporal_split
>>> dataset = generate_dataset(SynthConfig(n_users=300, seed=1))
>>> split = temporal_split(dataset)
>>> recommender = SimGraphRecommender()
>>> recommender.fit(dataset, split.train)
>>> recs = recommender.on_event(split.test[0])
"""

from repro.baselines import (
    BayesRecommender,
    CollaborativeFilteringRecommender,
    GraphJetRecommender,
    Recommendation,
    Recommender,
)
from repro.core import (
    DEFAULT_TAU,
    DynamicThreshold,
    LinearSystem,
    NoThreshold,
    PropagationEngine,
    RetweetProfiles,
    SimGraph,
    SimGraphBuilder,
    SimGraphRecommender,
    StaticThreshold,
    similarity,
)
from repro.data import TwitterDataset, temporal_split
from repro.exceptions import (
    ConfigError,
    ConvergenceError,
    DatasetError,
    EvaluationError,
    GraphError,
    ReproError,
)
from repro.synth import SynthConfig, generate_dataset

__version__ = "1.0.0"

__all__ = [
    "BayesRecommender",
    "CollaborativeFilteringRecommender",
    "ConfigError",
    "ConvergenceError",
    "DEFAULT_TAU",
    "DatasetError",
    "DynamicThreshold",
    "EvaluationError",
    "GraphError",
    "GraphJetRecommender",
    "LinearSystem",
    "NoThreshold",
    "PropagationEngine",
    "Recommendation",
    "Recommender",
    "ReproError",
    "RetweetProfiles",
    "SimGraph",
    "SimGraphBuilder",
    "SimGraphRecommender",
    "StaticThreshold",
    "SynthConfig",
    "TwitterDataset",
    "__version__",
    "generate_dataset",
    "similarity",
    "temporal_split",
]
