"""An online recommendation service over the SimGraph stack.

The paper describes components (similarity graph, propagation, postponed
computation, periodic maintenance) — this module wires them into the
deployable object a platform would actually run:

* **ingestion** — users, follows, tweets and retweets arrive as events in
  simulated time; retweets trigger (possibly postponed) propagation;
* **delivery** — recommendations pass an *online* daily per-user budget:
  at most ``daily_budget`` notifications per user per day, first-come at
  emission time (a live service cannot retro-rank a day it has already
  delivered);
* **maintenance** — the SimGraph is rebuilt on a simulated-time interval
  with any §6.3 update strategy (default *crossfold*, the paper's
  recommended cheap refresh).

Example
-------
>>> from repro.service import RecommendationService, ServiceConfig
>>> service = RecommendationService(ServiceConfig(daily_budget=10))
>>> service.add_user(1); service.add_user(2); service.add_user(3)
>>> service.add_follow(2, 1); service.add_follow(3, 1)
>>> service.post_tweet(tweet_id=7, author=1, at=0.0)
>>> notifications = service.retweet(user=2, tweet=7, at=60.0)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.baselines.base import Recommendation
from repro.core.csr import ArraySimGraph, CSRSimGraph
from repro.core.propagation_csr import CSRWarmState
from repro.core.linear import LinearSystem
from repro.core.profiles import RetweetProfiles
from repro.core.propagation_csr import PROP_BACKENDS, make_propagation_engine
from repro.core.propagation_kernel import resolve_prop_backend
from repro.core.scheduler import DelayPolicy, PostponedScheduler, PropagationTask
from repro.core.simgraph import BACKENDS, DEFAULT_TAU, SimGraph, SimGraphBuilder
from repro.core.thresholds import DynamicThreshold, ThresholdPolicy
from repro.core.delta import DeltaReport, affected_region, apply_delta
from repro.core.update import ALL_STRATEGIES
from repro.core.warmcache import DEFAULT_CAPACITY, WarmStateCache
from repro.data.models import Retweet, Tweet
from repro.exceptions import ConfigError, DatasetError
from repro.graph.digraph import DiGraph
from repro.obs import MetricsRegistry

__all__ = ["ServiceConfig", "ServiceStats", "RecommendationService"]

DAY = 86400.0
HOUR = 3600.0


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment knobs of the online service."""

    #: Similarity threshold of SimGraph construction.
    tau: float = DEFAULT_TAU
    #: Maximum notifications per user per day.
    daily_budget: int = 30
    #: Minimum propagation probability worth notifying about.
    min_score: float = 1e-4
    #: Tweets older than this are never propagated (paper's 72h rule).
    max_tweet_age: float = 72 * HOUR
    #: Simulated seconds between SimGraph maintenance runs.
    rebuild_interval: float = 7 * DAY
    #: §6.3 strategy used at maintenance time.
    rebuild_strategy: str = "crossfold"
    #: Postpone propagation per tweet (None = propagate per retweet).
    use_scheduler: bool = True
    #: SimGraph build backend: "reference" (pure-Python loop) or
    #: "vectorized" (sparse matmul; identical edges, faster rebuilds).
    backend: str = "reference"
    #: Process count for vectorized chunked rebuilds.
    build_workers: int = 1
    #: Propagation backend: "reference" (pure-Python frontier loop),
    #: "csr" (compiled numpy arrays), "numba" (jitted kernel, falls back
    #: to csr when numba is absent) or "auto" (fastest available).
    #: Identical results on every backend.
    prop_backend: str = "reference"
    #: LRU bound of the per-tweet warm-state cache (entries also expire
    #: with the ``max_tweet_age`` horizon).
    warm_cache_size: int = DEFAULT_CAPACITY

    def __post_init__(self) -> None:
        if self.daily_budget < 1:
            raise ConfigError("daily_budget must be at least 1")
        if self.rebuild_interval <= 0:
            raise ConfigError("rebuild_interval must be positive")
        if self.rebuild_strategy not in ALL_STRATEGIES:
            raise ConfigError(
                f"unknown rebuild strategy {self.rebuild_strategy!r}; "
                f"available: {sorted(ALL_STRATEGIES)}"
            )
        if self.tau < 0:
            raise ConfigError("tau must be non-negative")
        if not 0 < self.min_score < 1:
            raise ConfigError("min_score must be in (0, 1)")
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown backend {self.backend!r}; "
                f"available: {', '.join(BACKENDS)}"
            )
        if self.build_workers < 1:
            raise ConfigError("build_workers must be at least 1")
        if self.prop_backend not in PROP_BACKENDS:
            from repro.core.propagation_kernel import describe_backends

            raise ConfigError(
                f"unknown propagation backend {self.prop_backend!r}; "
                f"available: {describe_backends()}"
            )
        if self.warm_cache_size < 1:
            raise ConfigError("warm_cache_size must be at least 1")


@dataclass
class ServiceStats:
    """Running counters of one service instance.

    ``warm_hits`` / ``warm_misses`` / ``queue_depth`` mirror the current
    warm-cache and scheduler state (refreshed on every ingest and by
    :meth:`RecommendationService.metrics_snapshot`): the serving layer's
    load harness reads them to assert that degraded answers really came
    from cache and that backpressure tracks the scheduler backlog.
    """

    events_ingested: int = 0
    propagations_run: int = 0
    notifications_delivered: int = 0
    notifications_suppressed: int = 0
    rebuilds: int = 0
    last_rebuild_at: float = field(default=0.0)
    warm_hits: int = 0
    warm_misses: int = 0
    queue_depth: int = 0


class RecommendationService:
    """Stateful online recommender (see module docstring).

    The service always carries a live :class:`~repro.obs.MetricsRegistry`
    (pass your own to share one across components): every subsystem it
    owns — scheduler, propagation engine, SimGraph builder — reports into
    it, and :meth:`metrics_snapshot` exposes the aggregate.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        threshold: ThresholdPolicy | None = None,
        delay_policy: DelayPolicy | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.threshold = threshold if threshold is not None else DynamicThreshold()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.follow_graph = DiGraph()
        self.profiles = RetweetProfiles()
        self.tweets: dict[int, Tweet] = {}
        self._retweeters: dict[int, set[int]] = {}
        #: Followers who gained a follow edge since the last rebuild —
        #: their exploration neighbourhoods changed without any profile
        #: dirt, so the delta strategy must treat them as extra sources.
        self._new_follow_sources: set[int] = set()
        self._builder = SimGraphBuilder(
            tau=self.config.tau,
            backend=self.config.backend,
            workers=self.config.build_workers,
            metrics=self.metrics,
        )
        self._simgraph = SimGraph(DiGraph(), tau=self.config.tau)
        self._csr: CSRSimGraph | None = None
        # Resolve "numba"/"auto" to a concrete backend once per service:
        # the fallback warning/counter fires here, not on every rebuild.
        self._prop_resolved = resolve_prop_backend(
            self.config.prop_backend, metrics=self.metrics, context="service"
        )
        self._engine = self._make_engine(self._simgraph)
        self._scheduler = (
            PostponedScheduler(delay_policy or DelayPolicy(), metrics=self.metrics)
            if self.config.use_scheduler
            else None
        )
        self._warm = WarmStateCache(
            capacity=self.config.warm_cache_size,
            max_age=self.config.max_tweet_age,
            metrics=self.metrics,
        )
        self._delivered: dict[tuple[int, int], int] = {}
        self._known: set[tuple[int, int]] = set()
        self._clock = 0.0
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_user(self, user: int) -> None:
        """Register an account."""
        self.follow_graph.add_node(user)

    def add_follow(self, follower: int, followee: int) -> None:
        """Register a follow edge (auto-registers unknown accounts)."""
        if self.follow_graph.has_edge(follower, followee):
            return
        self.follow_graph.add_edge(follower, followee)
        self._new_follow_sources.add(follower)

    def post_tweet(self, tweet_id: int, author: int, at: float) -> None:
        """Register an original post."""
        if tweet_id in self.tweets:
            raise DatasetError(f"duplicate tweet id {tweet_id}")
        self._advance(at)
        self.tweets[tweet_id] = Tweet(id=tweet_id, author=author, created_at=at)

    def retweet(self, user: int, tweet: int, at: float) -> list[Recommendation]:
        """Ingest a sharing action; return the notifications it released.

        Triggers due propagation batches (scheduler mode) or an immediate
        propagation, applies the online budget, and updates profiles —
        so similarity data is always current for the next maintenance.
        """
        if tweet not in self.tweets:
            raise DatasetError(f"unknown tweet id {tweet}")
        started = time.perf_counter()
        self._advance(at)
        self.stats.events_ingested += 1
        self.metrics.counter("service.events").inc()
        event = Retweet(user=user, tweet=tweet, time=at)
        if self._scheduler is not None:
            released = self._run_tasks(self._scheduler.offer(event))
            self._absorb(event)
        else:
            self._absorb(event)
            task = PropagationTask(tweet=tweet, users=(user,), due_time=at)
            released = self._run_tasks([task])
        delivered = self._deliver(released)
        self.metrics.histogram("service.retweet_seconds", timing=True).observe(
            time.perf_counter() - started
        )
        self._refresh_health()
        return delivered

    def ingest_batch(
        self, events: Sequence[tuple[int, int, float]]
    ) -> list[list[Recommendation]]:
        """Ingest an ordered run of retweets with coalesced propagation.

        ``events`` are ``(user, tweet, at)`` triples in non-decreasing
        time order.  The result is exactly what ``[self.retweet(u, t, a)
        for u, t, a in events]`` would return — same notifications, same
        budget accounting, same profile/scheduler/warm-cache state — but
        the propagation tasks released across the run are *deferred* and
        scored by as few joint :meth:`propagate_many` invocations as
        correctness allows.  This is the micro-batching entry point of
        the serving layer (:mod:`repro.serve`): at saturation the batch
        amortizes the engine dispatch that per-request ingestion pays
        per event.

        Deferral never crosses a correctness boundary; the pending batch
        is flushed before

        * an event whose tweet already has a deferred task (its absorb
          would retroactively grow that task's seed set, and its own
          delivery dedup could collide with the task's notifications);
        * any released task for a tweet already deferred (same reason,
          defensive — the scheduler cannot actually re-release a tweet
          buffered in this run without the previous rule firing first);
        * an event whose timestamp makes maintenance due (the rebuild
          recompiles the engine and invalidates warm state, so deferred
          work must be scored against the pre-rebuild graph it was
          released under).

        The only tolerated divergence from sequential ingestion is
        warm-cache **LRU victim order** when the cache thrashes at
        capacity within a single batch (reads happen before the batch's
        writes instead of interleaved); entries never outlive their 72h
        horizon either way.

        Unknown tweet ids raise :class:`DatasetError` before any state
        changes (the per-event path validates the same way, just one
        event at a time).
        """
        unknown = sorted({t for _, t, _ in events if t not in self.tweets})
        if unknown:
            raise DatasetError(f"unknown tweet ids {unknown}")
        delivered: list[list[Recommendation]] = [[] for _ in events]
        pending: list[tuple[int, PropagationTask]] = []
        pending_tweets: set[int] = set()

        def flush_pending() -> None:
            if not pending:
                return
            per_task = self._score_tasks([task for _, task in pending])
            by_owner: dict[int, list[Recommendation]] = {}
            for (owner, _), recs in zip(pending, per_task):
                by_owner.setdefault(owner, []).extend(recs)
            # Sequential ingestion delivers each event's released batch
            # in one _deliver call; replay that grouping in event order.
            for owner in sorted(by_owner):
                delivered[owner].extend(self._deliver(by_owner[owner]))
            pending.clear()
            pending_tweets.clear()

        for i, (user, tweet, at) in enumerate(events):
            if pending and self._rebuild_due(at):
                flush_pending()
            if tweet in pending_tweets:
                flush_pending()
            started = time.perf_counter()
            self._advance(at)
            self.stats.events_ingested += 1
            self.metrics.counter("service.events").inc()
            event = Retweet(user=user, tweet=tweet, time=at)
            if self._scheduler is not None:
                released = self._scheduler.offer(event)
                self._absorb(event)
            else:
                self._absorb(event)
                released = [
                    PropagationTask(tweet=tweet, users=(user,), due_time=at)
                ]
            for task in released:
                if task.tweet in pending_tweets:
                    flush_pending()
                pending.append((i, task))
                pending_tweets.add(task.tweet)
            self.metrics.histogram(
                "service.retweet_seconds", timing=True
            ).observe(time.perf_counter() - started)
        flush_pending()
        self._refresh_health()
        return delivered

    def absorb_retweet(self, user: int, tweet: int) -> None:
        """Absorb a retweet into profiles without clock or propagation.

        The bulk warm-up path (mirroring the sharded coordinator's method
        of the same name): history replayed this way is visible to the
        next :meth:`rebuild` and to future propagations of ``tweet``, but
        triggers no scoring, delivery or scheduler work.
        """
        self._absorb(Retweet(user=user, tweet=tweet, time=self._clock))

    def warm_answer(
        self, user: int, tweet: int, at: float
    ) -> list[Recommendation] | None:
        """Degraded-mode ingestion: absorb the event, answer from cache.

        The serving layer's overload escape hatch (the middle rung of its
        full → warm-cache-only → shed ladder).  The retweet still lands
        in the profiles/retweeter state — future maintenance and any
        later full propagation of ``tweet`` see it — but no propagation
        runs.  The answer is a read-only view of the warm cache's last
        fixpoint for ``tweet`` (non-seed users at or above
        ``min_score``), or ``None`` when no warm state exists.  Nothing
        is *delivered*: daily budgets and the known-pair dedup are
        untouched, so a degraded answer never corrupts the bookkeeping a
        later full propagation relies on.
        """
        if tweet not in self.tweets:
            raise DatasetError(f"unknown tweet id {tweet}")
        self._advance(at)
        self.stats.events_ingested += 1
        self.metrics.counter("service.events").inc()
        self.metrics.counter("service.warm_answers").inc()
        self._absorb(Retweet(user=user, tweet=tweet, time=at))
        state = self._warm.get(tweet, now=at)
        self._refresh_health()
        if state is None:
            self.metrics.counter("service.warm_answer_misses").inc()
            return None
        seeds = self._retweeters.get(tweet, set())
        return [
            Recommendation(user=u, tweet=tweet, score=p, time=at)
            for u, p in sorted(self._state_scores(state).items())
            if u not in seeds and p >= self.config.min_score
        ]

    def warm_scores(
        self, tweet_ids: Iterable[int]
    ) -> dict[int, dict[int, float] | None]:
        """Read-only warm-cache scores per tweet (``None`` on a miss).

        The degraded counterpart of :meth:`score_batch`: no clock
        movement, no propagation — just the cached fixpoint filtered to
        non-seeds at or above ``min_score``.  Unknown tweets raise, like
        every scoring entry point.
        """
        out: dict[int, dict[int, float] | None] = {}
        for tweet in tweet_ids:
            if tweet not in self.tweets:
                raise DatasetError(f"unknown tweet id {tweet}")
            state = self._warm.get(tweet)
            if state is None:
                out[tweet] = None
                continue
            seeds = self._retweeters.get(tweet, set())
            out[tweet] = {
                u: p
                for u, p in sorted(self._state_scores(state).items())
                if u not in seeds and p >= self.config.min_score
            }
        return out

    def _state_scores(self, state) -> dict[int, float]:
        """Decode a cached warm state into a ``{user: p}`` mapping."""
        if isinstance(state, CSRWarmState):
            scores = dict(
                zip(
                    state.graph.users[state.indices].tolist(),
                    state.values.tolist(),
                )
            )
            scores.update(state.extra)
            return scores
        return dict(state)

    def flush(self, now: float | None = None) -> list[Recommendation]:
        """Drain the scheduler (end of stream / shutdown)."""
        if self._scheduler is None:
            return []
        if now is not None:
            self._advance(now)
        # The whole drained backlog is scored by one batched engine
        # invocation (the CSR backend advances every task jointly).
        released = self._run_tasks(self._scheduler.flush(now=self._clock))
        delivered = self._deliver(released)
        self._refresh_health()
        return delivered

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def rebuild(self, strategy: str | None = None) -> SimGraph:
        """Refresh the SimGraph now with ``strategy`` (default from config).

        The ``"delta"`` strategy runs the scoped maintenance engine
        (:mod:`repro.core.delta`): only the affected region — users
        whose profiles changed since the last rebuild, co-retweeters of
        weight-changed tweets, followers whose candidate sets grew, and
        their exploration fringe — is rescored.  Its report then drives
        two further scoped paths: in-place CSR row patching
        (:meth:`~repro.core.csr.CSRSimGraph.patch_rows`) when no row
        changed topology, and warm-cache invalidation restricted to
        tweets whose seeds intersect the affected users.
        """
        name = strategy if strategy is not None else self.config.rebuild_strategy
        if name not in ALL_STRATEGIES:
            raise ConfigError(f"unknown rebuild strategy {name!r}")
        started = time.perf_counter()
        report: DeltaReport | None = None
        with self.metrics.span("service.rebuild"):
            if (
                self.stats.rebuilds == 0
                or name == "from scratch"
                or self._simgraph.edge_count == 0
            ):
                # First build, explicit rebuild, or bootstrap from an empty
                # graph must come from the follow graph: the incremental
                # strategies need a previous SimGraph with edges to refresh.
                used = "from scratch"
                refreshed = self._builder.build(self.follow_graph, self.profiles)
            elif name == "delta":
                used = name
                extra: set[int] = set()
                for follower in self._new_follow_sources:
                    extra.add(follower)
                    if follower in self.follow_graph:
                        # The new edge also extends the 2-hop reach of
                        # everyone already following the follower.
                        extra.update(self.follow_graph.predecessors(follower))
                plan = affected_region(
                    self.profiles,
                    self.follow_graph,
                    extra_sources=sorted(extra),
                    hops=self._builder.hops,
                )
                refreshed, report = apply_delta(
                    self._simgraph,
                    self.follow_graph,
                    self.profiles,
                    self._builder,
                    plan=plan,
                    metrics=self.metrics,
                )
            else:
                used = name
                refreshed = ALL_STRATEGIES[name](
                    self._simgraph, self.follow_graph, self.profiles, self._builder
                )
        self.metrics.counter(f"service.rebuild[{used}]").inc()
        self.metrics.histogram(
            f"service.rebuild_seconds[{used}]", timing=True
        ).observe(time.perf_counter() - started)
        # Dirt consumed: every strategy has now seen the accumulated
        # profile changes and follow additions.
        self.profiles.mark_clean()
        self._new_follow_sources.clear()
        self._simgraph = refreshed
        self._engine = self._make_engine(refreshed, report=report)
        self._invalidate_warm(report)
        self.stats.rebuilds += 1
        self.stats.last_rebuild_at = self._clock
        return refreshed

    def load_snapshot(self, path, mmap: bool = True) -> SimGraph:
        """Adopt a persisted SimGraph snapshot as the current graph.

        The paper-scale warm-start path: instead of replaying history
        and rebuilding, a service instance boots from a binary v2
        snapshot (:func:`repro.core.persistence.load_simgraph`) —
        memory-mapped by default, so adoption is milliseconds even at
        millions of edges.  The load counts as a rebuild: current
        profile dirt is considered consumed (the snapshot is presumed
        built from equivalent state) and the next maintenance run is
        scheduled one ``rebuild_interval`` out rather than immediately,
        which would discard the loaded graph.

        On the ``csr`` propagation backend a memory-mapped graph
        compiles zero-copy; its arrays are read-only, so later
        maintenance recompiles instead of patching in place (the patch
        paths detect this themselves).
        """
        from repro.core.persistence import load_simgraph

        simgraph = load_simgraph(path, mmap=mmap)
        self._simgraph = simgraph
        self._csr = None
        if self._prop_resolved in ("csr", "numba"):
            if isinstance(simgraph, ArraySimGraph):
                self._csr = simgraph.csr()
            else:
                self._csr = CSRSimGraph.from_simgraph(simgraph)
            self.metrics.counter("propagation.csr_compiled").inc()
        self._engine = make_propagation_engine(
            simgraph,
            prop_backend=self._prop_resolved,
            threshold=self.threshold,
            metrics=self.metrics,
            csr=self._csr,
        )
        self._warm.clear()
        self.profiles.mark_clean()
        self._new_follow_sources.clear()
        self.stats.rebuilds += 1
        self.stats.last_rebuild_at = self._clock
        self.metrics.counter("service.snapshot_loads").inc()
        return simgraph

    def _invalidate_warm(self, report: DeltaReport | None) -> None:
        """Drop warm propagation state made stale by a rebuild.

        Without a delta report (any non-delta strategy) or after a
        topology change, every cached fixpoint may reference rows that
        no longer exist — full flush.  A weights-only delta keeps all
        topology, so only tweets whose seed sets intersect the affected
        users are evicted; a cached fixpoint can also *transitively*
        touch re-weighed rows, but warm state is only ever a starting
        point for further propagation, so the bounded staleness trades
        a deterministic, strictly-scoped flush for recomputation work.
        """
        if report is None or report.topology_changed:
            self._warm.clear()
            return
        if report.noop:
            return
        affected = report.affected_users
        stale = [
            tweet
            for tweet in self._warm.tweets()
            if not self._retweeters.get(tweet, set()).isdisjoint(affected)
        ]
        dropped = self._warm.invalidate_tweets(stale)
        self.metrics.counter("maintenance.cache_invalidations").inc(dropped)

    def _make_engine(
        self, simgraph: SimGraph, report: DeltaReport | None = None
    ):
        """Propagation engine for ``simgraph`` on the configured backend.

        On the compiled backends (``csr`` and the kernel's ``numba``,
        which shares the same structure) the compiled CSR is refreshed
        here: a delta report with unchanged topology patches only the
        changed rows in place
        (:meth:`~repro.core.csr.CSRSimGraph.patch_rows`); a weights-only
        rebuild without a report patches the full weight array; anything
        else recompiles.
        """
        if self._prop_resolved in ("csr", "numba"):
            patched = False
            if (
                self._csr is not None
                and report is not None
                and not report.topology_changed
            ):
                if report.noop:
                    patched = True
                elif self._csr.patch_rows(
                    simgraph, sorted(report.changed_users)
                ):
                    self.metrics.counter("propagation.csr_rows_patched").inc()
                    patched = True
            if not patched:
                if self._csr is not None and self._csr.patch_weights(simgraph):
                    self.metrics.counter("propagation.csr_patched").inc()
                else:
                    self._csr = CSRSimGraph.from_simgraph(simgraph)
                    self.metrics.counter("propagation.csr_compiled").inc()
        return make_propagation_engine(
            simgraph,
            prop_backend=self._prop_resolved,
            threshold=self.threshold,
            metrics=self.metrics,
            csr=self._csr,
        )

    @property
    def simgraph(self) -> SimGraph:
        """The current similarity graph."""
        return self._simgraph

    def metrics_snapshot(self, deterministic: bool = False) -> dict:
        """JSON-ready snapshot of every metric the service accumulated.

        With ``deterministic=True`` wall-clock measurements are stripped
        so two runs over the same event stream compare byte-identical.
        """
        self._refresh_health()
        return self.metrics.snapshot(deterministic=deterministic)

    def _refresh_health(self) -> None:
        """Mirror warm-cache and backlog state into stats and gauges.

        Every ingestion path and :meth:`metrics_snapshot` call this, so
        ``service.warm_hits`` / ``service.warm_misses`` /
        ``service.queue_depth`` are always current when the serving
        layer's load harness reads a snapshot mid-stream.
        """
        self.stats.warm_hits = self._warm.hits
        self.stats.warm_misses = self._warm.misses
        self.stats.queue_depth = (
            self._scheduler.pending_count if self._scheduler is not None else 0
        )
        self.metrics.gauge("service.warm_hits").set(self.stats.warm_hits)
        self.metrics.gauge("service.warm_misses").set(self.stats.warm_misses)
        self.metrics.gauge("service.queue_depth").set(self.stats.queue_depth)

    # ------------------------------------------------------------------
    # Batch scoring
    # ------------------------------------------------------------------
    def score_batch(self, tweet_ids: list[int]) -> dict[int, dict[int, float]]:
        """Score several live tweets in one batched invocation.

        On the ``reference`` backend every requested tweet's exact
        linear-system fixpoint is computed from its current retweeters,
        all systems stacked into a single
        :meth:`LinearSystem.solve_many_direct` call.  On the compiled
        backends (``csr`` / ``numba``, including what ``auto`` resolves
        to) the batch goes through the engine's joint
        :meth:`propagate_many` path instead — the same cold-start
        frontier fixpoint the live ingestion path emits, amortized
        across the batch rather than dispatched per tweet.  Results are
        identical to scoring each tweet through a single
        ``engine.propagate`` call (the batched kernel is bit-identical
        to the singles); the test suite pins both equalities.

        Returns ``{tweet: {user: probability}}`` with seeds removed and
        the configured ``min_score`` floor applied — the offline/backlog
        counterpart of the incremental per-event propagation.  Warm
        state is neither read nor written: batch scoring is a pure
        query.
        """
        unknown = [t for t in tweet_ids if t not in self.tweets]
        if unknown:
            raise DatasetError(f"unknown tweet ids {unknown}")
        seed_sets = [set(self._retweeters.get(t, set())) for t in tweet_ids]
        if self._prop_resolved in ("csr", "numba"):
            results = self._engine.propagate_many(
                seed_sets,
                popularities=[len(seeds) for seeds in seed_sets],
            )
            scored = [result.probabilities for result in results]
        else:
            system = LinearSystem(self._simgraph)
            scored = system.solve_many_direct(seed_sets)
        return {
            tweet: {
                user: p
                for user, p in probabilities.items()
                if user not in seeds and p >= self.config.min_score
            }
            for tweet, seeds, probabilities in zip(tweet_ids, seed_sets, scored)
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rebuild_due(self, at: float) -> bool:
        """Would advancing the clock to ``at`` trigger maintenance?

        Exposed as a predicate (not just inlined in :meth:`_advance`)
        because batched ingestion must flush deferred propagation
        *before* a rebuild invalidates the warm cache and recompiles the
        engine mid-batch.
        """
        due = self.stats.last_rebuild_at + self.config.rebuild_interval
        if self.stats.rebuilds == 0 or at >= due:
            return self.profiles.user_count > 0 or self.stats.rebuilds == 0
        return False

    def _advance(self, at: float) -> None:
        if at < self._clock:
            raise DatasetError(
                f"time must be monotone: {at} < current clock {self._clock}"
            )
        rebuild = self._rebuild_due(at)
        self._clock = at
        if rebuild:
            self.rebuild()

    def _absorb(self, event) -> None:
        self.profiles.add(event.user, event.tweet)
        self._retweeters.setdefault(event.tweet, set()).add(event.user)
        self._known.add((event.user, event.tweet))

    def _run_tasks(self, tasks: list[PropagationTask]) -> list[Recommendation]:
        """Score every released task in one batched engine invocation."""
        released: list[Recommendation] = []
        for recs in self._score_tasks(tasks):
            released.extend(recs)
        return released

    def _score_tasks(
        self, tasks: list[PropagationTask]
    ) -> list[list[Recommendation]]:
        """Per-task candidate notifications, one joint engine invocation.

        Returns a list aligned with ``tasks`` (age-skipped tasks yield an
        empty list) so batched ingestion can attribute each task's
        candidates back to the event that released it.
        """
        per_task: list[list[Recommendation]] = [[] for _ in tasks]
        runnable: list[tuple[int, PropagationTask, float | None, set[int]]] = []
        for i, task in enumerate(tasks):
            tweet = self.tweets.get(task.tweet)
            created_at = tweet.created_at if tweet is not None else None
            if created_at is not None:
                if task.due_time - created_at > self.config.max_tweet_age:
                    self._warm.pop(task.tweet)
                    continue
            seeds = set(self._retweeters.get(task.tweet, set()))
            seeds.update(task.users)
            self._retweeters[task.tweet] = seeds
            runnable.append((i, task, created_at, seeds))
        if not runnable:
            return per_task
        results = self._engine.propagate_many(
            [seeds for _, _, _, seeds in runnable],
            popularities=[len(seeds) for _, _, _, seeds in runnable],
            initials=[
                self._warm.get(task.tweet, now=task.due_time)
                for _, task, _, _ in runnable
            ],
        )
        self.stats.propagations_run += len(runnable)
        for (i, task, created_at, seeds), result, state in zip(
            runnable, results, self._engine.take_states()
        ):
            self._warm.put(
                task.tweet, state, created_at=created_at, now=task.due_time
            )
            # Sorted so the emission order is identical on both
            # propagation backends (their result dicts differ in order).
            per_task[i] = [
                Recommendation(
                    user=u, tweet=task.tweet, score=p, time=task.due_time
                )
                for u, p in sorted(result.nonseed_scores(seeds).items())
                if p >= self.config.min_score
            ]
        return per_task

    def _deliver(self, released: list[Recommendation]) -> list[Recommendation]:
        delivered: list[Recommendation] = []
        with self.metrics.span("budget"):
            for rec in sorted(released, key=lambda r: (-r.score, r.user, r.tweet)):
                if (rec.user, rec.tweet) in self._known:
                    continue
                day = int(rec.time // DAY)
                used = self._delivered.get((rec.user, day), 0)
                if used >= self.config.daily_budget:
                    self.stats.notifications_suppressed += 1
                    continue
                self._delivered[(rec.user, day)] = used + 1
                self._known.add((rec.user, rec.tweet))
                delivered.append(rec)
                self.stats.notifications_delivered += 1
        self.metrics.counter("budget.delivered").inc(len(delivered))
        self.metrics.counter("budget.rejections").inc(
            len(released) - len(delivered)
        )
        return delivered
