"""Online recommendation service: ingestion, budgeted delivery and
periodic SimGraph maintenance over the core stack."""

from repro.service.engine import RecommendationService, ServiceConfig, ServiceStats

__all__ = ["RecommendationService", "ServiceConfig", "ServiceStats"]
