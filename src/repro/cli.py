"""Command-line interface.

Eight subcommands cover the library's workflow::

    simgraph generate --users 1000 --seed 42 --out data/
    simgraph import --edges follow.txt --retweets rts.csv --out data/
    simgraph analyze data/                    # Table 1, Figs 2-4 summary
    simgraph build-simgraph data/ --tau 0.001 # Table 4 summary
    simgraph evaluate data/ --methods simgraph,cf --k 10,30
    simgraph maintain data/ --rebuild-strategy delta  # Fig 16 update cost
    simgraph serve data/ --split 0.9          # micro-batched replay
    simgraph loadgen --rate 500 --calibrate   # open-loop load + admission

(Installed as ``simgraph`` via the project entry point; also runnable as
``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from repro.core import RetweetProfiles, SimGraphBuilder, SimGraphRecommender
from repro.core.update import ALL_STRATEGIES
from repro.baselines import (
    BayesRecommender,
    CollaborativeFilteringRecommender,
    GraphJetRecommender,
    Recommender,
)
from repro.data import (
    assemble_dataset,
    compute_dataset_stats,
    load_dataset,
    load_edge_list,
    load_retweet_csv,
    save_dataset,
    temporal_split,
)
from repro.eval import evaluate_sweep, run_replay, select_target_users
from repro.obs import MetricsRegistry, render_report
from repro.synth import SynthConfig, generate_dataset
from repro.utils.tables import render_table

__all__ = ["main", "build_parser"]

METHODS = {
    "simgraph": SimGraphRecommender,
    "cf": CollaborativeFilteringRecommender,
    "bayes": BayesRecommender,
    "graphjet": GraphJetRecommender,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="simgraph",
        description="SimGraph: homophily-based post recommendation (EDBT 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("--users", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--communities", type=int, default=12)
    gen.add_argument("--out", required=True, help="output directory")

    imp = sub.add_parser(
        "import", help="import an edge list + retweet CSV as a dataset"
    )
    imp.add_argument("--edges", required=True, help="follow edge-list file")
    imp.add_argument("--retweets", required=True, help="retweet CSV file")
    imp.add_argument("--out", required=True, help="output directory")

    ana = sub.add_parser("analyze", help="characterize a dataset (Table 1)")
    ana.add_argument("dataset", help="dataset directory")
    ana.add_argument("--path-sample", type=int, default=150)

    build = sub.add_parser("build-simgraph", help="build and summarize a SimGraph")
    build.add_argument("dataset", help="dataset directory")
    build.add_argument("--tau", type=float, default=0.001)
    build.add_argument(
        "--backend",
        choices=["reference", "vectorized"],
        default="reference",
        help="similarity backend: 'reference' (pure-Python loops) or "
        "'vectorized' (scipy sparse matmul; identical edges, faster)",
    )
    build.add_argument(
        "--workers", type=int, default=1,
        help="process count for vectorized chunked builds",
    )
    build.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="collect build metrics, print an ASCII report and write the "
        "JSON snapshot to PATH",
    )
    build.add_argument(
        "--save-snapshot", default=None, metavar="PATH",
        help="persist the built SimGraph to PATH (atomic write)",
    )
    build.add_argument(
        "--snapshot-format", type=int, choices=[1, 2], default=2,
        help="snapshot format: 1 = JSONL edges (diffable), 2 = binary "
        "CSR blobs (mmap-loadable in milliseconds; default)",
    )

    ev = sub.add_parser("evaluate", help="replay-evaluate recommenders")
    ev.add_argument("dataset", help="dataset directory")
    ev.add_argument(
        "--methods",
        default="simgraph,cf,bayes,graphjet",
        help="comma-separated subset of: " + ",".join(METHODS),
    )
    ev.add_argument("--k", default="10,20,30,50,100,200",
                    help="comma-separated top-k values")
    ev.add_argument("--per-stratum", type=int, default=200)
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument(
        "--backend",
        choices=["reference", "vectorized"],
        default="reference",
        help="SimGraph build backend used by the simgraph method",
    )
    ev.add_argument(
        "--prop-backend",
        choices=["reference", "csr", "numba", "auto"],
        default="reference",
        help="propagation backend used by the simgraph method: "
        "'reference' (pure-Python frontier loop), 'csr' (compiled "
        "numpy arrays), 'numba' (jitted kernel; falls back to csr "
        "when numba is absent) or 'auto' (fastest available) — "
        "identical results on every backend",
    )
    ev.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="collect replay/propagation/budget metrics, print an ASCII "
        "report and write the JSON snapshot to PATH",
    )
    ev.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="additionally replay the sharded online service with N "
        "worker shards (bit-identical recommendations to the "
        "single-process service; always uses the reference backends)",
    )

    mnt = sub.add_parser(
        "maintain",
        help="absorb a stream delta into a prebuilt SimGraph (Figure 16)",
    )
    mnt.add_argument("dataset", help="dataset directory")
    mnt.add_argument(
        "--rebuild-strategy",
        choices=sorted(ALL_STRATEGIES),
        default="delta",
        help="update strategy applied to the delta window; 'delta' is "
        "the scoped engine (from-scratch-identical edges at a fraction "
        "of the cost)",
    )
    mnt.add_argument("--tau", type=float, default=0.001)
    mnt.add_argument(
        "--backend",
        choices=["reference", "vectorized"],
        default="reference",
        help="similarity backend used for the base build and recomputes",
    )
    mnt.add_argument(
        "--window", default="0.90,0.95", metavar="LO,HI",
        help="delta window as fractions of the full stream; the base "
        "SimGraph is built on the 90%% train slice",
    )
    mnt.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="collect maintenance metrics, print an ASCII report and "
        "write the JSON snapshot to PATH",
    )
    mnt.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="additionally run the maintenance window through the "
        "sharded coordinator with N in-process workers and verify its "
        "exported SimGraph matches the single-process result",
    )

    srv = sub.add_parser(
        "serve",
        help="replay a dataset's stream through the micro-batching "
        "asyncio front-end",
    )
    srv.add_argument("dataset", help="dataset directory")
    srv.add_argument(
        "--split", type=float, default=0.9, metavar="F",
        help="fraction of the retweet stream absorbed as history before "
        "the SimGraph build; the rest replays through the server",
    )
    srv.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="replay at most N live events (default: the whole tail)",
    )
    srv.add_argument("--max-batch", type=int, default=32,
                     help="micro-batch size cap")
    srv.add_argument(
        "--linger", type=float, default=0.002, metavar="S",
        help="max seconds a non-full batch waits for company",
    )
    srv.add_argument(
        "--admit-rate", type=float, default=None, metavar="EPS",
        help="token-bucket refill rate in events/sec (default: admission "
        "disabled — every request takes the full path)",
    )
    srv.add_argument(
        "--prop-backend",
        choices=["reference", "csr", "numba", "auto"],
        default="csr",
        help="propagation backend of the single-process service "
        "(ignored with --shards, which pins the reference backends)",
    )
    srv.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="serve from the sharded coordinator with N in-process "
        "workers instead of the single-process service (per-event "
        "dispatch: the coordinator has no batched ingest path)",
    )
    srv.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="print the obs report and write the JSON snapshot to PATH",
    )

    lg = sub.add_parser(
        "loadgen",
        help="open-loop load generation against a synthetic-primed server",
    )
    lg.add_argument("--users", type=int, default=400)
    lg.add_argument("--live-tweets", type=int, default=120)
    lg.add_argument("--events", type=int, default=1000)
    lg.add_argument("--seed", type=int, default=7)
    lg.add_argument(
        "--rate", type=float, default=500.0, metavar="EPS",
        help="offered arrival rate in events/sec",
    )
    lg.add_argument(
        "--profile", choices=["steady", "burst"], default="steady",
        help="arrival shape; 'burst' spends --burst-length seconds at "
        "--burst-rate every --burst-every seconds",
    )
    lg.add_argument("--burst-rate", type=float, default=None, metavar="EPS",
                    help="in-burst arrival rate (default: 4x --rate)")
    lg.add_argument("--burst-every", type=float, default=10.0, metavar="S")
    lg.add_argument("--burst-length", type=float, default=2.0, metavar="S")
    lg.add_argument("--max-batch", type=int, default=32)
    lg.add_argument("--linger", type=float, default=0.002, metavar="S")
    lg.add_argument(
        "--calibrate", action="store_true",
        help="measure the worker's closed-loop saturation first and "
        "calibrate token-bucket admission + degradation thresholds from "
        "the capacity model for --slo (default: admission disabled)",
    )
    lg.add_argument(
        "--slo", type=float, default=0.25, metavar="S",
        help="p99 latency target used by --calibrate",
    )
    lg.add_argument(
        "--prop-backend",
        choices=["reference", "csr", "numba", "auto"],
        default="csr",
    )
    lg.add_argument(
        "--no-scheduler", action="store_true",
        help="propagate per retweet instead of per delayed tweet batch",
    )
    lg.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the run report (statuses, exact percentiles, "
        "throughput) as JSON to PATH",
    )
    lg.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="print the obs report and write the JSON snapshot to PATH",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    config = SynthConfig(
        n_users=args.users, seed=args.seed, n_communities=args.communities
    )
    dataset = generate_dataset(config)
    path = save_dataset(dataset, args.out)
    print(f"wrote {dataset!r} to {path}")
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    dataset = assemble_dataset(
        load_edge_list(args.edges), load_retweet_csv(args.retweets)
    )
    path = save_dataset(dataset, args.out)
    print(f"imported {dataset!r} to {path}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    stats = compute_dataset_stats(dataset, path_sample_size=args.path_sample)
    print(render_table(["feature", "value"], stats.table1_rows(), title="Table 1"))
    print()
    print(render_table(
        ["retweets", "tweets"], stats.retweets_per_tweet_binned,
        title="Retweets per tweet (Figure 2)",
    ))
    survival = ", ".join(
        f"{frac:.0%} dead before {cp:.0f}h"
        for cp, frac in stats.lifetime_survival.items()
    )
    print(f"\nLifetime: {survival}")
    return 0


def _write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Print the ASCII metrics report and dump the snapshot to ``path``."""
    print()
    print(render_report(registry))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(registry.snapshot(), handle, sort_keys=True, indent=2)
        handle.write("\n")
    print(f"\nwrote metrics snapshot to {path}")


def _cmd_build_simgraph(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    profiles = RetweetProfiles(dataset.retweets())
    registry = MetricsRegistry() if args.metrics_json else None
    builder = SimGraphBuilder(
        tau=args.tau, backend=args.backend, workers=args.workers,
        metrics=registry,
    )
    simgraph = builder.build(dataset.follow_graph, profiles)
    print(render_table(
        ["feature", "value"], simgraph.table4_rows(),
        title=f"SimGraph (tau={args.tau}, backend={args.backend})",
    ))
    if args.save_snapshot:
        from repro.core.persistence import save_simgraph

        save_simgraph(simgraph, args.save_snapshot, format=args.snapshot_format)
        print(
            f"saved snapshot (format v{args.snapshot_format}) "
            f"to {args.save_snapshot}"
        )
    if registry is not None:
        _write_metrics(registry, args.metrics_json)
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    names = [m.strip() for m in args.methods.split(",") if m.strip()]
    unknown = [m for m in names if m not in METHODS]
    if unknown:
        print(f"unknown methods: {', '.join(unknown)}", file=sys.stderr)
        return 2
    k_values = [int(k) for k in args.k.split(",")]
    split = temporal_split(dataset)
    targets = select_target_users(
        split.train, per_stratum=args.per_stratum, seed=args.seed
    )
    registry = MetricsRegistry() if args.metrics_json else None
    recommenders: list[Recommender] = [
        METHODS[name](
            backend=args.backend,
            prop_backend=args.prop_backend,
            metrics=registry,
        )
        if name == "simgraph"
        else METHODS[name]()
        for name in names
    ]
    if args.shards:
        if args.shards < 1:
            print(f"--shards must be positive, got {args.shards}",
                  file=sys.stderr)
            return 2
        from repro.shard import ShardedServiceRecommender

        recommenders.append(
            ShardedServiceRecommender(args.shards, metrics=registry)
        )
    rows = []
    for recommender in recommenders:
        result = run_replay(
            recommender, dataset, split.train, split.test, targets.all_users,
            metrics=registry,
        )
        metrics = evaluate_sweep(
            result, k_values, dataset.popularity, metrics=registry
        )
        for m in metrics:
            rows.append([
                recommender.name, m.k, m.hits, round(m.precision, 5),
                round(m.recall, 4), round(m.f1, 5),
                round(m.recs_per_user_day, 2),
            ])
    print(render_table(
        ["method", "k", "hits", "precision", "recall", "F1", "recs/day/user"],
        rows, title="Replay evaluation",
    ))
    if registry is not None:
        _write_metrics(registry, args.metrics_json)
    return 0


def _cmd_maintain(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    split = temporal_split(dataset)
    try:
        lo, hi = (float(part) for part in args.window.split(","))
    except ValueError:
        print(f"bad --window {args.window!r}; expected LO,HI", file=sys.stderr)
        return 2
    extra = split.slice_test(lo, hi)
    registry = MetricsRegistry() if args.metrics_json else None
    builder = SimGraphBuilder(
        tau=args.tau, backend=args.backend, metrics=registry
    )
    profiles = RetweetProfiles(split.train)
    t0 = time.perf_counter()
    old = builder.build(dataset.follow_graph, profiles)
    build_cost = time.perf_counter() - t0
    profiles.mark_clean()
    profiles.extend(extra)
    dirty_users = len(profiles.dirty_users)
    t0 = time.perf_counter()
    refreshed = ALL_STRATEGIES[args.rebuild_strategy](
        old, dataset.follow_graph, profiles, builder
    )
    update_cost = time.perf_counter() - t0
    rows = [
        ["events absorbed", len(extra)],
        ["dirty users", dirty_users],
        ["nodes (before -> after)", f"{old.node_count} -> {refreshed.node_count}"],
        ["edges (before -> after)", f"{old.edge_count} -> {refreshed.edge_count}"],
        ["full build cost (s)", round(build_cost, 3)],
        ["update cost (s)", round(update_cost, 3)],
        ["speedup vs full build", f"{build_cost / max(update_cost, 1e-9):.1f}x"],
    ]
    print(render_table(
        ["feature", "value"], rows,
        title=f"Maintenance ({args.rebuild_strategy}, tau={args.tau})",
    ))
    if args.shards:
        code = _maintain_sharded(args, dataset, split, extra, refreshed, registry)
        if code:
            return code
    if registry is not None:
        _write_metrics(registry, args.metrics_json)
    return 0


def _maintain_sharded(args, dataset, split, extra, refreshed, registry) -> int:
    """Run the maintenance window through the sharded coordinator.

    Partitions the follow graph across ``args.shards`` in-process
    workers, replays the train profiles, performs a distributed base
    build, absorbs the delta window and applies the distributed update.
    The exported SimGraph must match the single-process ``refreshed``
    result (exact edge set, weights within 1e-12 — the reference and
    vectorized backends agree to that bound).
    """
    if args.shards < 1:
        print(f"--shards must be positive, got {args.shards}", file=sys.stderr)
        return 2
    if args.rebuild_strategy not in ("delta", "from scratch"):
        print(
            f"--shards supports the 'delta' and 'from scratch' strategies, "
            f"not {args.rebuild_strategy!r}",
            file=sys.stderr,
        )
        return 2
    from repro.service import ServiceConfig
    from repro.shard import ShardedRecommendationService

    service = ShardedRecommendationService(
        args.shards,
        config=ServiceConfig(rebuild_strategy="delta", tau=args.tau),
        start_method="inprocess",
        metrics=registry,
    )
    try:
        for user in sorted(dataset.users):
            service.add_user(user)
        for follower, followee, _ in dataset.follow_graph.edges():
            service.add_follow(follower, followee)
        for event in split.train:
            service.absorb_retweet(event.user, event.tweet)
        t0 = time.perf_counter()
        service.rebuild("from scratch")
        base_cost = time.perf_counter() - t0
        for event in extra:
            service.absorb_retweet(event.user, event.tweet)
        t0 = time.perf_counter()
        service.rebuild(args.rebuild_strategy)
        update_cost = time.perf_counter() - t0

        exported = service.export_simgraph()
        expected = {(u, v): w for u, v, w in refreshed.graph.edges()}
        got = {(u, v): w for u, v, w in exported.graph.edges()}
        matches = set(got) == set(expected) and all(
            abs(w - expected[pair]) <= 1e-12 for pair, w in got.items()
        )
        plan = service.plan
        snapshot = service.metrics_snapshot()
        counters = snapshot["counters"]
        rows = [
            ["workers", args.shards],
            ["shard sizes", ", ".join(str(s) for s in plan.shard_sizes())],
            ["boundary follow fraction",
             f"{plan.boundary_fraction(dataset.follow_graph):.3f}"],
            ["boundary simgraph fraction",
             f"{snapshot['gauges'].get('shard.boundary_edge_fraction', 0.0):.3f}"],
            ["cross-shard patch pairs",
             counters.get("shard.cross_shard_patch_pairs", 0)],
            ["sharded base build (s)", round(base_cost, 3)],
            ["sharded update (s)", round(update_cost, 3)],
            ["matches single-process", "yes" if matches else "NO"],
        ]
        print()
        print(render_table(
            ["feature", "value"], rows,
            title=f"Sharded maintenance ({args.shards} workers)",
        ))
        if not matches:
            print(
                "sharded maintenance diverged from the single-process result",
                file=sys.stderr,
            )
            return 1
    finally:
        service.close()
    return 0


def _write_metrics_snapshot(registry, path: str | None) -> None:
    if not path:
        return
    print()
    print(render_report(registry))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(registry.snapshot(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote metrics snapshot to {path}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        PostRequest,
        RetweetRequest,
        ServeConfig,
        serve_stream,
    )
    from repro.service import RecommendationService, ServiceConfig

    if not 0 <= args.split < 1:
        print(f"--split must be in [0, 1), got {args.split}", file=sys.stderr)
        return 2

    dataset = load_dataset(args.dataset)
    events = dataset.retweets()
    split_idx = int(len(events) * args.split)
    cutoff = events[split_idx].time if split_idx < len(events) else float("inf")
    history, tail = events[:split_idx], events[split_idx:]
    if args.limit is not None:
        tail = tail[: args.limit]

    registry = MetricsRegistry()
    if args.shards:
        from repro.shard import ShardedRecommendationService

        service = ShardedRecommendationService(
            n_shards=args.shards,
            config=ServiceConfig(rebuild_strategy="delta"),
            metrics=registry,
            start_method="inprocess",
        )
    else:
        service = RecommendationService(
            config=ServiceConfig(prop_backend=args.prop_backend),
            metrics=registry,
        )
    try:
        for user in dataset.users:
            service.add_user(user)
        for follower, followee, _ in dataset.follow_graph.edges():
            service.add_follow(follower, followee)
        # Posts before the cutoff land directly (time-ordered, so the
        # service clock stays monotone); later ones replay through the
        # server as control-plane requests interleaved with retweets.
        pending_posts = []
        for tweet in sorted(
            dataset.tweets.values(), key=lambda t: (t.created_at, t.id)
        ):
            if tweet.created_at < cutoff:
                service.post_tweet(
                    tweet_id=tweet.id, author=tweet.author, at=tweet.created_at
                )
            else:
                pending_posts.append(tweet)
        for event in history:
            service.absorb_retweet(event.user, event.tweet)
        service.rebuild("from scratch")

        requests = sorted(
            [
                PostRequest(tweet=t.id, author=t.author, at=t.created_at)
                for t in pending_posts
            ]
            + [
                RetweetRequest(user=e.user, tweet=e.tweet, at=e.time)
                for e in tail
            ],
            key=lambda r: (r.at, isinstance(r, RetweetRequest)),
        )
        config = ServeConfig(
            max_batch=args.max_batch,
            max_linger=args.linger,
            rate=args.admit_rate,
            shed_depth=max(1024, len(requests) + 1),
            degrade_depth=(
                None if args.admit_rate is not None else len(requests) + 1
            ),
        )
        started = time.perf_counter()
        responses = serve_stream(service, requests, config, registry)
        elapsed = time.perf_counter() - started

        statuses: dict[str, int] = {}
        notifications = 0
        for response in responses:
            statuses[response.status] = statuses.get(response.status, 0) + 1
            notifications += len(response.notifications)
        snapshot = registry.snapshot()
        latency = registry.histogram("serve.latency_seconds", timing=True)
        rows = [
            ["mode", f"sharded x{args.shards}" if args.shards else "single"],
            ["history events", len(history)],
            ["live requests", len(requests)],
            ["max batch / linger", f"{args.max_batch} / {args.linger}s"],
            ["batches", snapshot["counters"].get("serve.batches", 0)],
            ["notifications", notifications],
            ["wall seconds", round(elapsed, 3)],
            ["events/s", round(len(requests) / elapsed, 1) if elapsed else 0],
            ["p50/p95/p99 (ms, est)",
             " / ".join(
                 f"{latency.percentile(q) * 1000:.2f}"
                 for q in (0.5, 0.95, 0.99)
             )],
        ]
        for status in sorted(statuses):
            rows.append([f"status: {status}", statuses[status]])
        print(render_table(
            ["feature", "value"], rows,
            title="Serve replay (micro-batched asyncio front-end)",
        ))
        _write_metrics_snapshot(registry, args.metrics_json)
    finally:
        if args.shards:
            service.close()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.eval import CapacityModel
    from repro.serve import (
        LoadProfile,
        ServeConfig,
        measure_capacity,
        prime_service,
        run_load,
        synth_requests,
    )
    from repro.service import ServiceConfig

    service_config = ServiceConfig(
        prop_backend=args.prop_backend,
        use_scheduler=not args.no_scheduler,
    )
    if args.profile == "burst":
        profile = LoadProfile.bursty(
            rate=args.rate,
            burst_rate=(
                args.burst_rate if args.burst_rate is not None
                else 4.0 * args.rate
            ),
            burst_every=args.burst_every,
            burst_length=args.burst_length,
        )
    else:
        profile = LoadProfile.steady(rate=args.rate)

    serve_config = ServeConfig(
        max_batch=args.max_batch, max_linger=args.linger
    )
    calibration = None
    if args.calibrate:
        primed = prime_service(
            config=service_config,
            n_users=args.users,
            live_tweets=args.live_tweets,
            seed=args.seed,
        )
        requests = synth_requests(
            primed, max(200, args.events // 4), seed=args.seed,
            popularity_skew=0.0,
        )
        saturation_eps, _ = measure_capacity(
            primed.service, requests, serve_config
        )
        model = CapacityModel(service_seconds_per_event=1.0 / saturation_eps)
        serve_config = ServeConfig.from_capacity(
            model,
            slo_p99=args.slo,
            max_batch=args.max_batch,
            max_linger=args.linger,
        )
        calibration = {
            "saturation_events_per_s": round(saturation_eps, 1),
            "admit_rate": round(model.events_per_second, 1),
            "degrade_depth": serve_config.admission().resolved_degrade_depth,
            "shed_depth": serve_config.shed_depth,
        }

    registry = MetricsRegistry()
    primed = prime_service(
        config=service_config,
        n_users=args.users,
        live_tweets=args.live_tweets,
        seed=args.seed,
        metrics=registry,
    )
    schedule = profile.arrival_times(args.events)
    requests = synth_requests(
        primed,
        args.events,
        seed=args.seed,
        burst_flags=[profile.is_burst(t) for t in schedule],
    )
    report = run_load(
        primed.service, requests, profile, serve_config, registry
    )
    summary = report.to_dict()
    rows = [
        ["profile", profile.name],
        ["offered events/s", round(report.offered_rate, 1)],
        ["achieved events/s", round(report.achieved_eps, 1)],
        ["responses / dropped", f"{report.responses} / {report.dropped}"],
    ]
    for status in sorted(summary["statuses"]):
        pct = summary["fractions"][status] * 100
        rows.append([f"status: {status}",
                     f"{summary['statuses'][status]} ({pct:.1f}%)"])
    for status, p in sorted(summary["latency"].items()):
        rows.append([
            f"{status} p50/p95/p99 (ms)",
            " / ".join(f"{p[q] * 1000:.2f}" for q in ("p50", "p95", "p99")),
        ])
    if calibration:
        rows.append(["calibrated admit rate", calibration["admit_rate"]])
        rows.append(["degrade/shed depth",
                     f"{calibration['degrade_depth']} / "
                     f"{calibration['shed_depth']}"])
    print(render_table(
        ["feature", "value"], rows,
        title=f"Load generation ({args.events} events)",
    ))
    if args.out:
        payload = {"profile": profile.name, "report": summary}
        if calibration:
            payload["calibration"] = calibration
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote run report to {args.out}")
    _write_metrics_snapshot(registry, args.metrics_json)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "import": _cmd_import,
        "analyze": _cmd_analyze,
        "build-simgraph": _cmd_build_simgraph,
        "evaluate": _cmd_evaluate,
        "maintain": _cmd_maintain,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
