"""Metric primitives and the registry that owns them.

Design constraints (see the module docstring of :mod:`repro.obs`):

* **dependency-free** — stdlib only, so instrumentation can live in every
  hot path without import-cost or packaging consequences;
* **cheap when off** — :data:`NULL` is a shared :class:`NullRegistry`
  whose counters/gauges/histograms/spans are reusable no-op singletons;
  instrumented code never branches on "metrics enabled?", it just calls;
* **deterministic snapshots** — every metric that measures wall-clock
  time is flagged ``timing=True``; ``snapshot(deterministic=True)``
  reduces those to their (reproducible) observation counts, so two runs
  from one seed produce byte-identical deterministic snapshots.

Histograms are log-binned through the same bucket function as the
paper-figure helpers (:func:`repro.utils.histogram.log_bucket_index`), so
a frontier-size histogram in a metrics report and a Figure-3 style
distribution in a bench agree bucket for bucket.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.utils.histogram import log_bucket_index, log_bucket_label, percentile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "SpanNode",
    "MetricsRegistry",
    "NullRegistry",
    "NULL",
    "SNAPSHOT_SCHEMA",
]

#: Schema tag stamped into every snapshot (bump on breaking layout change).
SNAPSHOT_SCHEMA = "repro.obs/1"


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (queue depth, last residual, events/sec)."""

    __slots__ = ("name", "value", "timing")

    def __init__(self, name: str, timing: bool = False):
        self.name = name
        self.value = 0.0
        self.timing = timing

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Log-binned distribution of non-negative observations.

    Buckets are ``[base^i, base^{i+1})`` with a dedicated zero bucket —
    the same binning as :func:`repro.utils.histogram.log_binned_counts`.
    Only bucket counts and summary stats are retained, so memory stays
    O(buckets) regardless of observation volume.
    """

    __slots__ = ("name", "base", "timing", "count", "total", "min", "max",
                 "_buckets")

    def __init__(self, name: str, base: float = 2.0, timing: bool = False):
        if base <= 1.0:
            raise ValueError(f"base must exceed 1, got {base}")
        self.name = name
        self.base = base
        self.timing = timing
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._buckets: dict[int | None, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation (must be non-negative)."""
        bucket = log_bucket_index(value, self.base)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average observation (0.0 before the first one)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Log-binned ``q``-quantile estimate of the observations.

        Delegates to :func:`repro.utils.histogram.percentile`: the value
        is within a factor of ``base`` of the exact sample percentile
        (see its documented error bound), from bucket counts alone.
        """
        return percentile(self._buckets, q, base=self.base)

    def rows(self) -> list[tuple[str, int]]:
        """(bucket label, count) rows in ascending bucket order."""
        ordered = sorted(
            self._buckets.items(), key=lambda kv: (kv[0] is not None, kv[0] or 0)
        )
        return [(log_bucket_label(b, self.base), c) for b, c in ordered]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.4g})"


class SpanNode:
    """One node of the aggregated trace call-tree.

    Spans with the same name under the same parent aggregate into a
    single node: ``calls`` counts entries, ``total_s`` accumulates
    wall-clock seconds (inclusive of children).
    """

    __slots__ = ("name", "calls", "total_s", "children")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.children: dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "SpanNode"]]:
        """Depth-first (depth, node) traversal in name order."""
        yield depth, self
        for name in sorted(self.children):
            yield from self.children[name].walk(depth + 1)

    def to_dict(self, deterministic: bool = False) -> dict:
        node: dict = {"name": self.name, "calls": self.calls}
        if not deterministic:
            node["total_s"] = self.total_s
        node["children"] = [
            self.children[name].to_dict(deterministic)
            for name in sorted(self.children)
        ]
        return node


class _Span:
    """Context manager that times one entry of a :class:`SpanNode`."""

    __slots__ = ("_registry", "_node", "_start")

    def __init__(self, registry: "MetricsRegistry", node: SpanNode):
        self._registry = registry
        self._node = node

    def __enter__(self) -> "_Span":
        self._node.calls += 1
        self._registry._stack.append(self._node)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._node.total_s += time.perf_counter() - self._start
        self._registry._stack.pop()


class MetricsRegistry:
    """Owns every counter/gauge/histogram and the trace call-tree.

    All accessors are get-or-create, so instrumentation sites never need
    to pre-register anything.  The registry is designed for the
    single-threaded engines of this codebase; each worker process of a
    chunked build keeps (and discards) its own registry.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._root = SpanNode("")
        self._stack: list[SpanNode] = [self._root]

    # ------------------------------------------------------------------
    # Metric accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str, timing: bool = False) -> Gauge:
        """Get or create the gauge ``name``."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name, timing=timing)
        return metric

    def histogram(
        self, name: str, base: float = 2.0, timing: bool = False
    ) -> Histogram:
        """Get or create the log-binned histogram ``name``."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(
                name, base=base, timing=timing
            )
        return metric

    def span(self, name: str) -> _Span:
        """Enter a nestable timed span; aggregates into the call-tree.

        Nesting follows the runtime call structure: a span opened while
        another is active becomes (or merges into) a child of it.
        """
        return _Span(self, self._stack[-1].child(name))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def span_root(self) -> SpanNode:
        """The (nameless) root of the aggregated call-tree."""
        return self._root

    def snapshot(self, deterministic: bool = False) -> dict:
        """JSON-serializable dump of every metric.

        ``deterministic=True`` strips everything wall-clock dependent:
        span times, timing-gauge values, and timing-histogram value stats
        (their observation *counts* are kept — those are reproducible).
        Two runs of a seeded pipeline must produce byte-identical
        deterministic snapshots; the e2e golden test enforces this.
        """
        histograms: dict[str, dict] = {}
        for name in sorted(self._histograms):
            h = self._histograms[name]
            if deterministic and h.timing:
                histograms[name] = {"count": h.count, "timing": True}
                continue
            histograms[name] = {
                "count": h.count,
                "total": h.total,
                "min": h.min if h.count else 0.0,
                "max": h.max if h.count else 0.0,
                "mean": h.mean,
                "timing": h.timing,
                "buckets": {label: c for label, c in h.rows()},
            }
        gauges = {
            name: self._gauges[name].value
            for name in sorted(self._gauges)
            if not (deterministic and self._gauges[name].timing)
        }
        return {
            "schema": SNAPSHOT_SCHEMA,
            "deterministic": deterministic,
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": gauges,
            "histograms": histograms,
            "spans": [
                self._root.children[name].to_dict(deterministic)
                for name in sorted(self._root.children)
            ],
        }

    def report(self) -> str:
        """Human-readable ASCII report (see :mod:`repro.obs.report`)."""
        from repro.obs.report import render_report

        return render_report(self)

    def reset(self) -> None:
        """Drop every metric and the whole call-tree."""
        self.__init__()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """No-op registry: every accessor returns a shared inert singleton.

    The default for every instrumented engine — calling convention is
    identical to :class:`MetricsRegistry`, but nothing is recorded and
    the per-call cost is one attribute lookup plus an empty method call
    (the overhead bench pins this at ~0%).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")
        self._null_span = _NullSpan()

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str, timing: bool = False) -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, base: float = 2.0, timing: bool = False
    ) -> Histogram:
        return self._null_histogram

    def span(self, name: str) -> _NullSpan:  # type: ignore[override]
        return self._null_span


#: Shared no-op registry: the default ``metrics=`` of every engine.
NULL = NullRegistry()
