"""Lightweight observability: metrics registry + trace spans.

The paper's claim is *speed* (Table 5, §5.4's threshold and postponement
optimizations), so every hot path of this reproduction is instrumented:
propagation (iterations, frontier sizes, threshold skips), the linear
solvers (sweeps, residuals, batch sizes), SimGraph construction (pairs
scored, edges kept, chunk timings), the postponed scheduler (δ
postponements, queue depth), temporal replay (events, candidate flow) and
the online service (per-event latency, maintenance timings).

Three design rules keep this from tainting the engines it measures:

* **no dependencies** — stdlib only;
* **no cost when off** — every engine defaults to :data:`NULL`, a
  :class:`NullRegistry` of reusable no-op singletons (the overhead bench
  pins a full registry below 5% and the null path at ~0%);
* **determinism-aware** — wall-clock metrics are flagged ``timing`` and
  stripped by ``snapshot(deterministic=True)``, so seeded pipelines stay
  byte-for-byte reproducible with instrumentation enabled.

Usage::

    from repro.obs import MetricsRegistry
    metrics = MetricsRegistry()
    engine = PropagationEngine(simgraph, metrics=metrics)
    ...
    print(metrics.report())            # aligned ASCII tables
    snapshot = metrics.snapshot()      # JSON-ready dict (repro.obs/1)
"""

from repro.obs.registry import (
    NULL,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SpanNode,
)
from repro.obs.report import render_report, validate_snapshot

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "NullRegistry",
    "SNAPSHOT_SCHEMA",
    "SpanNode",
    "render_report",
    "validate_snapshot",
]
