"""Rendering and validation of metrics snapshots.

:func:`render_report` turns a :class:`~repro.obs.registry.MetricsRegistry`
into the aligned ASCII tables the CLI prints (counters, gauges, histogram
summaries, and the indented span call-tree); :func:`validate_snapshot`
checks the JSON written by ``--metrics-json`` against the
``repro.obs/1`` layout — the CI smoke step and the e2e tests both run it.
"""

from __future__ import annotations

from repro.obs.registry import SNAPSHOT_SCHEMA, MetricsRegistry
from repro.utils.tables import render_table

__all__ = ["render_report", "validate_snapshot"]


def render_report(registry: MetricsRegistry) -> str:
    """ASCII report of every metric in ``registry``."""
    snapshot = registry.snapshot()
    sections: list[str] = []
    if snapshot["counters"]:
        sections.append(render_table(
            ["counter", "value"],
            sorted(snapshot["counters"].items()),
            title="Counters",
        ))
    if snapshot["gauges"]:
        sections.append(render_table(
            ["gauge", "value"],
            sorted(snapshot["gauges"].items()),
            title="Gauges",
        ))
    if snapshot["histograms"]:
        rows = []
        for name, h in sorted(snapshot["histograms"].items()):
            live = registry._histograms.get(name)
            p50, p95, p99 = (
                (live.percentile(0.5), live.percentile(0.95),
                 live.percentile(0.99))
                if live is not None
                else (0.0, 0.0, 0.0)
            )
            rows.append(
                [name, h["count"], h["min"], p50, p95, p99, h["mean"],
                 h["max"]]
            )
        sections.append(render_table(
            ["histogram", "n", "min", "p50", "p95", "p99", "mean", "max"],
            rows,
            title="Histograms (log-binned; p50/p95/p99 are bucket "
            "estimates, within one log-base factor)",
        ))
    span_rows = []
    for depth, node in _walk_spans(snapshot["spans"]):
        mean_ms = node["total_s"] / node["calls"] * 1000 if node["calls"] else 0.0
        span_rows.append([
            # A visible nesting marker: table cells are right-justified,
            # so plain leading spaces would vanish.
            "· " * depth + node["name"],
            node["calls"],
            node["total_s"] * 1000,
            mean_ms,
        ])
    if span_rows:
        sections.append(render_table(
            ["span", "calls", "total (ms)", "mean (ms)"],
            span_rows,
            title="Trace spans",
        ))
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def _walk_spans(nodes: list[dict], depth: int = 0):
    for node in nodes:
        yield depth, node
        yield from _walk_spans(node.get("children", []), depth + 1)


def validate_snapshot(snapshot: object) -> dict:
    """Validate a ``--metrics-json`` payload; return it on success.

    Raises :class:`ValueError` describing the first violation found.
    Deliberately schema-library-free (stdlib only, like the rest of
    ``repro.obs``).
    """
    if not isinstance(snapshot, dict):
        raise ValueError(f"snapshot must be an object, got {type(snapshot)}")
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"unknown snapshot schema {snapshot.get('schema')!r}; "
            f"expected {SNAPSHOT_SCHEMA!r}"
        )
    for section in ("counters", "gauges", "histograms"):
        block = snapshot.get(section)
        if not isinstance(block, dict):
            raise ValueError(f"missing or malformed {section!r} section")
        for name, value in block.items():
            if not isinstance(name, str):
                raise ValueError(f"non-string metric name {name!r}")
            if section == "histograms":
                if not isinstance(value, dict) or "count" not in value:
                    raise ValueError(f"histogram {name!r} missing 'count'")
                if not isinstance(value["count"], int) or value["count"] < 0:
                    raise ValueError(f"histogram {name!r} has a bad count")
            elif not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{section[:-1]} {name!r} is not numeric")
    spans = snapshot.get("spans")
    if not isinstance(spans, list):
        raise ValueError("missing or malformed 'spans' section")
    _validate_spans(spans, path="spans")
    return snapshot


def _validate_spans(nodes: list, path: str) -> None:
    for i, node in enumerate(nodes):
        where = f"{path}[{i}]"
        if not isinstance(node, dict):
            raise ValueError(f"{where} is not an object")
        if not isinstance(node.get("name"), str) or not node["name"]:
            raise ValueError(f"{where} missing a span name")
        calls = node.get("calls")
        if not isinstance(calls, int) or calls < 0:
            raise ValueError(f"{where} ({node['name']}) has a bad call count")
        if "total_s" in node and not isinstance(node["total_s"], (int, float)):
            raise ValueError(f"{where} ({node['name']}) has a bad total_s")
        children = node.get("children", [])
        if not isinstance(children, list):
            raise ValueError(f"{where} ({node['name']}) children malformed")
        _validate_spans(children, path=f"{where}.children")
