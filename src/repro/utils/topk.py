"""Bounded top-k selection.

Recommenders produce large candidate score maps but only the ``k`` best
survive the daily budget; :class:`TopK` keeps that selection O(n log k)
without materializing a full sort.
"""

from __future__ import annotations

import heapq
from typing import Generic, Hashable, Iterator, TypeVar

__all__ = ["TopK", "top_k_items"]

T = TypeVar("T", bound=Hashable)


class TopK(Generic[T]):
    """Keep the ``k`` highest-scored items pushed so far.

    Ties are broken deterministically by the item's ordering key (falls back
    to ``repr`` for unorderable items) so results never depend on insertion
    order — important for reproducible experiments.
    """

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        # Min-heap of (score, tiebreak, item); root is the current cutoff.
        self._heap: list[tuple[float, object, T]] = []

    @staticmethod
    def _tiebreak(item: T) -> object:
        try:
            # Prefer the natural ordering when the item supports it.
            if isinstance(item, (int, float, str, bytes, tuple)):
                return item
        except TypeError:  # pragma: no cover - defensive
            pass
        return repr(item)

    def push(self, item: T, score: float) -> bool:
        """Offer ``item``; return True when it is retained in the top-k."""
        entry = (score, self._tiebreak(item), item)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[tuple[T, float]]:
        return iter(self.items())

    def min_score(self) -> float:
        """Lowest retained score; ``-inf`` while the heap is not full."""
        if len(self._heap) < self.k:
            return float("-inf")
        return self._heap[0][0]

    def items(self) -> list[tuple[T, float]]:
        """Retained (item, score) pairs, best first."""
        ordered = sorted(self._heap, reverse=True)
        return [(item, score) for score, _, item in ordered]


def top_k_items(scores: dict[T, float], k: int) -> list[tuple[T, float]]:
    """Return the ``k`` highest-scored entries of ``scores``, best first.

    Convenience wrapper over :class:`TopK` for one-shot selection from a
    score dictionary.
    """
    selector: TopK[T] = TopK(k)
    for item, score in scores.items():
        selector.push(item, score)
    return selector.items()
