"""Discrete power-law sampling and exponent estimation.

The paper's dataset exhibits power laws everywhere: in/out degrees of the
follow graph, retweets per tweet, retweets per user.  The synthetic
generator samples from bounded zipf distributions and the test-suite checks
the generated data really is heavy-tailed using the Clauset-style MLE
estimator implemented here.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["bounded_zipf", "sample_bounded_zipf", "estimate_alpha"]


def bounded_zipf(alpha: float, x_min: int, x_max: int) -> np.ndarray:
    """Return the probability mass function of a truncated zipf law.

    ``P(x) ∝ x^-alpha`` for ``x in [x_min, x_max]``.
    """
    if x_min < 1 or x_max < x_min:
        raise ValueError(f"invalid support [{x_min}, {x_max}]")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    support = np.arange(x_min, x_max + 1, dtype=np.float64)
    weights = support**-alpha
    return weights / weights.sum()


def sample_bounded_zipf(
    rng: np.random.Generator,
    alpha: float,
    x_min: int,
    x_max: int,
    size: int,
) -> np.ndarray:
    """Draw ``size`` integers from a truncated zipf law with exponent alpha."""
    pmf = bounded_zipf(alpha, x_min, x_max)
    return rng.choice(np.arange(x_min, x_max + 1), size=size, p=pmf)


def estimate_alpha(values: Sequence[int], x_min: int = 1) -> float:
    """Estimate the power-law exponent of ``values`` by discrete MLE.

    Uses the continuous approximation of Clauset, Shalizi & Newman (2009):
    ``alpha ≈ 1 + n / Σ ln(x_i / (x_min - 0.5))`` over samples ``≥ x_min``.
    Raises :class:`ValueError` when fewer than two usable samples exist.
    """
    usable = [v for v in values if v >= x_min]
    if len(usable) < 2:
        raise ValueError("need at least two samples >= x_min")
    denom = sum(math.log(v / (x_min - 0.5)) for v in usable)
    if denom <= 0:
        raise ValueError("degenerate sample: all values equal x_min")
    return 1.0 + len(usable) / denom
