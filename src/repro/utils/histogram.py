"""Histogram helpers for reproducing the paper's figures.

Figures 1-5 of the paper are count distributions on log axes, and Figure 2
uses explicit irregular bins (0, 1, 2-5, 6-50, 51-200, 201-500, 500+).  The
helpers here turn raw value sequences into (label, count) series that the
benchmark harness prints.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

__all__ = [
    "binned_counts",
    "log_binned_counts",
    "exact_counts",
    "log_bucket_index",
    "log_bucket_label",
    "percentile",
    "Bin",
]


class Bin:
    """A half-open integer bin ``[lo, hi]`` (``hi=None`` means unbounded)."""

    def __init__(self, lo: int, hi: int | None = None, label: str | None = None):
        if hi is not None and hi < lo:
            raise ValueError(f"bin upper bound {hi} below lower bound {lo}")
        self.lo = lo
        self.hi = hi
        self.label = label if label is not None else self._default_label()

    def _default_label(self) -> str:
        if self.hi is None:
            return f"{self.lo}+"
        if self.hi == self.lo:
            return str(self.lo)
        return f"{self.lo}-{self.hi}"

    def contains(self, value: int) -> bool:
        """True when ``value`` falls inside this bin."""
        if value < self.lo:
            return False
        return self.hi is None or value <= self.hi

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bin({self.label!r})"


#: The exact bins of the paper's Figure 2 (retweets per tweet).
FIGURE2_BINS = (
    Bin(0, 0),
    Bin(1, 1),
    Bin(2, 5),
    Bin(6, 50),
    Bin(51, 200),
    Bin(201, 500),
    Bin(501, None, label="500+"),
)


def binned_counts(
    values: Iterable[int], bins: Sequence[Bin] = FIGURE2_BINS
) -> list[tuple[str, int]]:
    """Count ``values`` into ``bins`` and return (label, count) rows.

    Values matching no bin are silently dropped — the paper's bins are
    exhaustive over the non-negative integers, so with the default bins
    nothing is lost.
    """
    counts = [0] * len(bins)
    for value in values:
        for i, b in enumerate(bins):
            if b.contains(value):
                counts[i] += 1
                break
    return [(b.label, c) for b, c in zip(bins, counts)]


def log_bucket_index(value: float, base: float = 2.0) -> int | None:
    """Logarithmic bucket of a non-negative ``value``: ``[base^i, base^{i+1})``.

    Returns ``None`` for zero (zeros get their own leading bin) and the
    exponent ``i = floor(log_base(value))`` otherwise.  Shared by
    :func:`log_binned_counts` and the ``repro.obs`` histograms so figure
    bins and metric bins agree.
    """
    if base <= 1.0:
        raise ValueError(f"base must exceed 1, got {base}")
    if value < 0:
        raise ValueError(f"negative value {value} in histogram input")
    if value == 0:
        return None
    return math.floor(math.log(value, base))


def log_bucket_label(bucket: int | None, base: float = 2.0) -> str:
    """Human-readable label of one :func:`log_bucket_index` bucket.

    Integer-valued buckets (``base^i >= 1``) keep the figures' inclusive
    ``lo-hi`` style; sub-unit buckets (timings) show the half-open float
    interval.
    """
    if bucket is None:
        return "0"
    lo = base**bucket
    hi = base ** (bucket + 1)
    if lo >= 1 and float(lo).is_integer() and float(hi).is_integer():
        int_lo, int_hi = int(lo), int(hi) - 1
        return str(int_lo) if int_lo >= int_hi else f"{int_lo}-{int_hi}"
    return f"[{lo:g}, {hi:g})"


def log_binned_counts(
    values: Iterable[int], base: float = 2.0
) -> list[tuple[str, int]]:
    """Bucket positive ``values`` into logarithmic bins ``[base^i, base^{i+1})``.

    Zeros are reported in their own leading bin, mirroring how the figures
    separate "never retweeted" from the power-law tail.
    """
    if base <= 1.0:
        raise ValueError(f"base must exceed 1, got {base}")
    zero_count = 0
    bucket_counts: Counter[int] = Counter()
    for value in values:
        bucket = log_bucket_index(value, base)
        if bucket is None:
            zero_count += 1
        else:
            bucket_counts[bucket] += 1
    rows: list[tuple[str, int]] = []
    if zero_count:
        rows.append(("0", zero_count))
    for bucket in sorted(bucket_counts):
        rows.append((log_bucket_label(bucket, base), bucket_counts[bucket]))
    return rows


def percentile(
    bucket_counts: dict[int | None, int] | Counter,
    q: float,
    base: float = 2.0,
) -> float:
    """Estimate the ``q``-quantile of log-binned observations.

    ``bucket_counts`` maps :func:`log_bucket_index` buckets to
    observation counts (``None`` is the zero bucket), exactly the layout
    the ``repro.obs`` histograms keep.  ``q`` is a fraction in [0, 1].

    The estimator locates the bucket holding the order statistic of rank
    ``floor(q * (n - 1))`` — the same rank numpy's ``method="lower"``
    percentile selects — and interpolates geometrically inside it from
    the fractional part of the rank.

    Error bound: the returned value always lies inside the half-open
    bucket ``[base^i, base^{i+1})`` that contains that exact order
    statistic, so it is within a factor of ``base`` of it (and equals it
    exactly for the zero bucket).  With the default ``base=2`` every
    p50/p95/p99 readout is a 2x-accurate estimate of the corresponding
    sample percentile — tight enough to spot an SLO regression, constant
    memory regardless of observation volume.  Callers needing exact
    percentiles must keep raw samples (the load generator does, for the
    BENCH gates).

    Returns 0.0 for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if base <= 1.0:
        raise ValueError(f"base must exceed 1, got {base}")
    n = 0
    for count in bucket_counts.values():
        if count < 0:
            raise ValueError(f"negative bucket count {count}")
        n += count
    if n == 0:
        return 0.0
    rank = q * (n - 1)
    ordered = sorted(
        bucket_counts.items(), key=lambda kv: (kv[0] is not None, kv[0] or 0)
    )
    cumulative = 0
    for bucket, count in ordered:
        if count and rank < cumulative + count:
            if bucket is None:
                return 0.0
            fraction = (rank - cumulative) / count
            return float(base**bucket * base**fraction)
        cumulative += count
    # Unreachable for rank <= n - 1 < n; guard float edge cases by
    # answering with the top of the last non-empty bucket.
    for bucket, count in reversed(ordered):
        if count:
            return 0.0 if bucket is None else float(base ** (bucket + 1))
    return 0.0


def exact_counts(values: Iterable[int]) -> list[tuple[int, int]]:
    """Exact (value, count) rows sorted by value — used for path figures."""
    counter = Counter(values)
    return sorted(counter.items())
