"""Histogram helpers for reproducing the paper's figures.

Figures 1-5 of the paper are count distributions on log axes, and Figure 2
uses explicit irregular bins (0, 1, 2-5, 6-50, 51-200, 201-500, 500+).  The
helpers here turn raw value sequences into (label, count) series that the
benchmark harness prints.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

__all__ = [
    "binned_counts",
    "log_binned_counts",
    "exact_counts",
    "log_bucket_index",
    "log_bucket_label",
    "Bin",
]


class Bin:
    """A half-open integer bin ``[lo, hi]`` (``hi=None`` means unbounded)."""

    def __init__(self, lo: int, hi: int | None = None, label: str | None = None):
        if hi is not None and hi < lo:
            raise ValueError(f"bin upper bound {hi} below lower bound {lo}")
        self.lo = lo
        self.hi = hi
        self.label = label if label is not None else self._default_label()

    def _default_label(self) -> str:
        if self.hi is None:
            return f"{self.lo}+"
        if self.hi == self.lo:
            return str(self.lo)
        return f"{self.lo}-{self.hi}"

    def contains(self, value: int) -> bool:
        """True when ``value`` falls inside this bin."""
        if value < self.lo:
            return False
        return self.hi is None or value <= self.hi

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bin({self.label!r})"


#: The exact bins of the paper's Figure 2 (retweets per tweet).
FIGURE2_BINS = (
    Bin(0, 0),
    Bin(1, 1),
    Bin(2, 5),
    Bin(6, 50),
    Bin(51, 200),
    Bin(201, 500),
    Bin(501, None, label="500+"),
)


def binned_counts(
    values: Iterable[int], bins: Sequence[Bin] = FIGURE2_BINS
) -> list[tuple[str, int]]:
    """Count ``values`` into ``bins`` and return (label, count) rows.

    Values matching no bin are silently dropped — the paper's bins are
    exhaustive over the non-negative integers, so with the default bins
    nothing is lost.
    """
    counts = [0] * len(bins)
    for value in values:
        for i, b in enumerate(bins):
            if b.contains(value):
                counts[i] += 1
                break
    return [(b.label, c) for b, c in zip(bins, counts)]


def log_bucket_index(value: float, base: float = 2.0) -> int | None:
    """Logarithmic bucket of a non-negative ``value``: ``[base^i, base^{i+1})``.

    Returns ``None`` for zero (zeros get their own leading bin) and the
    exponent ``i = floor(log_base(value))`` otherwise.  Shared by
    :func:`log_binned_counts` and the ``repro.obs`` histograms so figure
    bins and metric bins agree.
    """
    if base <= 1.0:
        raise ValueError(f"base must exceed 1, got {base}")
    if value < 0:
        raise ValueError(f"negative value {value} in histogram input")
    if value == 0:
        return None
    return math.floor(math.log(value, base))


def log_bucket_label(bucket: int | None, base: float = 2.0) -> str:
    """Human-readable label of one :func:`log_bucket_index` bucket.

    Integer-valued buckets (``base^i >= 1``) keep the figures' inclusive
    ``lo-hi`` style; sub-unit buckets (timings) show the half-open float
    interval.
    """
    if bucket is None:
        return "0"
    lo = base**bucket
    hi = base ** (bucket + 1)
    if lo >= 1 and float(lo).is_integer() and float(hi).is_integer():
        int_lo, int_hi = int(lo), int(hi) - 1
        return str(int_lo) if int_lo >= int_hi else f"{int_lo}-{int_hi}"
    return f"[{lo:g}, {hi:g})"


def log_binned_counts(
    values: Iterable[int], base: float = 2.0
) -> list[tuple[str, int]]:
    """Bucket positive ``values`` into logarithmic bins ``[base^i, base^{i+1})``.

    Zeros are reported in their own leading bin, mirroring how the figures
    separate "never retweeted" from the power-law tail.
    """
    if base <= 1.0:
        raise ValueError(f"base must exceed 1, got {base}")
    zero_count = 0
    bucket_counts: Counter[int] = Counter()
    for value in values:
        bucket = log_bucket_index(value, base)
        if bucket is None:
            zero_count += 1
        else:
            bucket_counts[bucket] += 1
    rows: list[tuple[str, int]] = []
    if zero_count:
        rows.append(("0", zero_count))
    for bucket in sorted(bucket_counts):
        rows.append((log_bucket_label(bucket, base), bucket_counts[bucket]))
    return rows


def exact_counts(values: Iterable[int]) -> list[tuple[int, int]]:
    """Exact (value, count) rows sorted by value — used for path figures."""
    counter = Counter(values)
    return sorted(counter.items())
