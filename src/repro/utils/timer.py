"""Lightweight wall-clock timing helpers used by the Table-5 harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "Stopwatch"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    500500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


@dataclass
class Stopwatch:
    """Accumulate elapsed time over many start/stop laps.

    Used to aggregate per-message processing costs: each recommendation call
    is one lap; :attr:`total` and :meth:`mean` summarize the run.
    """

    total: float = 0.0
    laps: int = 0
    _start: float | None = field(default=None, repr=False)

    def start(self) -> None:
        """Begin a lap. Calling :meth:`start` twice in a row is an error."""
        if self._start is not None:
            raise RuntimeError("Stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        """End the current lap and return its duration in seconds."""
        if self._start is None:
            raise RuntimeError("Stopwatch not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.total += lap
        self.laps += 1
        return lap

    def mean(self) -> float:
        """Average lap duration in seconds (0.0 when no lap recorded)."""
        if self.laps == 0:
            return 0.0
        return self.total / self.laps
