"""Seeded random-number management.

Every stochastic component of the library draws from a
:class:`numpy.random.Generator` handed to it explicitly; nothing uses global
random state.  :class:`SeedSequenceFactory` turns one master seed into an
arbitrary number of independent, *named* child generators so that adding a
new consumer never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["SeedSequenceFactory", "make_rng"]


def _stable_hash(name: str) -> int:
    """Return a stable 64-bit integer hash of ``name``.

    ``hash()`` is salted per interpreter run, so we use blake2b to keep the
    name -> stream mapping reproducible across processes.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class SeedSequenceFactory:
    """Derive independent named random generators from one master seed.

    Example
    -------
    >>> factory = SeedSequenceFactory(42)
    >>> graph_rng = factory.generator("socialgraph")
    >>> activity_rng = factory.generator("activity")

    Requesting the same name twice yields generators with identical streams,
    and distinct names yield statistically independent streams.
    """

    def __init__(self, seed: int):
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The master seed this factory derives every stream from."""
        return self._seed

    def generator(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the stream identified by ``name``."""
        seq = np.random.SeedSequence([self._seed, _stable_hash(name)])
        return np.random.Generator(np.random.PCG64(seq))

    def spawn(self, name: str) -> "SeedSequenceFactory":
        """Return a child factory whose streams are independent of ours."""
        return SeedSequenceFactory(
            (self._seed * 0x9E3779B97F4A7C15 + _stable_hash(name)) % (2**63)
        )


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
