"""Plain-text table rendering for benchmark reports.

Every benchmark prints the rows of the paper table/figure it reproduces;
:func:`render_table` keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: object, precision: int = 4) -> str:
    """Format a cell: floats get fixed precision, ints thousands separators."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != 0 and abs(value) < 10**-precision:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[format_value(cell, precision) for cell in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(w) for cell, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt_line(headers))
    lines.append(sep)
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)
