"""Shared utilities: seeded RNG streams, timing, top-k selection,
power-law sampling/fitting, histogram binning and table rendering."""

from repro.utils.histogram import (
    FIGURE2_BINS,
    Bin,
    binned_counts,
    exact_counts,
    log_binned_counts,
)
from repro.utils.powerlaw import bounded_zipf, estimate_alpha, sample_bounded_zipf
from repro.utils.rng import SeedSequenceFactory, make_rng
from repro.utils.tables import format_value, render_table
from repro.utils.timer import Stopwatch, Timer
from repro.utils.topk import TopK, top_k_items

__all__ = [
    "Bin",
    "FIGURE2_BINS",
    "SeedSequenceFactory",
    "Stopwatch",
    "Timer",
    "TopK",
    "binned_counts",
    "bounded_zipf",
    "estimate_alpha",
    "exact_counts",
    "format_value",
    "log_binned_counts",
    "make_rng",
    "render_table",
    "sample_bounded_zipf",
    "top_k_items",
]
