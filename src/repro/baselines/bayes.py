"""Bayesian inference baseline (Yang, Guo & Liu, TPDS 2013, adapted).

The original model infers a user's rating of an item from their social
neighbours' ratings by Bayesian belief propagation over the trust network.
The paper adapts it to Twitter's binary feedback (retweet / nothing) and
adds a stop threshold "to stop the costly process" (§6.1).  This
implementation follows that recipe:

* the *trust* of a follow edge ``u -> v`` is, by default, a uniform
  constant: Yang et al. propagate over an *explicit* trust network
  (Epinions), and the paper under reproduction argues Twitter follow
  edges "can not really be considered as a trust relationship" — so the
  adapted model infers from network structure alone.  A ``learned`` mode
  estimating ``P(u retweets i | v retweeted i)`` from the train split
  (Laplace-smoothed) is also provided for ablation;
* when a tweet is retweeted, belief propagates over follow edges with a
  noisy-OR combination — ``p(u) = 1 - Π_{v ∈ followees(u)} (1 - trust(u,v)
  · p(v))`` — the standard independent-cause Bayesian approximation for
  binary events;
* propagation is breadth-first from the retweeters and a branch stops as
  soon as its belief falls below ``stop_threshold``.

The resulting behaviour matches the paper's observations: scores hug the
underlying network (hits on *unpopular, local* tweets — Fig. 12 reports a
mean of ~6 shares per hit) and per-message cost is the highest of the four
methods (Table 5) because the follow graph is dense.
"""

from __future__ import annotations

from collections import deque

from repro.baselines.base import Recommendation, Recommender
from repro.core.profiles import RetweetProfiles
from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet

__all__ = ["BayesRecommender"]


class BayesRecommender(Recommender):
    """Noisy-OR Bayesian belief propagation over the follow graph.

    Parameters
    ----------
    stop_threshold:
        Beliefs below this value do not propagate further (the paper's
        cost-control tweak).
    trust_mode:
        ``"uniform"`` (default) assigns every follow edge the constant
        trust ``uniform_trust``; ``"learned"`` estimates per-edge trust
        from train co-retweets.
    uniform_trust:
        The constant edge trust in ``uniform`` mode.
    smoothing:
        Laplace smoothing of the edge-trust estimates (``learned`` mode).
    max_depth:
        Hard cap on propagation depth from any retweeter.
    """

    name = "Bayes"

    def __init__(
        self,
        stop_threshold: float = 0.04,
        trust_mode: str = "uniform",
        uniform_trust: float = 0.12,
        smoothing: float = 0.5,
        max_depth: int = 3,
    ):
        if not 0.0 < stop_threshold < 1.0:
            raise ValueError(
                f"stop_threshold must be in (0, 1), got {stop_threshold}"
            )
        if trust_mode not in ("uniform", "learned"):
            raise ValueError(
                f"trust_mode must be 'uniform' or 'learned', got {trust_mode!r}"
            )
        if not 0.0 < uniform_trust <= 1.0:
            raise ValueError(
                f"uniform_trust must be in (0, 1], got {uniform_trust}"
            )
        if smoothing < 0:
            raise ValueError(f"smoothing must be non-negative, got {smoothing}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be at least 1, got {max_depth}")
        self.stop_threshold = stop_threshold
        self.trust_mode = trust_mode
        self.uniform_trust = uniform_trust
        self.smoothing = smoothing
        self.max_depth = max_depth
        self._trust: dict[int, list[tuple[int, float]]] = {}
        self._retweeters: dict[int, set[int]] = {}
        self._targets: set[int] | None = None
        self._fitted = False

    def fit(
        self,
        dataset: TwitterDataset,
        train: list[Retweet],
        target_users: set[int] | None = None,
    ) -> None:
        profiles = RetweetProfiles(train)
        self._targets = target_users
        # Trust of u in followee v, indexed as v -> [(follower u, trust)]
        # because propagation pushes belief from sharers to their
        # followers.  Learned mode: P(u co-retweets | v retweeted),
        # Laplace-smoothed; uniform mode: constant.
        self._trust = {}
        for u in dataset.follow_graph.nodes():
            lu = profiles.profile(u)
            for v in dataset.follow_graph.successors(u):
                if self.trust_mode == "uniform":
                    trust = self.uniform_trust
                else:
                    lv_size = profiles.profile_size(v)
                    common = len(lu & profiles.profile(v)) if lu else 0
                    trust = (common + self.smoothing) / (
                        lv_size + 2.0 * self.smoothing
                    )
                self._trust.setdefault(v, []).append((u, trust))
        self._retweeters = {}
        for retweet in train:
            self._retweeters.setdefault(retweet.tweet, set()).add(retweet.user)
        self._fitted = True

    def on_event(self, event: Retweet) -> list[Recommendation]:
        if not self._fitted:
            raise RuntimeError("fit() must be called before processing events")
        seeds = self._retweeters.setdefault(event.tweet, set())
        seeds.add(event.user)
        beliefs = self._propagate(seeds)
        recommendations = []
        for user, belief in beliefs.items():
            if user in seeds:
                continue
            if self._targets is not None and user not in self._targets:
                continue
            recommendations.append(
                Recommendation(
                    user=user, tweet=event.tweet, score=belief, time=event.time
                )
            )
        return recommendations

    def _propagate(self, seeds: set[int]) -> dict[int, float]:
        """Noisy-OR belief propagation from ``seeds`` over follower edges."""
        beliefs: dict[int, float] = {s: 1.0 for s in seeds}
        queue: deque[tuple[int, int]] = deque((s, 0) for s in seeds)
        while queue:
            source, depth = queue.popleft()
            if depth >= self.max_depth:
                continue
            source_belief = beliefs[source]
            for follower, trust in self._trust.get(source, ()):
                if follower in seeds:
                    continue
                contribution = trust * source_belief
                if contribution < self.stop_threshold:
                    continue
                previous = beliefs.get(follower, 0.0)
                updated = 1.0 - (1.0 - previous) * (1.0 - contribution)
                if updated - previous < self.stop_threshold:
                    continue
                beliefs[follower] = updated
                queue.append((follower, depth + 1))
        return beliefs
