"""GraphJet baseline (Sharma et al., VLDB 2016).

Twitter's production recommender: a bipartite graph of *recent* user-tweet
engagements, queried with Monte-Carlo random walks.  A walk alternates
user -> tweet -> user steps (a sampled SALSA); tweets visited often across
many walks are recommended.  Because walk traffic concentrates on
high-degree tweet vertices, GraphJet skews toward popular content — the
behaviour Fig. 12 measures (mean ~113 shares per hit).

Deployment mirrors the paper's §6.3: the engine is *user-centric* and
recomputes the top-k of every evaluated user periodically (every 5 hours
in their setup) rather than reacting per message; users with no recent
engagement get nothing (the small-user limitation of Fig. 9).
"""

from __future__ import annotations

from repro.baselines.base import Recommendation, Recommender
from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet
from repro.graph.bipartite import InteractionGraph
from repro.utils.rng import make_rng
from repro.utils.topk import top_k_items

__all__ = ["GraphJetRecommender"]

HOUR = 3600.0
DAY = 24 * HOUR


class GraphJetRecommender(Recommender):
    """Random walks over a windowed bipartite engagement graph.

    Parameters
    ----------
    window:
        Age limit of retained engagements (GraphJet's segment horizon).
    period:
        Wall-clock interval between batch recomputations of every target
        user's recommendations (the paper runs it every 5 hours).
    walks / walk_depth:
        Monte-Carlo budget per query: number of walks and user->tweet
        steps per walk.
    top_n:
        Recommendations emitted per user per batch (bounded by the
        largest k the evaluation sweeps).
    seed:
        RNG seed for the walks.
    """

    name = "GraphJet"

    def __init__(
        self,
        window: float = 10 * DAY,
        period: float = 5 * HOUR,
        walks: int = 100,
        walk_depth: int = 3,
        top_n: int = 200,
        seed: int = 7,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if walks < 1 or walk_depth < 1:
            raise ValueError("walks and walk_depth must be at least 1")
        self.window = window
        self.period = period
        self.walks = walks
        self.walk_depth = walk_depth
        self.top_n = top_n
        self.seed = seed
        self._graph = InteractionGraph(window=window)
        self._targets: set[int] = set()
        self._next_batch: float | None = None
        self._rng = make_rng(seed)
        self._fitted = False

    def fit(
        self,
        dataset: TwitterDataset,
        train: list[Retweet],
        target_users: set[int] | None = None,
    ) -> None:
        self._graph = InteractionGraph(window=self.window)
        self._rng = make_rng(self.seed)
        self._targets = (
            set(target_users) if target_users is not None else set(dataset.users)
        )
        for retweet in train:
            self._graph.add(retweet.user, retweet.tweet, retweet.time)
        self._next_batch = None
        self._fitted = True

    def on_event(self, event: Retweet) -> list[Recommendation]:
        if not self._fitted:
            raise RuntimeError("fit() must be called before processing events")
        recommendations: list[Recommendation] = []
        if self._next_batch is None:
            self._next_batch = event.time
        while self._next_batch <= event.time:
            recommendations.extend(self._run_batch(self._next_batch))
            self._next_batch += self.period
        self._graph.add(event.user, event.tweet, event.time)
        return recommendations

    def finalize(self, end_time: float) -> list[Recommendation]:
        if not self._fitted or self._next_batch is None:
            return []
        if self._next_batch <= end_time:
            batch = self._run_batch(end_time)
            self._next_batch = end_time + self.period
            return batch
        return []

    # ------------------------------------------------------------------
    # Query engine
    # ------------------------------------------------------------------
    def recommend_for_user(self, user: int) -> list[tuple[int, float]]:
        """Top-N (tweet, score) for ``user`` from the current graph."""
        visits = self._walk_visits(user)
        if not visits:
            return []
        return top_k_items(visits, self.top_n)

    def _run_batch(self, now: float) -> list[Recommendation]:
        self._graph.expire_before(now - self.window)
        batch: list[Recommendation] = []
        for user in sorted(self._targets):
            for tweet, score in self.recommend_for_user(user):
                batch.append(
                    Recommendation(user=user, tweet=tweet, score=score, time=now)
                )
        return batch

    def _walk_visits(self, user: int) -> dict[int, float]:
        """Tweet visit counts over ``walks`` Monte-Carlo SALSA walks."""
        own_tweets = self._graph.tweets_of(user)
        if not own_tweets:
            return {}
        known = set(own_tweets)
        visits: dict[int, float] = {}
        rng = self._rng
        for _ in range(self.walks):
            current_user = user
            for _ in range(self.walk_depth):
                tweets = self._graph.tweets_of(current_user)
                if not tweets:
                    break
                tweet = tweets[int(rng.integers(len(tweets)))]
                if tweet not in known:
                    visits[tweet] = visits.get(tweet, 0.0) + 1.0
                users = self._graph.users_of(tweet)
                if not users:
                    break
                current_user = users[int(rng.integers(len(users)))]
        return visits
