"""The paper's competitor systems: collaborative filtering, the Bayesian
inference model, and GraphJet, plus the shared recommender interface."""

from repro.baselines.base import Recommendation, Recommender
from repro.baselines.bayes import BayesRecommender
from repro.baselines.cf import CollaborativeFilteringRecommender
from repro.baselines.graphjet import GraphJetRecommender

__all__ = [
    "BayesRecommender",
    "CollaborativeFilteringRecommender",
    "GraphJetRecommender",
    "Recommendation",
    "Recommender",
]
