"""User-based collaborative filtering baseline (Herlocker et al., 1999).

The network-independent competitor of §6: similarity is the same
popularity-adjusted Jaccard of Def. 3.1, but computed over **every** pair
of users rather than 2-hop neighbourhoods — the quadratic pre-computation
that dominates CF's cost in the paper's Table 5 (8.6 s/user init, 0.5 ms
per message afterwards).

Online scoring: when a retweet of tweet ``t`` by user ``v`` streams in,
every target user ``u`` with ``sim(u, v) > 0`` receives score mass
``sim(u, v)`` normalized by u's total neighbour mass — the classic
weighted-vote prediction restricted to binary feedback.  Because any
positive similarity anywhere in the corpus generates a candidate, CF
emits far more recommendations than the graph-bounded methods, which is
exactly its Figure-7 signature (linear growth in k).
"""

from __future__ import annotations

from repro.baselines.base import Recommendation, Recommender
from repro.core.profiles import RetweetProfiles
from repro.core.similarity import similarity
from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet

__all__ = ["CollaborativeFilteringRecommender"]


class CollaborativeFilteringRecommender(Recommender):
    """All-pairs user-based CF with adjusted-Jaccard similarity.

    Parameters
    ----------
    min_score:
        Normalized scores below this floor are not emitted.
    """

    name = "CF"

    def __init__(self, min_score: float = 1e-6):
        self.min_score = min_score
        #: neighbour -> {target user -> similarity}: the inverted view of
        #: the similarity matrix rows of the evaluated users.
        self._influence: dict[int, dict[int, float]] = {}
        #: target user -> total similarity mass (the vote normalizer).
        self._mass: dict[int, float] = {}
        #: (user, tweet) running scores, so each event emits the updated
        #: cumulative prediction.
        self._scores: dict[tuple[int, int], float] = {}
        self._seen: dict[int, set[int]] = {}
        self._fitted = False

    def fit(
        self,
        dataset: TwitterDataset,
        train: list[Retweet],
        target_users: set[int] | None = None,
    ) -> None:
        profiles = RetweetProfiles(train)
        if target_users is None:
            target_users = set(profiles.users())
        self._influence = {}
        self._mass = {}
        # Faithful to the method under comparison: CF materializes the
        # similarity of every (target, other-user) pair by direct profile
        # comparison — the quadratic pre-computation that dominates CF's
        # Table-5 init cost (8.6 s/user at paper scale).  Avoiding exactly
        # this scan is the point of the SimGraph construction.
        everyone = list(profiles.users())
        for user in target_users:
            neighbours: dict[int, float] = {}
            for other in everyone:
                score = similarity(profiles, user, other)
                if score > 0.0:
                    neighbours[other] = score
            if not neighbours:
                continue
            self._mass[user] = sum(neighbours.values())
            for neighbour, sim in neighbours.items():
                self._influence.setdefault(neighbour, {})[user] = sim
        self._scores = {}
        self._seen = {
            user: set(profiles.profile(user)) for user in target_users
        }
        self._fitted = True

    def on_event(self, event: Retweet) -> list[Recommendation]:
        if not self._fitted:
            raise RuntimeError("fit() must be called before processing events")
        recommendations: list[Recommendation] = []
        for user, sim in self._influence.get(event.user, {}).items():
            if event.tweet in self._seen.get(user, ()):
                continue
            key = (user, event.tweet)
            self._scores[key] = self._scores.get(key, 0.0) + sim
            score = self._scores[key] / self._mass[user]
            if score >= self.min_score:
                recommendations.append(
                    Recommendation(
                        user=user, tweet=event.tweet, score=score, time=event.time
                    )
                )
        # Absorb the event: the retweeting user now knows the tweet.
        self._seen.setdefault(event.user, set()).add(event.tweet)
        return recommendations
