"""The common recommender interface of the evaluation protocol (§6.1).

All four systems the paper compares — SimGraph, collaborative filtering,
the Bayesian inference model and GraphJet — are driven identically by the
replay engine:

1. :meth:`Recommender.fit` trains on the chronological train split;
2. :meth:`Recommender.on_event` is called for every test retweet **in
   time order**; the recommender first emits any recommendations it
   produces, then absorbs the event into its online state;
3. :meth:`Recommender.finalize` drains buffered work at end of stream.

A :class:`Recommendation` is a claim "``user`` will like ``tweet``",
stamped with the simulated time it was issued — the replay engine turns
these into hits, budgets and advance times.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet

__all__ = ["Recommendation", "Recommender"]


@dataclass(frozen=True, slots=True)
class Recommendation:
    """A scored (user, tweet) prediction issued at simulated ``time``."""

    user: int
    tweet: int
    score: float
    time: float


class Recommender(ABC):
    """Base class for every recommendation method under evaluation."""

    #: Short display name used in reports ("SimGraph", "CF", ...).
    name: str = "recommender"

    @abstractmethod
    def fit(
        self,
        dataset: TwitterDataset,
        train: list[Retweet],
        target_users: set[int] | None = None,
    ) -> None:
        """Train on the ``train`` split of ``dataset``.

        ``dataset`` supplies static context (users, follow graph, tweet
        metadata); behavioural signals must come **only** from ``train``
        and subsequently-streamed events — never from the dataset's full
        retweet log, which contains the future.  ``target_users`` is the
        evaluated population; implementations may restrict emitted
        recommendations to it for efficiency.
        """

    @abstractmethod
    def on_event(self, event: Retweet) -> list[Recommendation]:
        """Process one test retweet; return newly issued recommendations.

        Implementations must only use information available strictly
        before ``event.time`` plus the event itself.
        """

    def finalize(self, end_time: float) -> list[Recommendation]:
        """Flush work still buffered when the stream ends (default: none)."""
        return []
