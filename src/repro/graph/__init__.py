"""Graph substrate: directed graph, traversal, metrics, bipartite
interaction graph and social-graph generators."""

from repro.graph.bipartite import Interaction, InteractionGraph
from repro.graph.communities import label_propagation_communities, modularity
from repro.graph.digraph import DiGraph
from repro.graph.generators import community_preferential_graph
from repro.graph.metrics import (
    GraphSummary,
    degree_arrays,
    path_length_sample,
    summarize_graph,
)
from repro.graph.traversal import (
    bfs_distances,
    k_hop_neighborhood,
    shortest_path_length,
)

__all__ = [
    "DiGraph",
    "label_propagation_communities",
    "modularity",
    "GraphSummary",
    "Interaction",
    "InteractionGraph",
    "bfs_distances",
    "community_preferential_graph",
    "degree_arrays",
    "k_hop_neighborhood",
    "path_length_sample",
    "shortest_path_length",
    "summarize_graph",
]
