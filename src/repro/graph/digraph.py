"""A lightweight directed graph tailored to the library's access patterns.

Both adjacency directions are indexed because the recommender needs fast
``successors`` (who do I follow / who influences me) *and* fast
``predecessors`` (who follows me / whom do I influence).  Nodes are arbitrary
hashable values; in practice the library uses integer user ids.

Edges optionally carry a float weight — the SimGraph stores similarity
scores there; the raw follow graph leaves weights at 1.0.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.exceptions import GraphError

__all__ = ["DiGraph"]

Node = Hashable

#: Shared empty mapping returned by :meth:`DiGraph.out_row` for unknown
#: nodes; never mutated.
_EMPTY_ROW: dict = {}


class DiGraph:
    """Directed graph with O(1) neighbour access in both directions.

    Example
    -------
    >>> g = DiGraph()
    >>> g.add_edge(1, 2, weight=0.5)
    >>> g.add_edge(1, 3)
    >>> sorted(g.successors(1))
    [2, 3]
    >>> g.weight(1, 2)
    0.5
    """

    def __init__(self) -> None:
        self._succ: dict[Node, dict[Node, float]] = {}
        self._pred: dict[Node, set[Node]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert ``node``; adding an existing node is a no-op."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = set()

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Insert every node of ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Insert the directed edge ``u -> v``; endpoints are auto-created.

        Re-adding an existing edge overwrites its weight. Self-loops are
        rejected: neither the follow graph nor the SimGraph is reflexive.
        """
        if u == v:
            raise GraphError(f"self-loop on node {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        if v not in self._succ[u]:
            self._edge_count += 1
        self._succ[u][v] = weight
        self._pred[v].add(u)

    def set_row(self, u: Node, row: dict[Node, float]) -> None:
        """Replace every outgoing edge of ``u`` with ``row`` in one step.

        The delta maintenance engine swaps whole recomputed rows into a
        copied graph; ``row``'s iteration order becomes the new edge
        order (which the CSR compiler preserves).  ``u`` is created if
        absent; targets are auto-created like :meth:`add_edge`.
        """
        if u in row:
            raise GraphError(f"self-loop on node {u!r} is not allowed")
        self.add_node(u)
        old = self._succ[u]
        if row.keys() == old.keys():
            # Weights-only swap: no predecessor bookkeeping to redo.
            self._succ[u] = dict(row)
            return
        for v in old:
            self._pred[v].discard(u)
        for v in row:
            self.add_node(v)
            self._pred[v].add(u)
        self._edge_count += len(row) - len(old)
        self._succ[u] = dict(row)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Delete the edge ``u -> v``; raises GraphError when absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge {u!r} -> {v!r} does not exist")
        del self._succ[u][v]
        self._pred[v].discard(u)
        self._edge_count -= 1

    def remove_node(self, node: Node) -> None:
        """Delete ``node`` and every incident edge."""
        if node not in self._succ:
            raise GraphError(f"node {node!r} does not exist")
        for v in list(self._succ[node]):
            self.remove_edge(node, v)
        for u in list(self._pred[node]):
            self.remove_edge(u, node)
        del self._succ[node]
        del self._pred[node]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._succ)

    def edges(self) -> Iterator[tuple[Node, Node, float]]:
        """Iterate over all (source, target, weight) triples."""
        for u, targets in self._succ.items():
            for v, w in targets.items():
                yield u, v, w

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        """Number of directed edges."""
        return self._edge_count

    def has_edge(self, u: Node, v: Node) -> bool:
        """True when the directed edge ``u -> v`` exists."""
        return u in self._succ and v in self._succ[u]

    def weight(self, u: Node, v: Node) -> float:
        """Weight of the edge ``u -> v``; raises GraphError when absent."""
        try:
            return self._succ[u][v]
        except KeyError:
            raise GraphError(f"edge {u!r} -> {v!r} does not exist") from None

    def get_weight(
        self, u: Node, v: Node, default: float | None = None
    ) -> float | None:
        """Weight of ``u -> v``, or ``default`` when the edge is absent.

        One lookup instead of a ``has_edge`` + ``weight`` pair — the
        delta maintenance engine probes every patched pair this way.
        """
        row = self._succ.get(u)
        if row is None:
            return default
        return row.get(v, default)

    def update_weight(self, u: Node, v: Node, weight: float) -> None:
        """Overwrite the weight of the *existing* edge ``u -> v``.

        Skips the endpoint bookkeeping of :meth:`add_edge` (both nodes
        and the predecessor link already exist); raises GraphError when
        the edge does not.
        """
        row = self._succ.get(u)
        if row is None or v not in row:
            raise GraphError(f"edge {u!r} -> {v!r} does not exist")
        row[v] = weight

    def successors(self, node: Node) -> Iterator[Node]:
        """Nodes reachable by one outgoing edge from ``node``."""
        self._check_node(node)
        return iter(self._succ[node])

    def predecessors(self, node: Node) -> Iterator[Node]:
        """Nodes with an edge pointing at ``node``."""
        self._check_node(node)
        return iter(self._pred[node])

    def out_edges(self, node: Node) -> Iterator[tuple[Node, float]]:
        """(target, weight) pairs of the outgoing edges of ``node``."""
        self._check_node(node)
        return iter(self._succ[node].items())

    def out_row(self, node: Node) -> dict[Node, float]:
        """The ``{target: weight}`` row of ``node`` — a live view, not a
        copy.  Callers must treat it as read-only; mutate through
        :meth:`add_edge` / :meth:`set_row` instead.  Returns an empty
        mapping for unknown nodes (a node with no out-edges and a node
        the graph never saw answer the same question identically)."""
        return self._succ.get(node, _EMPTY_ROW)

    def out_degree(self, node: Node) -> int:
        """Number of outgoing edges of ``node``."""
        self._check_node(node)
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        """Number of incoming edges of ``node``."""
        self._check_node(node)
        return len(self._pred[node])

    def _check_node(self, node: Node) -> None:
        if node not in self._succ:
            raise GraphError(f"node {node!r} does not exist")

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the sub-graph induced by ``nodes`` (edges both ends in)."""
        keep = set(nodes)
        sub = DiGraph()
        for node in keep:
            if node in self._succ:
                sub.add_node(node)
        for u in keep & self._succ.keys():
            for v, w in self._succ[u].items():
                if v in keep:
                    sub.add_edge(u, v, weight=w)
        return sub

    def reversed(self) -> "DiGraph":
        """Return a copy with every edge direction flipped."""
        rev = DiGraph()
        rev.add_nodes(self.nodes())
        for u, v, w in self.edges():
            rev.add_edge(v, u, weight=w)
        return rev

    def copy(self) -> "DiGraph":
        """Deep copy of the graph structure and weights.

        Row-level dict/set copies instead of per-edge re-insertion: the
        delta maintenance engine clones the previous SimGraph on every
        run, so this is a hot path.  Node and per-row edge orders are
        preserved exactly.
        """
        dup = DiGraph()
        dup._succ = {u: dict(targets) for u, targets in self._succ.items()}
        dup._pred = {v: set(sources) for v, sources in self._pred.items()}
        dup._edge_count = self._edge_count
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DiGraph(nodes={self.node_count}, edges={self.edge_count})"
