"""Directed social-graph generators.

The paper's follow graph (Table 1) has heavy-tailed in/out degrees, a small
diameter (15) and a short mean path (3.7), and exhibits homophily: users
with shared interests are more likely to be connected (§3.2).

:func:`community_preferential_graph` reproduces those properties:

* out-degrees are provided by the caller (typically bounded-zipf samples),
  giving a heavy-tailed out-degree distribution directly;
* targets are chosen by preferential attachment on current in-degree, which
  yields a power-law in-degree distribution and small-world path lengths;
* with probability ``community_bias`` a target is drawn from the source's
  own community, planting the homophily the SimGraph construction exploits.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigError
from repro.graph.digraph import DiGraph
from repro.utils.rng import make_rng

__all__ = ["community_preferential_graph"]


class _PreferentialSampler:
    """Sample nodes proportionally to (in-degree + 1) in amortized O(1).

    Keeps a flat list where each node appears once per unit of weight; a
    uniform draw over the list is a preferential draw over nodes.
    """

    def __init__(self, nodes: Sequence[int]):
        self._pool: list[int] = list(nodes)

    def bump(self, node: int) -> None:
        """Increase ``node``'s weight by one (it gained an in-edge)."""
        self._pool.append(node)

    def draw(self, rng: np.random.Generator) -> int:
        return self._pool[int(rng.integers(len(self._pool)))]


def community_preferential_graph(
    out_degrees: Sequence[int],
    communities: Sequence[int],
    community_bias: float = 0.7,
    seed: int | np.random.Generator | None = None,
    max_attempts: int = 20,
) -> DiGraph:
    """Generate a directed follow graph with homophily.

    Parameters
    ----------
    out_degrees:
        Target out-degree of each node; node ids are ``0..len-1``.
    communities:
        Community label of each node (same length as ``out_degrees``).
    community_bias:
        Probability that an edge target is drawn from the source's own
        community rather than from the whole graph.
    seed:
        RNG seed or generator.
    max_attempts:
        Resampling budget per edge before the edge is dropped (duplicate or
        self-loop targets are re-drawn).

    Notes
    -----
    A node's realized out-degree can fall slightly short of its target when
    its community is too small to supply distinct targets — matching how a
    real crawl never exactly hits its quota.
    """
    if len(out_degrees) != len(communities):
        raise ConfigError(
            f"out_degrees ({len(out_degrees)}) and communities "
            f"({len(communities)}) must have the same length"
        )
    if not 0.0 <= community_bias <= 1.0:
        raise ConfigError(f"community_bias must be in [0, 1], got {community_bias}")
    rng = make_rng(seed)
    n = len(out_degrees)
    graph = DiGraph()
    graph.add_nodes(range(n))
    if n <= 1:
        return graph

    members: dict[int, list[int]] = {}
    for node, label in enumerate(communities):
        members.setdefault(label, []).append(node)
    global_sampler = _PreferentialSampler(range(n))
    community_samplers = {
        label: _PreferentialSampler(nodes) for label, nodes in members.items()
    }

    # Shuffled insertion order prevents low node ids from hoarding early
    # preferential weight.
    order = rng.permutation(n)
    for source in order:
        source = int(source)
        label = communities[source]
        for _ in range(int(out_degrees[source])):
            target = _draw_target(
                rng,
                source,
                graph,
                global_sampler,
                community_samplers[label],
                community_bias,
                max_attempts,
            )
            if target is None:
                continue
            graph.add_edge(source, target)
            global_sampler.bump(target)
            community_samplers[communities[target]].bump(target)
    return graph


def _draw_target(
    rng: np.random.Generator,
    source: int,
    graph: DiGraph,
    global_sampler: _PreferentialSampler,
    community_sampler: _PreferentialSampler,
    community_bias: float,
    max_attempts: int,
) -> int | None:
    """Draw a valid edge target for ``source`` or None when none found."""
    for _ in range(max_attempts):
        if rng.random() < community_bias:
            candidate = community_sampler.draw(rng)
        else:
            candidate = global_sampler.draw(rng)
        if candidate != source and not graph.has_edge(source, candidate):
            return candidate
    return None
