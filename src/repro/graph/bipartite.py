"""Temporally-windowed bipartite interaction graph (GraphJet substrate).

GraphJet (Sharma et al., VLDB 2016) maintains the user <-> tweet engagement
graph restricted to a recent time window and answers queries with random
walks over it.  :class:`InteractionGraph` is that substrate: it records
timestamped (user, tweet) interactions, indexes both sides, and can expire
interactions older than the window — mirroring GraphJet's segment pruning.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Interaction", "InteractionGraph"]


@dataclass(frozen=True, slots=True)
class Interaction:
    """One engagement event: ``user`` interacted with ``tweet`` at ``time``."""

    user: int
    tweet: int
    time: float


class InteractionGraph:
    """Bipartite user-tweet graph over a sliding time window.

    Interactions must be added in non-decreasing time order (they come from
    a chronological event stream).  ``expire_before`` drops everything older
    than a cutoff, keeping the structure bounded like GraphJet's in-memory
    segments.
    """

    def __init__(self, window: float | None = None):
        if window is not None and window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._by_user: dict[int, dict[int, float]] = {}
        self._by_tweet: dict[int, dict[int, float]] = {}
        self._log: deque[Interaction] = deque()
        self._last_time = float("-inf")

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, user: int, tweet: int, time: float) -> None:
        """Record that ``user`` engaged with ``tweet`` at ``time``.

        Re-engagement refreshes the stored timestamp.  When a window is
        configured, interactions that fell out of it are expired first.
        """
        if time < self._last_time:
            raise ValueError(
                f"interactions must arrive in time order: {time} < {self._last_time}"
            )
        self._last_time = time
        if self.window is not None:
            self.expire_before(time - self.window)
        self._by_user.setdefault(user, {})[tweet] = time
        self._by_tweet.setdefault(tweet, {})[user] = time
        self._log.append(Interaction(user, tweet, time))

    def expire_before(self, cutoff: float) -> int:
        """Drop interactions strictly older than ``cutoff``; return count.

        An edge survives when the *latest* engagement between its endpoints
        is recent enough, matching the refresh semantics of :meth:`add`.
        """
        removed = 0
        while self._log and self._log[0].time < cutoff:
            stale = self._log.popleft()
            current = self._by_user.get(stale.user, {}).get(stale.tweet)
            # Only remove when this log entry is the edge's latest refresh.
            if current is not None and current == stale.time:
                del self._by_user[stale.user][stale.tweet]
                if not self._by_user[stale.user]:
                    del self._by_user[stale.user]
                del self._by_tweet[stale.tweet][stale.user]
                if not self._by_tweet[stale.tweet]:
                    del self._by_tweet[stale.tweet]
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def user_count(self) -> int:
        """Number of users with at least one live interaction."""
        return len(self._by_user)

    @property
    def tweet_count(self) -> int:
        """Number of tweets with at least one live interaction."""
        return len(self._by_tweet)

    @property
    def edge_count(self) -> int:
        """Number of live user-tweet edges."""
        return sum(len(tweets) for tweets in self._by_user.values())

    def has_user(self, user: int) -> bool:
        """True when ``user`` has at least one live interaction."""
        return user in self._by_user

    def has_tweet(self, tweet: int) -> bool:
        """True when ``tweet`` has at least one live interaction."""
        return tweet in self._by_tweet

    def tweets_of(self, user: int) -> list[int]:
        """Tweets ``user`` engaged with inside the live window."""
        return list(self._by_user.get(user, ()))

    def users_of(self, tweet: int) -> list[int]:
        """Users who engaged with ``tweet`` inside the live window."""
        return list(self._by_tweet.get(tweet, ()))

    def tweet_degree(self, tweet: int) -> int:
        """Number of users engaged with ``tweet`` (its live popularity)."""
        return len(self._by_tweet.get(tweet, ()))

    def interactions(self) -> Iterator[Interaction]:
        """Iterate over the retained interaction log, oldest first."""
        return iter(self._log)
