"""Graph statistics reproducing the paper's structural measurements.

Table 1 and Table 4 report node/edge counts, mean degrees, diameter and
average path length; Figures 1 and 5 report the distribution of shortest
path lengths.  Exact all-pairs computation is quadratic, so — like the
paper, which samples 2,000 users — the expensive measures are estimated
from BFS trees rooted at a random node sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.traversal import bfs_distances
from repro.utils.rng import make_rng

__all__ = [
    "GraphSummary",
    "degree_arrays",
    "path_length_sample",
    "summarize_graph",
]

Node = Hashable


@dataclass(frozen=True)
class GraphSummary:
    """Structural statistics of a directed graph (Tables 1 and 4)."""

    node_count: int
    edge_count: int
    mean_out_degree: float
    mean_in_degree: float
    max_out_degree: int
    max_in_degree: int
    diameter: int
    mean_path_length: float
    path_length_counts: dict[int, int]

    def rows(self) -> list[tuple[str, object]]:
        """(feature, value) rows in the order of the paper's Table 1."""
        return [
            ("# nodes", self.node_count),
            ("# edges", self.edge_count),
            ("avg. out-deg.", round(self.mean_out_degree, 2)),
            ("avg. in-deg.", round(self.mean_in_degree, 2)),
            ("max out-deg.", self.max_out_degree),
            ("max in-deg.", self.max_in_degree),
            ("diameter", self.diameter),
            ("avg. path length", round(self.mean_path_length, 2)),
        ]


def degree_arrays(graph: DiGraph) -> tuple[np.ndarray, np.ndarray]:
    """Return (out_degrees, in_degrees) arrays over all nodes."""
    out_degrees = np.fromiter(
        (graph.out_degree(n) for n in graph.nodes()), dtype=np.int64
    )
    in_degrees = np.fromiter(
        (graph.in_degree(n) for n in graph.nodes()), dtype=np.int64
    )
    return out_degrees, in_degrees


def path_length_sample(
    graph: DiGraph,
    sample_size: int = 200,
    seed: int | np.random.Generator | None = 0,
) -> dict[int, int]:
    """Histogram of finite shortest-path lengths from sampled sources.

    Runs a full BFS from up to ``sample_size`` random source nodes and
    aggregates the distances of every reached node (distance >= 1).  This is
    the estimator behind Figures 1 and 5 and the diameter / average-path
    rows of Tables 1 and 4.
    """
    rng = make_rng(seed)
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    if len(nodes) > sample_size:
        indexes = rng.choice(len(nodes), size=sample_size, replace=False)
        sources = [nodes[i] for i in indexes]
    else:
        sources = nodes
    counts: dict[int, int] = {}
    for source in sources:
        for distance in bfs_distances(graph, source).values():
            if distance > 0:
                counts[distance] = counts.get(distance, 0) + 1
    return counts


def summarize_graph(
    graph: DiGraph,
    sample_size: int = 200,
    seed: int | np.random.Generator | None = 0,
) -> GraphSummary:
    """Compute the full :class:`GraphSummary` for ``graph``.

    Degree statistics are exact; diameter and mean path length are
    sample-based estimates (see :func:`path_length_sample`).
    """
    if graph.node_count == 0:
        return GraphSummary(0, 0, 0.0, 0.0, 0, 0, 0, 0.0, {})
    out_degrees, in_degrees = degree_arrays(graph)
    counts = path_length_sample(graph, sample_size=sample_size, seed=seed)
    if counts:
        total = sum(counts.values())
        mean_path = sum(d * c for d, c in counts.items()) / total
        diameter = max(counts)
    else:
        mean_path = 0.0
        diameter = 0
    return GraphSummary(
        node_count=graph.node_count,
        edge_count=graph.edge_count,
        mean_out_degree=float(out_degrees.mean()),
        mean_in_degree=float(in_degrees.mean()),
        max_out_degree=int(out_degrees.max()),
        max_in_degree=int(in_degrees.max()),
        diameter=diameter,
        mean_path_length=mean_path,
        path_length_counts=counts,
    )
