"""Breadth-first traversal primitives.

The homophily analysis (paper §3.2) and the SimGraph construction
(paper §4.1) both reduce to bounded BFS: distances between sampled user
pairs for Tables 2-3, and the 2-hop neighbourhood N2(u) for edge candidate
generation.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable

from repro.graph.digraph import DiGraph

__all__ = ["bfs_distances", "k_hop_neighborhood", "shortest_path_length"]

Node = Hashable


def bfs_distances(
    graph: DiGraph,
    source: Node,
    max_depth: int | None = None,
    neighbors: Callable[[Node], Iterable[Node]] | None = None,
) -> dict[Node, int]:
    """Return ``{node: distance}`` for nodes reachable from ``source``.

    ``max_depth`` bounds the exploration radius (inclusive); ``neighbors``
    overrides the expansion function — pass ``graph.predecessors`` to walk
    edges backwards.  The source itself maps to distance 0.
    """
    if neighbors is None:
        neighbors = graph.successors
    distances: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return distances


def k_hop_neighborhood(
    graph: DiGraph,
    source: Node,
    k: int,
    include_source: bool = False,
) -> set[Node]:
    """Nodes within ``k`` outgoing hops of ``source`` (paper's N_k(u)).

    The paper's N2(u) is ``k_hop_neighborhood(follow_graph, u, 2)`` —
    followees plus followees-of-followees.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    reached = bfs_distances(graph, source, max_depth=k)
    if not include_source:
        del reached[source]
    return set(reached)


def shortest_path_length(graph: DiGraph, source: Node, target: Node) -> int | None:
    """Length of the shortest directed path ``source -> target``.

    Returns ``None`` when ``target`` is unreachable ("Impossible" rows in
    the paper's Table 2).  Uses bidirectional BFS: expands the smaller
    frontier each round, meeting in the middle, which is what makes the
    Table-2 experiment tractable on large graphs.
    """
    if source == target:
        return 0
    # Frontier sets and visited-with-distance maps for both directions.
    dist_fwd: dict[Node, int] = {source: 0}
    dist_bwd: dict[Node, int] = {target: 0}
    frontier_fwd = {source}
    frontier_bwd = {target}
    while frontier_fwd and frontier_bwd:
        # Expand the smaller frontier to keep work balanced.
        if len(frontier_fwd) <= len(frontier_bwd):
            frontier_fwd = _expand(graph.successors, frontier_fwd, dist_fwd)
            meet = frontier_fwd & dist_bwd.keys()
        else:
            frontier_bwd = _expand(graph.predecessors, frontier_bwd, dist_bwd)
            meet = frontier_bwd & dist_fwd.keys()
        if meet:
            return min(dist_fwd[n] + dist_bwd[n] for n in meet)
    return None


def _expand(
    neighbors: Callable[[Node], Iterable[Node]],
    frontier: set[Node],
    distances: dict[Node, int],
) -> set[Node]:
    """One BFS level: return the next frontier and record its distances."""
    next_frontier: set[Node] = set()
    for node in frontier:
        depth = distances[node]
        for neighbor in neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                next_frontier.add(neighbor)
    return next_frontier
