"""Replay adapters: drive a (sharded) service through dataset streams.

The differential suite, the ``--shards`` CLI path and the scaling bench
all need the same thing — a :class:`~repro.data.dataset.TwitterDataset`
turned into the exact ``add_user`` / ``add_follow`` / ``post_tweet`` /
``retweet`` call sequence a live service would see.  Centralizing the
sequencing here matters for the bit-exactness contract: the sharded and
single-process services must receive *identical* call streams, and tweet
posting must interleave with retweets in a deterministic order.

:class:`ServiceReplayRecommender` additionally adapts a service to the
:class:`~repro.baselines.base.Recommender` protocol so the standard
replay evaluation (:func:`repro.eval.replay.run_replay`) can score the
online service — sharded or not — against the paper's baselines.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.baselines.base import Recommendation, Recommender
from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet, Tweet

__all__ = [
    "ingest_graph",
    "drive_service",
    "ServiceReplayRecommender",
    "ShardedServiceRecommender",
]


def ingest_graph(service, dataset: TwitterDataset) -> None:
    """Register the dataset's users and follow edges, deterministically."""
    for user in sorted(dataset.users):
        service.add_user(user)
    for follower, followee, _ in dataset.follow_graph.edges():
        service.add_follow(follower, followee)


def drive_service(
    service,
    dataset: TwitterDataset,
    retweets: Iterable[Retweet],
    on_delivered: Callable[[Retweet, list[Recommendation]], None] | None = None,
    flush: bool = True,
) -> list[Recommendation]:
    """Feed ``retweets`` through ``service``, posting tweets as due.

    Assumes :func:`ingest_graph` already ran.  Every dataset tweet is
    posted as the stream clock passes its ``created_at`` (ties post
    before the retweet — a tweet must exist when its first share
    arrives); tweets created after the last given retweet stay unposted,
    so a stream can be driven in slices (warm-boot legs drive a first
    half, snapshot, then resume — already-posted tweets are skipped).

    Returns every delivered recommendation in emission order;
    ``on_delivered`` additionally observes each retweet's deliveries as
    they happen (the differential suite compares per-event, not just in
    aggregate).
    """
    retweets = list(retweets)
    if not retweets:
        return []
    horizon = retweets[-1].time
    posts = [
        t
        for t in sorted(
            dataset.tweets.values(), key=lambda t: (t.created_at, t.id)
        )
        if t.created_at <= horizon
    ]
    delivered: list[Recommendation] = []
    next_post = 0
    for event in retweets:
        while next_post < len(posts) and (
            posts[next_post].created_at <= event.time
        ):
            post = posts[next_post]
            next_post += 1
            if post.id in service.tweets:
                continue
            service.post_tweet(post.id, post.author, post.created_at)
        recs = service.retweet(event.user, event.tweet, event.time)
        delivered.extend(recs)
        if on_delivered is not None:
            on_delivered(event, recs)
    if flush:
        delivered.extend(service.flush(retweets[-1].time))
    return delivered


class ServiceReplayRecommender(Recommender):
    """Adapt a live service to the replay :class:`Recommender` protocol.

    ``fit`` ingests the social graph and streams the train split through
    the service (its deliveries are discarded — they predate the test
    window); ``on_event`` posts any tweets due by the event time and
    ingests the retweet; ``finalize`` drains the scheduler.

    ``service_factory`` defers construction to fit time so one adapter
    instance can be declared up front (the CLI pattern) and so sharded
    services spawn their workers only when actually evaluated.
    """

    name = "service"

    def __init__(self, service_factory: Callable[[], object]):
        self._factory = service_factory
        self.service = None
        self._posts: list[Tweet] = []
        self._next_post = 0

    def fit(
        self,
        dataset: TwitterDataset,
        train: list[Retweet],
        target_users: set[int] | None = None,
    ) -> None:
        self.service = self._factory()
        ingest_graph(self.service, dataset)
        # Every dataset tweet may be shared in the test window; queue all
        # posts and release them as the stream's clock passes them.
        self._posts = sorted(
            dataset.tweets.values(), key=lambda t: (t.created_at, t.id)
        )
        self._next_post = 0
        for event in train:
            self._post_until(event.time)
            self.service.retweet(event.user, event.tweet, event.time)

    def _post_until(self, now: float) -> None:
        posts = self._posts
        while self._next_post < len(posts):
            post = posts[self._next_post]
            if post.created_at > now:
                break
            self.service.post_tweet(post.id, post.author, post.created_at)
            self._next_post += 1

    def on_event(self, event: Retweet) -> list[Recommendation]:
        self._post_until(event.time)
        return self.service.retweet(event.user, event.tweet, event.time)

    def finalize(self, end_time: float) -> list[Recommendation]:
        released = self.service.flush(end_time)
        close = getattr(self.service, "close", None)
        if close is not None:
            close()
        return released


class ShardedServiceRecommender(ServiceReplayRecommender):
    """Replay adapter over a :class:`ShardedRecommendationService`."""

    def __init__(
        self,
        n_shards: int,
        config=None,
        start_method: str | None = None,
        partition_seed: int = 0,
        metrics=None,
    ):
        from repro.shard.coordinator import ShardedRecommendationService

        self.n_shards = n_shards
        super().__init__(
            lambda: ShardedRecommendationService(
                n_shards,
                config=config,
                start_method=start_method,
                partition_seed=partition_seed,
                metrics=metrics,
            )
        )
        self.name = f"service-shard{n_shards}"
