"""Per-shard worker: a slice of the recommendation service.

Each worker owns the SimGraph rows of the users its shard was assigned
(:class:`~repro.shard.partition.ShardPlan`), plus full replicas of the
follow graph and retweet profiles (cheap relative to similarity rows and
propagation state, and required for the maintenance walks).  The
coordinator drives workers through a small request/reply protocol —
every request is a ``(op, payload)`` tuple, every reply ``("ok", result)``
or ``("error", traceback)``.

Bit-identical distributed propagation
-------------------------------------
The reference engine (:class:`~repro.core.propagation.PropagationEngine`)
is a *round-synchronous Jacobi* iteration: every dirty user's new value is
computed from the previous round's values, and the per-user sum iterates
the row in insertion order.  That makes a bulk-synchronous-parallel (BSP)
split exact, not approximate:

* each worker recomputes only the dirty users it owns, with the same
  row dicts in the same order — identical float operations;
* values of remote influencers are *mirrored*: whenever an owned user's
  value changes and another shard's rows reference it, the new value is
  emitted to that shard at the round barrier, so every mirror equals the
  reference dict entry at the start of the next round;
* seeds are pinned to 1.0 on every worker (seed sets are globally known),
  so seed values never need emitting.

Most tasks never cross a shard boundary (homophily keeps the frontier
community-local): the coordinator grants the single active worker a
*free run* — it iterates locally until its frontier dies or it produces
the first cross-shard emission, at which point the computation degrades
gracefully to coordinator-paced lock-step rounds.

Kernel-accelerated row sums (``prop_backend="numba"``)
------------------------------------------------------
When the coordinator ships ``prop_backend="numba"`` (and the kernel of
:mod:`repro.core.propagation_kernel` can run), each worker compiles its
owned rows into a local CSR at every :meth:`ShardWorkerState._reindex`
and keeps a dense float64 mirror of each task's value dict.  The dirty
users of a round are then scored by the ``row_values`` kernel instead of
per-user dict walks.  The kernel iterates each row's influencers in CSR
order — the dict insertion order — and accumulates sequentially, so the
float sequence is *identical* to the reference loop and the bit-exactness
contract is preserved; everything outside the row sum (frontier, muting,
emissions, warm slices) still runs on the plain dicts.

The worker state object is plain Python and fully usable in-process
(the differential suite runs the whole protocol without processes);
:func:`shard_worker_main` wraps it in a pipe-served loop for
multiprocessing deployment.
"""

from __future__ import annotations

import traceback
from typing import Any

import numpy as np

from repro.core.delta import _reference_core_state
from repro.core.profiles import RetweetProfiles
from repro.core.simgraph import SimGraphBuilder
from repro.graph.digraph import DiGraph
from repro.shard.partition import ShardPlan

__all__ = ["ShardWorkerState", "shard_worker_main"]


class _TaskState:
    """In-flight propagation state of one task on one worker."""

    __slots__ = (
        "values", "frontier", "muted", "seeds", "beta", "rounds",
        "dense", "epoch",
    )

    def __init__(self, values: dict[int, float], seeds: frozenset[int], beta: float):
        self.values = values
        self.frontier: set[int] = set()
        self.muted: set[int] = set()
        self.seeds = seeds
        self.beta = beta
        self.rounds = 0
        #: Dense mirror of ``values`` over the local CSR column index
        #: (kernel path only; rebuilt lazily when ``epoch`` goes stale).
        self.dense: np.ndarray | None = None
        self.epoch = -1


class ShardWorkerState:
    """The full state machine of one shard worker.

    Parameters mirror the slice of :class:`~repro.service.engine.ServiceConfig`
    the propagation and maintenance paths consume; the coordinator ships
    them once at spawn time.
    """

    def __init__(
        self,
        shard_id: int,
        plan: ShardPlan,
        tau: float,
        min_score: float,
        tolerance: float = 1e-10,
        max_iterations: int = 200,
        hops: int = 2,
        max_influencers: int | None = None,
        prop_backend: str = "reference",
    ):
        self.shard_id = shard_id
        self.plan = plan
        self.min_score = min_score
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.prop_backend = prop_backend
        #: Kernel implementations for row sums, or ``None`` (dict path).
        self._impls: dict | None = None
        if prop_backend == "numba":
            from repro.core.propagation_kernel import (
                ensure_compiled,
                get_impls,
                kernel_mode,
            )

            if kernel_mode() != "off":
                self._impls, jitted = get_impls()
                if jitted:
                    # Compile once at spawn, not inside the first round.
                    ensure_compiled()
                    # A broken compile downgrades the whole worker.
                    if kernel_mode() == "off":
                        self._impls = None
        self.builder = SimGraphBuilder(
            tau=tau, hops=hops, max_influencers=max_influencers
        )
        self.follow_graph = DiGraph()
        self.profiles = RetweetProfiles()
        #: Owned SimGraph rows: user -> {influencer: sim} (insertion order
        #: identical to the reference graph's row order).
        self.rows: dict[int, dict[int, float]] = {}
        #: Inverted rows: influencer -> set of owned users referencing it.
        self.in_index: dict[int, set[int]] = {}
        #: Owned users referenced by *other* shards -> target shard tuple;
        #: shipped by the coordinator after each refs aggregation.
        self.remote_refs: dict[int, tuple[int, ...]] = {}
        #: Warm value slices per tweet (owned values + received mirrors).
        self.slices: dict[int, dict[int, float]] = {}
        #: In-flight propagation tasks, keyed by tweet id.
        self.tasks: dict[int, _TaskState] = {}
        #: Local CSR of the owned rows (kernel path only), rebuilt at
        #: every :meth:`_reindex`: indptr/indices/weights over a column
        #: index covering every influencer, plus user -> row position.
        self._csr: dict | None = None
        #: Bumped per CSR rebuild; stale task mirrors are recomputed.
        self._csr_epoch = 0

    # ------------------------------------------------------------------
    # Replica ingestion
    # ------------------------------------------------------------------
    def apply_events(self, events: list[tuple]) -> None:
        """Replay the coordinator's event log slice, in order.

        Replaying the exact same ``add_user``/``add_follow``/``add``
        sequence reproduces the reference process's dict *and set*
        internal ordering (int hashing is deterministic), which the
        maintenance walks rely on for bit-identical float accumulation.
        """
        graph = self.follow_graph
        profiles = self.profiles
        for event in events:
            kind = event[0]
            if kind == "rt":
                profiles.add(event[1], event[2])
            elif kind == "follow":
                if not graph.has_edge(event[1], event[2]):
                    graph.add_edge(event[1], event[2])
            elif kind == "user":
                graph.add_node(event[1])

    def _owned(self, user: int) -> bool:
        return self.plan.owner(user) == self.shard_id

    def _owned_users(self) -> list[int]:
        return sorted(
            u for u in self.follow_graph.nodes() if self._owned(u)
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _compile_rows(self) -> None:
        """Compile the owned rows into a local CSR for the kernel path.

        Row order is the ``rows`` dict order and each row's edge order is
        its dict insertion order, so the kernel's sequential accumulation
        replays the exact float sequence of the reference loop.  The
        column index covers every influencer (owned or mirrored remote).
        """
        self._csr_epoch += 1
        if self._impls is None or not self.rows:
            self._csr = None
            return
        index: dict[int, int] = {}
        row_of: dict[int, int] = {}
        indptr = np.zeros(len(self.rows) + 1, dtype=np.int64)
        cols: list[int] = []
        sims: list[float] = []
        for r, (u, row) in enumerate(self.rows.items()):
            row_of[u] = r
            for v, sim in row.items():
                j = index.get(v)
                if j is None:
                    j = len(index)
                    index[v] = j
                cols.append(j)
                sims.append(sim)
            indptr[r + 1] = len(cols)
        self._csr = {
            "indptr": indptr,
            "indices": np.asarray(cols, dtype=np.int64),
            "weights": np.asarray(sims, dtype=np.float64),
            "row_of": row_of,
            "index": index,
        }

    def _ensure_dense(self, state: _TaskState) -> np.ndarray:
        """The task's dense value mirror, rebuilt if the CSR changed."""
        csr = self._csr
        assert csr is not None
        if state.dense is None or state.epoch != self._csr_epoch:
            dense = np.zeros(len(csr["index"]), dtype=np.float64)
            index = csr["index"]
            for user, p in state.values.items():
                j = index.get(user)
                if j is not None:
                    dense[j] = p
            state.dense = dense
            state.epoch = self._csr_epoch
        return state.dense

    def _reindex(self) -> dict:
        """Rebuild the inverted index; report edges and referenced users."""
        in_index: dict[int, set[int]] = {}
        edges = 0
        for u, row in self.rows.items():
            edges += len(row)
            for v in row:
                in_index.setdefault(v, set()).add(u)
        self.in_index = in_index
        self._compile_rows()
        boundary = sum(
            1
            for u, row in self.rows.items()
            for v in row
            if not self._owned(v)
        )
        return {
            "edges": edges,
            "boundary_edges": boundary,
            "referenced": sorted(in_index),
        }

    def rebuild_full(self, events: list[tuple]) -> dict:
        """From-scratch rebuild of the owned rows."""
        self.apply_events(events)
        rows: dict[int, dict[int, float]] = {}
        graph = self.follow_graph
        profiles = self.profiles
        builder = self.builder
        for u in self._owned_users():
            kept = builder.edges_for_user(u, graph, profiles)
            if kept:
                rows[u] = kept
        self.rows = rows
        self.profiles.mark_clean()
        return self._reindex()

    def rebuild_delta(
        self, events: list[tuple], core: list[int], needed: dict[int, list[int]]
    ) -> dict:
        """Phase 1 of a delta rebuild: swap owned core rows, emit patches.

        ``core`` is the globally sorted core; this worker recomputes the
        rows it owns through the *same* restricted walks as the reference
        (:func:`repro.core.delta._reference_core_state`), so the rows are
        bit-for-bit what a single process would store.  The symmetric
        scores for (fringe, core) pairs are returned as patches keyed by
        core user for the coordinator to route to the fringe owners.
        """
        self.apply_events(events)
        owned_core = [w for w in core if self._owned(w)]
        needed_sets = {
            w: set(needed[w]) for w in owned_core if w in needed
        }
        rows, sym, pairs = _reference_core_state(
            owned_core, self.follow_graph, self.profiles, self.builder,
            needed_sets,
        )
        topology_changed = False
        changed = 0
        for w in owned_core:
            row = rows.get(w, {})
            old_row = self.rows.get(w, {})
            if row == old_row:
                continue
            changed += 1
            if row.keys() != old_row.keys():
                topology_changed = True
            if row:
                self.rows[w] = row
            else:
                self.rows.pop(w, None)
        # Ship only the non-zero scores each fringe user needs; the
        # receiving owner reconstructs the reference attention set from
        # these plus its own old rows.
        patches: dict[int, dict[int, float]] = {}
        for w in owned_core:
            wanted = needed_sets.get(w)
            if not wanted:
                continue
            scores = sym.get(w, {})
            hit = {u: scores[u] for u in scores.keys() & wanted}
            patches[w] = hit
        return {
            "patches": patches,
            "pairs_rescored": pairs,
            "rows_changed": changed,
            "topology_changed": topology_changed,
        }

    def apply_fringe(
        self,
        core_order: list[int],
        candidates: dict[int, list[int]],
        patches: dict[int, dict[int, float]],
    ) -> dict:
        """Phase 2 of a delta rebuild: patch owned fringe rows in place.

        ``core_order`` is the globally sorted core restricted to users
        with patches for this shard; iterating it ascending reproduces
        the reference surgery's append order, so new edges land at the
        same row positions as in the single-process graph.
        """
        tau = self.builder.tau
        topology_changed = False
        changed = 0
        for w in core_order:
            scores = patches.get(w, {})
            wanted = candidates.get(w, [])
            attention = set(scores)
            for u in wanted:
                row = self.rows.get(u)
                if row is not None and w in row:
                    attention.add(u)
            for u in attention:
                score = scores.get(u, 0.0)
                row = self.rows.get(u)
                old_weight = row.get(w) if row is not None else None
                if score >= tau:
                    if old_weight is None:
                        if row is None:
                            row = {}
                            self.rows[u] = row
                        row[w] = score
                        changed += 1
                        topology_changed = True
                    elif old_weight != score:
                        row[w] = score
                        changed += 1
                elif old_weight is not None:
                    del row[w]
                    changed += 1
                    topology_changed = True
                    if not row:
                        del self.rows[u]
        report = self._reindex()
        report["rows_changed"] = changed
        report["topology_changed"] = topology_changed
        return report

    def finish_rebuild(self) -> dict:
        """Re-index after a delta phase 1 with no fringe traffic."""
        return self._reindex()

    def load_snapshot(self, path: str, mmap: bool) -> dict:
        """Adopt the owned slice of a persisted SimGraph snapshot.

        Every worker maps the same v2 snapshot file — the mmap pages are
        shared between processes, so adoption stays cheap — and keeps
        only the rows it owns.
        """
        from repro.core.persistence import load_simgraph

        simgraph = load_simgraph(path, mmap=mmap)
        rows: dict[int, dict[int, float]] = {}
        for u in simgraph.users():
            if not self._owned(u):
                continue
            row = simgraph.row(u)
            if row:
                rows[u] = row
        self.rows = rows
        self.profiles.mark_clean()
        return self._reindex()

    def set_refs(self, refs: dict[int, tuple[int, ...]]) -> None:
        """Install which other shards reference each owned user."""
        self.remote_refs = refs

    def dump_rows(self) -> dict[int, dict[int, float]]:
        """The owned rows (assembly of a global SimGraph for inspection)."""
        return self.rows

    # ------------------------------------------------------------------
    # Warm-state hygiene (decided centrally by the coordinator)
    # ------------------------------------------------------------------
    def evict(self, tweets: list[int]) -> None:
        for tweet in tweets:
            self.slices.pop(tweet, None)

    def clear_warm(self) -> None:
        self.slices.clear()

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def init_task(self, spec: dict) -> None:
        """Materialize in-flight state for a task (idempotent per batch).

        ``spec`` carries ``tweet``, sorted ``seeds``, ``beta``, ``warm``
        and ``cold`` flags.  Mirrors the reference engine's warm-start
        filter exactly: previous values survive only for non-seeds with
        p > 0, and every current seed is pinned to 1.0.
        """
        tweet = spec["tweet"]
        if tweet in self.tasks:
            return
        seeds = frozenset(spec["seeds"])
        if spec.get("cold"):
            self.slices.pop(tweet, None)
        values: dict[int, float] = {}
        if spec["warm"]:
            stored = self.slices.get(tweet)
            if stored:
                values = {
                    u: p
                    for u, p in stored.items()
                    if u not in seeds and p > 0.0
                }
        for seed in spec["seeds"]:
            values[seed] = 1.0
        self.tasks[tweet] = _TaskState(values, seeds, spec["beta"])

    def _run_round(
        self, state: _TaskState, external: dict[int, tuple[float, bool]]
    ) -> tuple[dict[int, dict[int, tuple[float, bool]]], bool]:
        """One Jacobi round; returns (emissions by shard, had frontier).

        ``external`` maps remote users to their newly emitted
        ``(value, in_frontier)``; values are applied to the mirror table
        *before* the round (the reference updated them in the previous
        round's ``probabilities.update``), frontier members then join the
        local frontier for dirty-set expansion.
        """
        values = state.values
        csr = self._csr
        dense = self._ensure_dense(state) if csr is not None else None
        col_index = csr["index"] if csr is not None else None
        frontier = set(state.frontier)
        for user, (p, in_frontier) in external.items():
            if user not in state.seeds:
                values[user] = p
                if dense is not None:
                    j = col_index.get(user)
                    if j is not None:
                        dense[j] = p
            if in_frontier:
                frontier.add(user)
        if not frontier:
            state.frontier = set()
            return {}, False
        state.rounds += 1
        in_index = self.in_index
        seeds = state.seeds
        dirty: set[int] = set()
        for changed in frontier:
            hit = in_index.get(changed)
            if hit:
                dirty.update(u for u in hit if u not in seeds)
        get = values.get
        if dense is not None and dirty:
            # Kernel path: score every dirty row in one call.  The kernel
            # walks each row in CSR (== dict insertion) order with the
            # same sequential accumulation, so each sum is bit-identical
            # to the dict loop below.
            dirty_users = list(dirty)
            row_of = csr["row_of"]
            rows_arr = np.fromiter(
                (row_of[u] for u in dirty_users),
                dtype=np.int64, count=len(dirty_users),
            )
            out = np.empty(len(dirty_users), dtype=np.float64)
            self._impls["row_values"](
                csr["indptr"], csr["indices"], csr["weights"],
                dense, rows_arr, out,
            )
            scored = [(u, float(out[i])) for i, u in enumerate(dirty_users)]
        else:
            scored = []
            for user in dirty:
                row = self.rows[user]
                total = 0.0
                for v, sim in row.items():
                    total += get(v, 0.0) * sim
                scored.append((user, total / len(row)))
        new_values: dict[int, float] = {}
        next_frontier: set[int] = set()
        tolerance = self.tolerance
        beta = state.beta
        muted = state.muted
        for user, new_p in scored:
            old_p = get(user, 0.0)
            delta = abs(new_p - old_p)
            if delta <= tolerance:
                continue
            new_values[user] = new_p
            if delta >= beta:
                if user not in muted:
                    next_frontier.add(user)
            elif beta > 0.0:
                muted.add(user)
        values.update(new_values)
        if dense is not None:
            for user, p in new_values.items():
                j = col_index.get(user)
                if j is not None:
                    dense[j] = p
        state.frontier = next_frontier
        emissions: dict[int, dict[int, tuple[float, bool]]] = {}
        remote_refs = self.remote_refs
        for user, p in new_values.items():
            targets = remote_refs.get(user)
            if not targets:
                continue
            flag = user in next_frontier
            for shard in targets:
                emissions.setdefault(shard, {})[user] = (p, flag)
        return emissions, True

    def run_task(self, spec: dict) -> dict:
        """Start a task: init, then free-run (solo) or one round (lock-step).

        Returns ``{"emissions", "active", "rounds"}``; a solo worker
        iterates until its frontier dies, the iteration cap hits, or the
        first cross-shard emission appears (the coordinator then paces
        the remaining rounds so all involved shards stay synchronous).
        """
        self.init_task(spec)
        state = self.tasks[spec["tweet"]]
        external: dict[int, tuple[float, bool]] = {}
        if spec["mode"] == "seed":
            external = {
                s: (1.0, True)
                for s in spec["new_seeds"]
                if s in self.in_index
            }
        emissions: dict[int, dict[int, tuple[float, bool]]] = {}
        if spec["solo"]:
            while state.rounds < self.max_iterations:
                emissions, ran = self._run_round(state, external)
                external = {}
                if not ran or emissions or not state.frontier:
                    break
        else:
            if state.rounds < self.max_iterations:
                emissions, _ = self._run_round(state, external)
        return {
            "emissions": emissions,
            "active": bool(state.frontier),
            "rounds": state.rounds,
        }

    def step_task(
        self, tweet: int, incoming: dict[int, tuple[float, bool]]
    ) -> dict:
        """One coordinator-paced round with mirror updates ``incoming``."""
        state = self.tasks[tweet]
        emissions, _ = self._run_round(state, incoming)
        return {
            "emissions": emissions,
            "active": bool(state.frontier),
            "rounds": state.rounds,
        }

    def finalize_task(self, tweet: int) -> dict:
        """Store the warm slice; return owned scores and exact-1.0 users."""
        state = self.tasks.pop(tweet)
        self.slices[tweet] = state.values
        owned = self._owned
        scores = {
            u: p
            for u, p in state.values.items()
            if p >= self.min_score and u not in state.seeds and owned(u)
        }
        ones = [u for u, p in state.values.items() if p == 1.0 and owned(u)]
        return {"scores": scores, "ones": ones}

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, op: str, payload: Any) -> Any:
        """Serve one protocol request (shared by pipe and in-process modes)."""
        if op == "tasks":
            self.evict(payload.get("evict", ()))
            if payload.get("clear_warm"):
                self.clear_warm()
            return {
                spec["tweet"]: self.run_task(spec)
                for spec in payload["specs"]
            }
        if op == "step":
            self.evict(payload.get("evict", ()))
            for spec in payload.get("init", ()):
                self.init_task(spec)
            return {
                tweet: self.step_task(tweet, incoming)
                for tweet, incoming in payload["steps"].items()
            }
        if op == "finalize":
            self.evict(payload.get("evict", ()))
            return {
                tweet: self.finalize_task(tweet)
                for tweet in payload["tweets"]
            }
        if op == "events":
            self.apply_events(payload["events"])
            if payload.get("mark_clean"):
                self.profiles.mark_clean()
            return True
        if op == "rebuild_full":
            return self.rebuild_full(payload["events"])
        if op == "rebuild_delta":
            return self.rebuild_delta(
                payload["events"], payload["core"], payload["needed"]
            )
        if op == "apply_fringe":
            return self.apply_fringe(
                payload["core_order"], payload["candidates"],
                payload["patches"],
            )
        if op == "finish_rebuild":
            return self.finish_rebuild()
        if op == "load_snapshot":
            return self.load_snapshot(payload["path"], payload["mmap"])
        if op == "refs":
            self.set_refs(payload["refs"])
            self.evict(payload.get("evict", ()))
            if payload.get("clear_warm"):
                self.clear_warm()
            return True
        if op == "dump_rows":
            return self.dump_rows()
        if op == "ping":
            return {"shard": self.shard_id, "rows": len(self.rows)}
        raise ValueError(f"unknown shard op {op!r}")


def shard_worker_main(conn, init: dict) -> None:
    """Process entry point: serve :class:`ShardWorkerState` over a pipe.

    ``init`` carries the constructor arguments plus the event log replayed
    so far.  Every request gets exactly one reply; failures reply with the
    formatted traceback instead of killing the pipe, so the coordinator
    can surface a precise :class:`~repro.exceptions.ShardError`.
    """
    state = ShardWorkerState(
        shard_id=init["shard_id"],
        plan=init["plan"],
        tau=init["tau"],
        min_score=init["min_score"],
        tolerance=init["tolerance"],
        max_iterations=init["max_iterations"],
        hops=init["hops"],
        max_influencers=init["max_influencers"],
        prop_backend=init.get("prop_backend", "reference"),
    )
    state.apply_events(init.get("events", []))
    while True:
        try:
            message = conn.recv()
        except EOFError:  # pragma: no cover - coordinator vanished
            break
        op, payload = message
        if op == "stop":
            break
        try:
            conn.send(("ok", state.dispatch(op, payload)))
        except Exception:
            conn.send(("error", traceback.format_exc()))
