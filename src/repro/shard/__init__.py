"""Sharded multi-worker deployment of the recommendation service.

Community-aware partitioning (:mod:`repro.shard.partition`), per-shard
workers owning SimGraph slices (:mod:`repro.shard.worker`) and the
coordinator that routes events, paces cross-shard propagation and merges
global top-k (:mod:`repro.shard.coordinator`) — pinned bit-identical to
the single-process service by the differential test suite.
"""

from repro.shard.coordinator import ShardedRecommendationService
from repro.shard.partition import (
    DEFAULT_BALANCE_TOLERANCE,
    ShardPlan,
    assignment_fingerprint,
    intra_shard_edges,
    partition_users,
)
from repro.shard.replay import ShardedServiceRecommender
from repro.shard.worker import ShardWorkerState

__all__ = [
    "DEFAULT_BALANCE_TOLERANCE",
    "ShardPlan",
    "ShardWorkerState",
    "ShardedRecommendationService",
    "ShardedServiceRecommender",
    "assignment_fingerprint",
    "intra_shard_edges",
    "partition_users",
]
