"""Sharded recommendation service: coordinator, dispatch and global merge.

:class:`ShardedRecommendationService` speaks the same API as the
single-process :class:`~repro.service.engine.RecommendationService` and
produces **bit-identical output** — the differential suite
(``tests/test_shard_differential.py``) pins delivered notifications,
service stats and the assembled SimGraph across shard counts.

Division of labour
------------------
The coordinator owns everything cheap and sequential: the follow graph,
retweet profiles, tweet registry, the postponed scheduler, the online
budget, and the *decisions* of the warm-state cache (a token LRU whose
get/put/evict call sequence exactly mirrors the single-process cache, so
eviction — which changes warm-vs-cold starts and therefore output — stays
centralized).  Workers own the expensive state: SimGraph rows of their
users, inverted indexes, propagation values and warm slices.

Per retweet event the coordinator routes the propagation task to the
shards whose rows reference a newly pinned seed (usually one, thanks to
community-aware partitioning), grants a single active shard a *free run*,
paces multi-shard tasks through synchronous rounds with boundary-crossing
emissions, and merges the per-shard score maps — disjoint by ownership —
into the globally ordered release list the budget consumes.

Score-merge caching: a shard not involved in a task cannot have changed
any of its values, so its previous score map is reused from a
coordinator-side cache instead of a round trip.  Together with free-run
grants this makes the common (shard-local) event cost one request to one
worker.

Maintenance keeps the delta engine's economics: the coordinator computes
the affected-region plan from its replicas, workers rebuild the core rows
they own and exchange cross-shard fringe patches through the coordinator
(the ``needed`` pairs of :func:`repro.core.delta.affected_region`),
exactly reproducing the single-process surgery order.
"""

from __future__ import annotations

import time as _time
from typing import Any, Iterable

from repro.baselines.base import Recommendation
from repro.core.delta import DeltaReport, affected_region
from repro.core.scheduler import DelayPolicy, PostponedScheduler, PropagationTask
from repro.core.profiles import RetweetProfiles
from repro.core.simgraph import SimGraph
from repro.core.thresholds import DynamicThreshold, ThresholdPolicy
from repro.core.warmcache import WarmStateCache
from repro.data.models import Retweet, Tweet
from repro.exceptions import ConfigError, DatasetError, ShardError
from repro.graph.digraph import DiGraph
from repro.core.propagation_kernel import kernel_mode, warn_kernel_fallback
from repro.obs import NULL, MetricsRegistry
from repro.service.engine import DAY, ServiceConfig, ServiceStats
from repro.shard.partition import (
    DEFAULT_BALANCE_TOLERANCE,
    ShardPlan,
    partition_users,
)
from repro.shard.worker import ShardWorkerState, shard_worker_main

__all__ = ["ShardedRecommendationService"]

#: Exploration radius and influencer cap the workers build rows with;
#: fixed to the service builder's defaults (ServiceConfig does not expose
#: them either).
_HOPS = 2
_MAX_INFLUENCERS = None
_TOLERANCE = 1e-10
_MAX_ITERATIONS = 200


class _InProcessWorker:
    """Worker handle executing the protocol synchronously in-process.

    The differential matrix runs dozens of sharded services; in-process
    workers keep the exact protocol (same dispatch code path) without
    process overhead.  ``send``/``collect`` mimic the async pipe pair.
    """

    def __init__(self, shard_id: int, init: dict):
        self.shard_id = shard_id
        self.state = ShardWorkerState(
            shard_id=shard_id,
            plan=init["plan"],
            tau=init["tau"],
            min_score=init["min_score"],
            tolerance=init["tolerance"],
            max_iterations=init["max_iterations"],
            hops=init["hops"],
            max_influencers=init["max_influencers"],
            prop_backend=init.get("prop_backend", "reference"),
        )
        self.state.apply_events(init.get("events", []))
        self._result: Any = None
        self._pending = False

    def send(self, op: str, payload: Any) -> None:
        if self._pending:
            raise ShardError(
                f"shard {self.shard_id}: request already in flight"
            )
        try:
            self._result = ("ok", self.state.dispatch(op, payload))
        except Exception as exc:
            self._result = ("error", f"{type(exc).__name__}: {exc}")
        self._pending = True

    def collect(self, timeout: float) -> Any:
        if not self._pending:
            raise ShardError(f"shard {self.shard_id}: no request in flight")
        self._pending = False
        status, payload = self._result
        if status == "error":
            raise ShardError(f"shard {self.shard_id} failed:\n{payload}")
        return payload

    def close(self) -> None:
        self._pending = False


class _ProcessWorker:
    """Worker handle over a dedicated OS process and duplex pipe."""

    def __init__(self, shard_id: int, init: dict, ctx):
        self.shard_id = shard_id
        self._conn, child = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=shard_worker_main,
            args=(child, init),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        self._proc.start()
        child.close()

    def send(self, op: str, payload: Any) -> None:
        try:
            self._conn.send((op, payload))
        except (BrokenPipeError, OSError) as exc:
            raise ShardError(
                f"shard {self.shard_id} worker is gone "
                f"(exit code {self._proc.exitcode}): cannot send {op!r}"
            ) from exc

    def collect(self, timeout: float) -> Any:
        deadline = _time.monotonic() + timeout
        while True:
            try:
                if self._conn.poll(0.02):
                    status, payload = self._conn.recv()
                    break
            except (EOFError, OSError):
                raise ShardError(
                    f"shard {self.shard_id} worker died mid-request "
                    f"(exit code {self._proc.exitcode})"
                ) from None
            if not self._proc.is_alive():
                raise ShardError(
                    f"shard {self.shard_id} worker died mid-request "
                    f"(exit code {self._proc.exitcode})"
                )
            if _time.monotonic() > deadline:
                raise ShardError(
                    f"shard {self.shard_id} worker timed out after "
                    f"{timeout:.0f}s"
                )
        if status == "error":
            raise ShardError(f"shard {self.shard_id} failed:\n{payload}")
        return payload

    def close(self) -> None:
        try:
            if self._proc.is_alive():
                self._conn.send(("stop", None))
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=2.0)
        if self._proc.is_alive():  # pragma: no cover - stuck worker
            self._proc.terminate()
            self._proc.join(timeout=2.0)
        self._conn.close()


class ShardedRecommendationService:
    """A :class:`RecommendationService` sharded over worker processes.

    Parameters beyond the single-process service:

    n_shards:
        Worker count.  The user partition is computed once, at the first
        rebuild, from the follow graph known at that point; later users
        fall back to ``user % n_shards``.
    partition_seed / balance_tolerance:
        Passed to :func:`repro.shard.partition.partition_users`.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"`` select the
        multiprocessing context; ``"inprocess"`` runs workers as plain
        objects inside the coordinator process (same protocol, no IPC) —
        the mode the differential matrix uses; ``None`` picks ``fork``
        when available.
    request_timeout:
        Seconds before a pending worker reply raises :class:`ShardError`.

    Restrictions (each rejected with :class:`ConfigError`): the rebuild
    strategy must be ``"delta"`` or ``"from scratch"`` (*crossfold*
    explores the previous SimGraph, which no longer exists in one piece);
    the build backend must be ``"reference"`` (the vectorized builder is
    only weight-identical to 1e-12, which would break the bit-exactness
    contract); the propagation backend must be ``"reference"``,
    ``"numba"`` or ``"auto"`` — workers always run the distributed
    frontier engine, but on the kernel backends each worker replaces its
    per-user dict walks with compiled CSR row sums over its owned rows
    (identical float sequence, so the bit-exactness contract holds).
    """

    def __init__(
        self,
        n_shards: int,
        config: ServiceConfig | None = None,
        threshold: ThresholdPolicy | None = None,
        delay_policy: DelayPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        partition_seed: int = 0,
        balance_tolerance: float = DEFAULT_BALANCE_TOLERANCE,
        start_method: str | None = None,
        request_timeout: float = 120.0,
    ):
        if n_shards < 1:
            raise ConfigError(f"n_shards must be at least 1, got {n_shards}")
        self.config = (
            config
            if config is not None
            else ServiceConfig(rebuild_strategy="delta")
        )
        if self.config.rebuild_strategy not in ("delta", "from scratch"):
            raise ConfigError(
                "sharded service supports rebuild strategies 'delta' and "
                f"'from scratch', not {self.config.rebuild_strategy!r} "
                "(crossfold explores the previous SimGraph, which is "
                "distributed across workers)"
            )
        if self.config.backend != "reference":
            raise ConfigError(
                "sharded service requires backend='reference': the "
                "vectorized builder is only weight-identical to 1e-12, "
                "which breaks the shard-vs-single bit-exactness contract"
            )
        if self.config.prop_backend not in ("reference", "numba", "auto"):
            raise ConfigError(
                "sharded service supports prop_backend 'reference', "
                "'numba' and 'auto', not "
                f"{self.config.prop_backend!r}: workers run their own "
                "distributed frontier engine (pinned bit-identical to the "
                "reference), optionally with kernel-compiled row sums; "
                "per-process CSR batching ('csr') does not apply"
            )
        # Workers either run the dict-based reference round or the
        # kernel-compiled row sums (bit-identical float sequence).  An
        # explicit 'numba' request without a runnable kernel falls back
        # with the standard warning + counter; 'auto' falls back silently.
        self._worker_prop_backend = "reference"
        if self.config.prop_backend in ("numba", "auto"):
            if kernel_mode() != "off":
                self._worker_prop_backend = "numba"
            elif self.config.prop_backend == "numba":
                warn_kernel_fallback(
                    metrics if metrics is not None else NULL,
                    context="shard workers",
                )
        self._n_shards = n_shards
        self.threshold = threshold if threshold is not None else DynamicThreshold()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._delay_policy = delay_policy
        self._partition_seed = partition_seed
        self._balance_tolerance = balance_tolerance
        self._start_method = start_method
        self._request_timeout = request_timeout

        self.follow_graph = DiGraph()
        self.profiles = RetweetProfiles()
        self.tweets: dict[int, Tweet] = {}
        self._retweeters: dict[int, set[int]] = {}
        self._new_follow_sources: set[int] = set()
        self._scheduler = (
            PostponedScheduler(
                delay_policy or DelayPolicy(), metrics=self.metrics
            )
            if self.config.use_scheduler
            else None
        )
        #: Token mirror of the single-process warm cache: same capacity,
        #: same age rule, same call sequence — its payload is the set of
        #: users whose stored fixpoint value is exactly 1.0 (the warm
        #: "already seeded" test), while the value slices live on the
        #: workers and only follow this cache's eviction decisions.
        self._warm = WarmStateCache(
            capacity=self.config.warm_cache_size,
            max_age=self.config.max_tweet_age,
            metrics=self.metrics,
        )
        self._token_view: set[int] = set()
        #: tweet -> shard -> last finalized score map (non-seed, owned,
        #: >= min_score).  Reused for shards a task never engaged.
        self._score_cache: dict[int, dict[int, dict[int, float]]] = {}
        self._delivered: dict[tuple[int, int], int] = {}
        self._known: set[tuple[int, int]] = set()
        self._clock = 0.0
        self.stats = ServiceStats()

        #: Append-only replica event log; workers consume it via a
        #: single shared cursor (all replica syncs are broadcasts).
        self._event_log: list[tuple] = []
        self._event_cursor = 0
        self._plan: ShardPlan | None = None
        self._workers: list[Any] | None = None
        self._pending_evict: list[set[int]] = [set() for _ in range(n_shards)]
        #: user -> shards whose rows reference it (aggregated after each
        #: rebuild); drives task routing and emission fan-out.
        self._refs: dict[int, tuple[int, ...]] = {}
        self._edge_count = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def plan(self) -> ShardPlan | None:
        """The partition plan (None until the first rebuild)."""
        return self._plan

    @property
    def edge_count(self) -> int:
        """Total SimGraph edges across all shards."""
        return self._edge_count

    def _worker_init(self, shard_id: int) -> dict:
        return {
            "shard_id": shard_id,
            "plan": self._plan,
            "tau": self.config.tau,
            "min_score": self.config.min_score,
            "tolerance": _TOLERANCE,
            "max_iterations": _MAX_ITERATIONS,
            "hops": _HOPS,
            "max_influencers": _MAX_INFLUENCERS,
            "prop_backend": self._worker_prop_backend,
            "events": list(self._event_log),
        }

    def _ensure_workers(self) -> None:
        if self._workers is not None:
            return
        if self._closed:
            raise ShardError("service is closed")
        self._plan = partition_users(
            self.follow_graph,
            self._n_shards,
            seed=self._partition_seed,
            balance_tolerance=self._balance_tolerance,
        )
        self.metrics.gauge("shard.workers").set(self._n_shards)
        self.metrics.gauge("shard.boundary_follow_fraction").set(
            self._plan.boundary_fraction(self.follow_graph)
        )
        self._event_cursor = len(self._event_log)
        workers: list[Any] = []
        if self._start_method == "inprocess":
            for shard_id in range(self._n_shards):
                workers.append(
                    _InProcessWorker(shard_id, self._worker_init(shard_id))
                )
        else:
            import multiprocessing as mp

            method = self._start_method
            if method is None:
                method = (
                    "fork" if "fork" in mp.get_all_start_methods() else "spawn"
                )
            ctx = mp.get_context(method)
            for shard_id in range(self._n_shards):
                workers.append(
                    _ProcessWorker(shard_id, self._worker_init(shard_id), ctx)
                )
        self._workers = workers

    def _sync_evictions(self) -> None:
        """Queue token-cache evictions for delivery to every worker."""
        current = set(self._warm.tweets())
        evicted = self._token_view - current
        if evicted:
            for pending in self._pending_evict:
                pending.update(evicted)
            for tweet in evicted:
                self._score_cache.pop(tweet, None)
        self._token_view = current

    def _send(self, shard: int, op: str, payload: dict) -> None:
        """Ship a request, prepending any pending slice evictions."""
        self._sync_evictions()
        pending = self._pending_evict[shard]
        if pending:
            payload = dict(payload)
            payload["evict"] = sorted(pending)
            pending.clear()
        self._workers[shard].send(op, payload)

    def _request_all(
        self, targets: Iterable[int], op: str, payloads: dict[int, dict]
    ) -> dict[int, Any]:
        """Fan a request out to ``targets`` and gather every reply."""
        targets = list(targets)
        for shard in targets:
            self._send(shard, op, payloads[shard])
        return {
            shard: self._workers[shard].collect(self._request_timeout)
            for shard in targets
        }

    def _broadcast(self, op: str, payload: dict) -> dict[int, Any]:
        return self._request_all(
            range(self._n_shards), op,
            {shard: payload for shard in range(self._n_shards)},
        )

    # ------------------------------------------------------------------
    # Ingestion (mirrors RecommendationService)
    # ------------------------------------------------------------------
    def add_user(self, user: int) -> None:
        """Register an account."""
        self.follow_graph.add_node(user)
        self._event_log.append(("user", user))

    def add_follow(self, follower: int, followee: int) -> None:
        """Register a follow edge (auto-registers unknown accounts)."""
        if self.follow_graph.has_edge(follower, followee):
            return
        self.follow_graph.add_edge(follower, followee)
        self._new_follow_sources.add(follower)
        self._event_log.append(("follow", follower, followee))

    def post_tweet(self, tweet_id: int, author: int, at: float) -> None:
        """Register an original post."""
        if tweet_id in self.tweets:
            raise DatasetError(f"duplicate tweet id {tweet_id}")
        self._advance(at)
        self.tweets[tweet_id] = Tweet(id=tweet_id, author=author, created_at=at)

    def retweet(self, user: int, tweet: int, at: float) -> list[Recommendation]:
        """Ingest a sharing action; return the notifications it released."""
        if tweet not in self.tweets:
            raise DatasetError(f"unknown tweet id {tweet}")
        started = _time.perf_counter()
        self._advance(at)
        self.stats.events_ingested += 1
        self.metrics.counter("service.events").inc()
        event = Retweet(user=user, tweet=tweet, time=at)
        if self._scheduler is not None:
            released = self._run_tasks(self._scheduler.offer(event))
            self._absorb(event)
        else:
            self._absorb(event)
            task = PropagationTask(tweet=tweet, users=(user,), due_time=at)
            released = self._run_tasks([task])
        delivered = self._deliver(released)
        self._refresh_health()
        self.metrics.histogram("service.retweet_seconds", timing=True).observe(
            _time.perf_counter() - started
        )
        return delivered

    def flush(self, now: float | None = None) -> list[Recommendation]:
        """Drain the scheduler (end of stream / shutdown)."""
        if self._scheduler is None:
            return []
        if now is not None:
            self._advance(now)
        released = self._run_tasks(self._scheduler.flush(now=self._clock))
        delivered = self._deliver(released)
        self._refresh_health()
        return delivered

    def _refresh_health(self) -> None:
        """Mirror of the reference service's health gauges.

        The token cache replays the reference warm cache's exact
        get/put sequence, so its hit/miss counters — and therefore
        these stats — stay equal to the single-process service's, which
        the shard differential suite asserts.
        """
        self.stats.warm_hits = self._warm.hits
        self.stats.warm_misses = self._warm.misses
        self.stats.queue_depth = (
            self._scheduler.pending_count if self._scheduler is not None else 0
        )
        self.metrics.gauge("service.warm_hits").set(self.stats.warm_hits)
        self.metrics.gauge("service.warm_misses").set(self.stats.warm_misses)
        self.metrics.gauge("service.queue_depth").set(self.stats.queue_depth)

    def _advance(self, at: float) -> None:
        if at < self._clock:
            raise DatasetError(
                f"time must be monotone: {at} < current clock {self._clock}"
            )
        self._clock = at
        due = self.stats.last_rebuild_at + self.config.rebuild_interval
        if self.stats.rebuilds == 0 or at >= due:
            if self.profiles.user_count > 0 or self.stats.rebuilds == 0:
                self.rebuild()

    def absorb_retweet(self, user: int, tweet: int) -> None:
        """Absorb a sharing action without scoring it.

        The offline maintenance path (``simgraph maintain --shards``)
        measures distributed SimGraph upkeep in isolation: profiles and
        the worker event log are updated exactly as :meth:`retweet`
        would, but no propagation task is scheduled and no tweet
        registration is required.
        """
        self._absorb(Retweet(user=user, tweet=tweet, time=self._clock))

    def _absorb(self, event: Retweet) -> None:
        self.profiles.add(event.user, event.tweet)
        self._retweeters.setdefault(event.tweet, set()).add(event.user)
        self._known.add((event.user, event.tweet))
        self._event_log.append(("rt", event.user, event.tweet))

    def _drain_events(self) -> list[tuple]:
        chunk = self._event_log[self._event_cursor :]
        self._event_cursor = len(self._event_log)
        return chunk

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def rebuild(self, strategy: str | None = None) -> None:
        """Refresh every shard's SimGraph slice (mirrors the reference)."""
        name = strategy if strategy is not None else self.config.rebuild_strategy
        if name not in ("delta", "from scratch"):
            raise ConfigError(
                f"sharded rebuild supports 'delta' and 'from scratch', "
                f"not {name!r}"
            )
        self._ensure_workers()
        started = _time.perf_counter()
        report: DeltaReport | None = None
        with self.metrics.span("service.rebuild"):
            if (
                self.stats.rebuilds == 0
                or name == "from scratch"
                or self._edge_count == 0
            ):
                used = "from scratch"
                replies = self._broadcast(
                    "rebuild_full", {"events": self._drain_events()}
                )
            else:
                used = "delta"
                extra: set[int] = set()
                for follower in self._new_follow_sources:
                    extra.add(follower)
                    if follower in self.follow_graph:
                        extra.update(self.follow_graph.predecessors(follower))
                plan = affected_region(
                    self.profiles,
                    self.follow_graph,
                    extra_sources=sorted(extra),
                    hops=_HOPS,
                )
                if plan.is_empty:
                    report = DeltaReport(
                        noop=True, core_size=0, fringe_size=0,
                        rows_recomputed=0, rows_patched=0, pairs_rescored=0,
                        changed_users=frozenset(),
                        affected_users=frozenset(), topology_changed=False,
                    )
                    events = self._drain_events()
                    self._broadcast(
                        "events", {"events": events, "mark_clean": True}
                    )
                    replies = None
                else:
                    replies, report = self._delta_phases(plan)
        self.metrics.counter(f"service.rebuild[{used}]").inc()
        self.metrics.histogram(
            f"service.rebuild_seconds[{used}]", timing=True
        ).observe(_time.perf_counter() - started)
        self.profiles.mark_clean()
        self._new_follow_sources.clear()
        self._invalidate_warm(report)
        if replies is not None:
            self._adopt_topology(replies, clear_warm=self._should_clear(report))
        self.stats.rebuilds += 1
        self.stats.last_rebuild_at = self._clock

    def _delta_phases(self, plan) -> tuple[dict[int, Any], DeltaReport]:
        """Run the two-phase distributed delta and aggregate its report."""
        core = set(plan.core)
        needed = {w: sorted(users) for w, users in plan.needed.items()}
        fringe = plan.fringe
        if _MAX_INFLUENCERS is not None and fringe:  # pragma: no cover
            core |= fringe
            needed = {}
            fringe = frozenset()
        core_sorted = sorted(core)
        self.metrics.counter("maintenance.dirty_users").inc(
            len(plan.dirty_users)
        )
        self.metrics.counter("maintenance.dirty_tweets").inc(
            len(plan.dirty_tweets)
        )
        self.metrics.counter("maintenance.affected_users").inc(
            len(core) + len(fringe)
        )
        events = self._drain_events()
        phase1 = self._broadcast(
            "rebuild_delta",
            {"events": events, "core": core_sorted, "needed": needed},
        )
        topology_changed = any(
            r["topology_changed"] for r in phase1.values()
        )
        pairs = sum(r["pairs_rescored"] for r in phase1.values())
        rows_changed = sum(r["rows_changed"] for r in phase1.values())

        # Route each (core w, fringe u) score to u's owner, along with the
        # candidate lists the owner needs to reconstruct the reference
        # attention sets.  Patch application follows the global ascending
        # core order, so new fringe edges append at reference positions.
        owner = self._plan.owner
        patches: dict[int, dict[int, dict[int, float]]] = {
            s: {} for s in range(self._n_shards)
        }
        candidates: dict[int, dict[int, list[int]]] = {
            s: {} for s in range(self._n_shards)
        }
        for w, users in needed.items():
            for u in users:
                candidates[owner(u)].setdefault(w, []).append(u)
        for reply in phase1.values():
            for w, scores in reply["patches"].items():
                for u, score in scores.items():
                    patches[owner(u)].setdefault(w, {})[u] = score
        cross_pairs = sum(
            len(scores)
            for shard, by_w in patches.items()
            for w, scores in by_w.items()
            if owner(w) != shard
        )
        self.metrics.counter("shard.fringe_patch_pairs").inc(
            sum(len(s) for by_w in patches.values() for s in by_w.values())
        )
        self.metrics.counter("shard.cross_shard_patch_pairs").inc(cross_pairs)

        payloads = {}
        fringe_targets = []
        plain_targets = []
        for shard in range(self._n_shards):
            relevant = sorted(set(patches[shard]) | set(candidates[shard]))
            if relevant:
                fringe_targets.append(shard)
                payloads[shard] = {
                    "core_order": relevant,
                    "candidates": candidates[shard],
                    "patches": patches[shard],
                }
            else:
                plain_targets.append(shard)
        replies = self._request_all(fringe_targets, "apply_fringe", payloads)
        replies.update(
            self._request_all(
                plain_targets, "finish_rebuild",
                {s: {} for s in plain_targets},
            )
        )
        topology_changed = topology_changed or any(
            r["topology_changed"] for r in replies.values() if "topology_changed" in r
        )
        self.metrics.counter("maintenance.rows_recomputed").inc(len(core))
        self.metrics.counter("maintenance.rows_patched").inc(len(fringe))
        self.metrics.counter("maintenance.pairs_rescored").inc(pairs)
        report = DeltaReport(
            noop=False,
            core_size=len(core),
            fringe_size=len(fringe),
            rows_recomputed=len(core),
            rows_patched=len(fringe),
            pairs_rescored=pairs,
            changed_users=frozenset(),
            affected_users=frozenset(core) | fringe,
            topology_changed=topology_changed,
        )
        if rows_changed:
            self.metrics.counter("shard.delta_rows_changed").inc(rows_changed)
        return replies, report

    @staticmethod
    def _should_clear(report: DeltaReport | None) -> bool:
        return report is None or report.topology_changed

    def _invalidate_warm(self, report: DeltaReport | None) -> None:
        """Token-cache mirror of the reference warm invalidation."""
        if report is None or report.topology_changed:
            self._warm.clear()
            self._score_cache.clear()
            self._token_view = set()
            return
        if report.noop:
            return
        affected = report.affected_users
        stale = [
            tweet
            for tweet in self._warm.tweets()
            if not self._retweeters.get(tweet, set()).isdisjoint(affected)
        ]
        dropped = self._warm.invalidate_tweets(stale)
        self.metrics.counter("maintenance.cache_invalidations").inc(dropped)

    def _adopt_topology(
        self, replies: dict[int, Any], clear_warm: bool
    ) -> None:
        """Aggregate reindex reports; ship refs and cache decisions."""
        refs: dict[int, list[int]] = {}
        edges = 0
        boundary = 0
        for shard in sorted(replies):
            reply = replies[shard]
            edges += reply["edges"]
            boundary += reply["boundary_edges"]
            for v in reply["referenced"]:
                refs.setdefault(v, []).append(shard)
        self._refs = {v: tuple(shards) for v, shards in refs.items()}
        self._edge_count = edges
        self.metrics.gauge("shard.boundary_edge_fraction").set(
            boundary / edges if edges else 0.0
        )
        owner = self._plan.owner
        per_worker: dict[int, dict[int, tuple[int, ...]]] = {
            s: {} for s in range(self._n_shards)
        }
        for v, shards in self._refs.items():
            own = owner(v)
            others = tuple(s for s in shards if s != own)
            if others:
                per_worker[own][v] = others
        if clear_warm:
            for pending in self._pending_evict:
                pending.clear()
        self._request_all(
            range(self._n_shards),
            "refs",
            {
                s: {"refs": per_worker[s], "clear_warm": clear_warm}
                for s in range(self._n_shards)
            },
        )

    def load_snapshot(self, path, mmap: bool = True) -> None:
        """Adopt a persisted SimGraph snapshot across all workers.

        Every worker memory-maps the same v2 snapshot (shared pages) and
        keeps its owned rows.  Bookkeeping mirrors the single-process
        service: the load counts as a rebuild, consumes profile dirt and
        clears all warm state.
        """
        self._ensure_workers()
        events = self._drain_events()
        if events:
            self._broadcast("events", {"events": events, "mark_clean": False})
        replies = self._broadcast(
            "load_snapshot", {"path": str(path), "mmap": mmap}
        )
        self._warm.clear()
        self._score_cache.clear()
        self._token_view = set()
        self.profiles.mark_clean()
        self._new_follow_sources.clear()
        self._adopt_topology(replies, clear_warm=True)
        self.stats.rebuilds += 1
        self.stats.last_rebuild_at = self._clock
        self.metrics.counter("service.snapshot_loads").inc()

    def export_simgraph(self) -> SimGraph:
        """Assemble the distributed rows into one in-memory SimGraph.

        Inspection/testing aid — the differential suite compares this
        against the single-process service's graph edge-for-edge.
        """
        self._ensure_workers()
        replies = self._broadcast("dump_rows", {})
        graph = DiGraph()
        for shard in sorted(replies):
            rows = replies[shard]
            for u in sorted(rows):
                if rows[u]:
                    graph.set_row(u, rows[u])
        return SimGraph(graph, tau=self.config.tau)

    # ------------------------------------------------------------------
    # Propagation dispatch
    # ------------------------------------------------------------------
    def _run_tasks(self, tasks: list[PropagationTask]) -> list[Recommendation]:
        runnable: list[tuple[PropagationTask, float | None, set[int]]] = []
        for task in tasks:
            tweet = self.tweets.get(task.tweet)
            created_at = tweet.created_at if tweet is not None else None
            if created_at is not None:
                if task.due_time - created_at > self.config.max_tweet_age:
                    self._warm.pop(task.tweet)
                    continue
            seeds = set(self._retweeters.get(task.tweet, set()))
            seeds.update(task.users)
            self._retweeters[task.tweet] = seeds
            runnable.append((task, created_at, seeds))
        if not runnable:
            return []
        self.metrics.counter("shard.events_routed").inc(len(runnable))

        # Mirror the reference's warm gets (one per runnable task, before
        # any put) so the token cache replays the exact LRU sequence.
        prepared = []
        for task, created_at, seeds in runnable:
            token = self._warm.get(task.tweet, now=task.due_time)
            warm = token is not None
            seeds_sorted = sorted(seeds)
            if warm:
                ones = token["ones"]
                new_seeds = [s for s in seeds_sorted if s not in ones]
            else:
                new_seeds = seeds_sorted
            active = sorted(
                {
                    shard
                    for s in new_seeds
                    for shard in self._refs.get(s, ())
                }
            )
            spec = {
                "tweet": task.tweet,
                "seeds": seeds_sorted,
                "new_seeds": new_seeds,
                "beta": self.threshold.threshold_for(len(seeds)),
                "warm": warm,
                "cold": not warm,
                "mode": "seed",
                "solo": len(active) == 1,
            }
            prepared.append((task, created_at, seeds, token, spec, active))
        self.stats.propagations_run += len(runnable)

        states: dict[int, dict] = {}
        dispatch_specs: dict[int, list[dict]] = {}
        for task, created_at, seeds, token, spec, active in prepared:
            states[task.tweet] = {
                "spec": spec,
                "engaged": set(active),
                "active": set(),
                "incoming": {},
                "rounds": 0,
            }
            if spec["solo"]:
                self.metrics.counter("shard.solo_grants").inc()
            for shard in active:
                dispatch_specs.setdefault(shard, []).append(spec)
        replies = self._request_all(
            sorted(dispatch_specs),
            "tasks",
            {
                shard: {"specs": specs}
                for shard, specs in dispatch_specs.items()
            },
        )
        fanouts = self.metrics.counter("shard.cross_shard_fanouts")

        def apply_result(tweet: int, shard: int, result: dict) -> None:
            st = states[tweet]
            if result["active"]:
                st["active"].add(shard)
            else:
                st["active"].discard(shard)
            st["rounds"] = max(st["rounds"], result["rounds"])
            for target, emitted in result["emissions"].items():
                st["incoming"].setdefault(target, {}).update(emitted)
                fanouts.inc(len(emitted))

        for shard, by_tweet in replies.items():
            for tweet, result in by_tweet.items():
                apply_result(tweet, shard, result)

        # Lock-step continuation: every round, step each worker that has
        # incoming mirror updates or a live local frontier, all in
        # parallel, until the global frontier dies (or the cap hits).
        lockstep_rounds = self.metrics.counter("shard.lockstep_rounds")
        while True:
            work: dict[int, dict] = {}
            for tweet, st in states.items():
                if st["rounds"] >= _MAX_ITERATIONS:
                    st["incoming"].clear()
                    st["active"].clear()
                    continue
                targets = set(st["incoming"]) | st["active"]
                if not targets:
                    continue
                for shard in targets:
                    entry = work.setdefault(shard, {"steps": {}, "init": []})
                    if shard not in st["engaged"]:
                        st["engaged"].add(shard)
                        entry["init"].append(st["spec"])
                    entry["steps"][tweet] = st["incoming"].get(shard, {})
                st["incoming"] = {}
            if not work:
                break
            lockstep_rounds.inc()
            step_replies = self._request_all(sorted(work), "step", work)
            for shard, by_tweet in step_replies.items():
                for tweet, result in by_tweet.items():
                    apply_result(tweet, shard, result)

        # Finalize: engaged workers store warm slices and return their
        # owned score maps; untouched shards contribute their cached maps.
        merge_started = _time.perf_counter()
        finalize_targets: dict[int, list[int]] = {}
        for tweet, st in states.items():
            for shard in sorted(st["engaged"]):
                finalize_targets.setdefault(shard, []).append(tweet)
        final_replies = self._request_all(
            sorted(finalize_targets),
            "finalize",
            {
                shard: {"tweets": tweets}
                for shard, tweets in finalize_targets.items()
            },
        )

        released: list[Recommendation] = []
        for task, created_at, seeds, token, spec, active in prepared:
            st = states[task.tweet]
            engaged = st["engaged"]
            if spec["cold"]:
                cache: dict[int, dict[int, float]] = {}
                self._score_cache[task.tweet] = cache
            else:
                cache = self._score_cache.setdefault(task.tweet, {})
            ones: set[int] = set(seeds)
            if token is not None:
                owner = self._plan.owner
                ones.update(
                    u for u in token["ones"] if owner(u) not in engaged
                )
            for shard in sorted(engaged):
                result = final_replies[shard][task.tweet]
                cache[shard] = result["scores"]
                ones.update(result["ones"])
            merged: dict[int, float] = {}
            for shard in sorted(cache):
                merged.update(cache[shard])
            self._warm.put(
                task.tweet,
                {"ones": frozenset(ones)},
                created_at=created_at,
                now=task.due_time,
            )
            released.extend(
                Recommendation(
                    user=u, tweet=task.tweet, score=p, time=task.due_time
                )
                for u, p in sorted(merged.items())
                if u not in seeds
            )
        self.metrics.histogram("shard.merge_seconds", timing=True).observe(
            _time.perf_counter() - merge_started
        )
        return released

    def _deliver(self, released: list[Recommendation]) -> list[Recommendation]:
        delivered: list[Recommendation] = []
        with self.metrics.span("budget"):
            for rec in sorted(released, key=lambda r: (-r.score, r.user, r.tweet)):
                if (rec.user, rec.tweet) in self._known:
                    continue
                day = int(rec.time // DAY)
                used = self._delivered.get((rec.user, day), 0)
                if used >= self.config.daily_budget:
                    self.stats.notifications_suppressed += 1
                    continue
                self._delivered[(rec.user, day)] = used + 1
                self._known.add((rec.user, rec.tweet))
                delivered.append(rec)
                self.stats.notifications_delivered += 1
        self.metrics.counter("budget.delivered").inc(len(delivered))
        self.metrics.counter("budget.rejections").inc(
            len(released) - len(delivered)
        )
        return delivered

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------
    def metrics_snapshot(self, deterministic: bool = False) -> dict:
        """JSON-ready snapshot of the coordinator's metrics registry."""
        self._refresh_health()
        return self.metrics.snapshot(deterministic=deterministic)

    def close(self) -> None:
        """Shut down every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._workers is not None:
            for worker in self._workers:
                try:
                    worker.close()
                except Exception:  # pragma: no cover - best effort
                    pass
            self._workers = None

    def __enter__(self) -> "ShardedRecommendationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
