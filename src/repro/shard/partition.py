"""Community-aware user partitioning for the sharded service.

Homophily is the partition key: the paper's central observation is that
2-hop retweet neighbourhoods concentrate inside communities, so placing
whole communities on one shard keeps SimGraph rows — and therefore
propagation frontiers — mostly shard-local.  The partitioner runs label
propagation (:func:`repro.graph.communities.label_propagation_communities`)
over the follow graph and packs the detected communities onto shards with
a hard balance constraint.

Determinism
-----------
Shard assignment must be reproducible across runs and processes: the
differential suite compares a sharded service against the single-process
reference, and a partition that drifts between runs would make every
"identical output" guarantee unfalsifiable.  Three measures pin it down:

* label propagation's node-visit order comes from a *named* stream of the
  service RNG (``SeedSequenceFactory(seed).generator("shard.partition")``)
  rather than ad-hoc global state, so adding other random consumers never
  perturbs the assignment;
* community members and packing order are always processed in sorted
  order — no set-iteration order leaks into the result;
* bin-packing ties break on the lowest shard index.

Balance
-------
Every shard holds at most ``ceil(n_users * (1 + balance_tolerance) /
n_shards)`` users.  Communities larger than that capacity are split into
consecutive (sorted-id) chunks; chunks are placed largest-first onto the
least-loaded shard, splitting a chunk when it would overflow the target —
so the bound is a guarantee, not a heuristic.  Users first seen *after*
partitioning (the online service keeps ingesting) fall back to
``user % n_shards``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import ConfigError
from repro.graph.communities import label_propagation_communities
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "ShardPlan",
    "partition_users",
    "intra_shard_edges",
    "assignment_fingerprint",
    "DEFAULT_BALANCE_TOLERANCE",
]

#: Default slack over a perfectly even split before packing must split a
#: community across shards.  25% keeps most communities whole on the
#: synthetic corpora while bounding worst-case skew.
DEFAULT_BALANCE_TOLERANCE = 0.25


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic user -> shard assignment.

    ``assignment`` covers every user present at partition time; users
    that appear later are owned by ``user % n_shards`` (see
    :meth:`owner`).  The plan is plain data — it pickles across worker
    process boundaries and compares by value in tests.
    """

    n_shards: int
    seed: int
    balance_tolerance: float
    #: Maximum users any shard may hold (0 for an empty graph).
    capacity: int
    assignment: dict[int, int] = field(repr=False)

    def owner(self, user: int) -> int:
        """The shard that owns ``user`` (modulo fallback for new users)."""
        shard = self.assignment.get(user)
        if shard is not None:
            return shard
        return int(user) % self.n_shards

    def shard_users(self) -> tuple[tuple[int, ...], ...]:
        """Users per shard, each sorted ascending."""
        buckets: list[list[int]] = [[] for _ in range(self.n_shards)]
        for user in sorted(self.assignment):
            buckets[self.assignment[user]].append(user)
        return tuple(tuple(bucket) for bucket in buckets)

    def shard_sizes(self) -> tuple[int, ...]:
        """Number of assigned users per shard."""
        sizes = [0] * self.n_shards
        for shard in self.assignment.values():
            sizes[shard] += 1
        return tuple(sizes)

    def boundary_edges(self, graph: DiGraph) -> list[tuple[int, int]]:
        """Edges of ``graph`` whose endpoints live on different shards."""
        return [
            (u, v)
            for u, v, _ in graph.edges()
            if self.owner(u) != self.owner(v)
        ]

    def boundary_fraction(self, graph: DiGraph) -> float:
        """Fraction of ``graph``'s edges crossing a shard boundary."""
        total = graph.edge_count
        if total == 0:
            return 0.0
        return len(self.boundary_edges(graph)) / total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardPlan(n_shards={self.n_shards}, users={len(self.assignment)}, "
            f"sizes={self.shard_sizes()}, capacity={self.capacity})"
        )


def _community_chunks(
    labels: dict[int, int], capacity: int
) -> list[tuple[int, ...]]:
    """Communities as sorted-id tuples, oversized ones split to fit."""
    groups: dict[int, list[int]] = {}
    for user in sorted(labels):
        groups.setdefault(labels[user], []).append(user)
    chunks: list[tuple[int, ...]] = []
    for label in sorted(groups):
        members = groups[label]
        for start in range(0, len(members), capacity):
            chunks.append(tuple(members[start : start + capacity]))
    return chunks


def partition_users(
    graph: DiGraph,
    n_shards: int,
    seed: int = 0,
    balance_tolerance: float = DEFAULT_BALANCE_TOLERANCE,
    max_iterations: int = 50,
) -> ShardPlan:
    """Partition the users of ``graph`` onto ``n_shards`` shards.

    Communities from label propagation are packed largest-first onto the
    least-loaded shard under a hard per-shard capacity of
    ``ceil(n * (1 + balance_tolerance) / n_shards)``; a chunk that would
    overflow its target shard is split at the capacity line and the
    remainder re-queued.  Fully deterministic for a fixed ``seed``.
    """
    if n_shards < 1:
        raise ConfigError(f"n_shards must be at least 1, got {n_shards}")
    if balance_tolerance < 0:
        raise ConfigError(
            f"balance_tolerance must be non-negative, got {balance_tolerance}"
        )
    rng = SeedSequenceFactory(int(seed)).generator("shard.partition")
    labels = label_propagation_communities(
        graph, max_iterations=max_iterations, seed=rng
    )
    n = len(labels)
    capacity = (
        max(1, math.ceil(n * (1.0 + balance_tolerance) / n_shards)) if n else 0
    )
    assignment: dict[int, int] = {}
    loads = [0] * n_shards
    if n:
        pending = sorted(
            _community_chunks(labels, capacity),
            key=lambda chunk: (-len(chunk), chunk[0]),
        )
        # Largest-first onto the least-loaded shard (ties: lowest index).
        # Splitting at the capacity line makes the balance bound exact:
        # total capacity n_shards * ceil(n * (1+tol) / n_shards) >= n, so
        # the loop always terminates with every user placed.
        while pending:
            chunk = pending.pop(0)
            shard = min(range(n_shards), key=lambda s: (loads[s], s))
            space = capacity - loads[shard]
            placed, rest = chunk[:space], chunk[space:]
            for user in placed:
                assignment[user] = shard
            loads[shard] += len(placed)
            if rest:
                pending.insert(0, rest)
    return ShardPlan(
        n_shards=n_shards,
        seed=int(seed),
        balance_tolerance=balance_tolerance,
        capacity=capacity,
        assignment=assignment,
    )


def intra_shard_edges(plan: ShardPlan, graph: DiGraph) -> list[tuple[int, int]]:
    """Edges of ``graph`` fully contained in one shard (boundary complement)."""
    return [
        (u, v) for u, v, _ in graph.edges() if plan.owner(u) == plan.owner(v)
    ]


def assignment_fingerprint(plan: ShardPlan) -> str:
    """Stable hex digest of the full assignment (golden-corpus pinning)."""
    import hashlib

    payload = ";".join(
        f"{user}:{plan.assignment[user]}" for user in sorted(plan.assignment)
    )
    return hashlib.blake2b(payload.encode("ascii"), digest_size=16).hexdigest()
