"""Dataset and homophily analysis reproducing the paper's §3 study."""

from repro.analysis.bubbles import (
    BubbleEscapeReranker,
    BubbleMap,
    identify_bubbles,
    recommendation_locality,
)
from repro.analysis.characterization import CharacterizationReport, characterize
from repro.analysis.convergence import ConvergenceStudy, norms_by_tau, study_convergence
from repro.analysis.homophily import (
    DistanceSimilarityRow,
    TopRankDistanceRow,
    sample_active_users,
    similarity_by_distance,
    top_rank_distances,
)

__all__ = [
    "BubbleEscapeReranker",
    "BubbleMap",
    "CharacterizationReport",
    "DistanceSimilarityRow",
    "TopRankDistanceRow",
    "ConvergenceStudy",
    "characterize",
    "identify_bubbles",
    "norms_by_tau",
    "study_convergence",
    "recommendation_locality",
    "sample_active_users",
    "similarity_by_distance",
    "top_rank_distances",
]
