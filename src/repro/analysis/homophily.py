"""The homophily study (paper §3.2, Tables 2 and 3).

Two experiments over a sample of sufficiently-active users:

* **similarity vs distance** (Table 2): for sampled user pairs with a
  non-zero similarity, bucket the pair by shortest-path distance in the
  follow graph and average the similarity per bucket — revealing that
  close pairs are markedly more similar ("strong" homophily at distance 1,
  "soft" homophily at distance 2);
* **top-N rank vs distance** (Table 3): for each sampled user, rank their
  most similar peers and record the network distance of each rank —
  showing that distance <= 2 captures 70-80% of a user's top-5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.profiles import RetweetProfiles
from repro.core.similarity import similarities_from
from repro.data.dataset import TwitterDataset
from repro.graph.traversal import bfs_distances
from repro.utils.rng import make_rng
from repro.utils.topk import top_k_items

__all__ = [
    "DistanceSimilarityRow",
    "TopRankDistanceRow",
    "similarity_by_distance",
    "top_rank_distances",
    "sample_active_users",
]


@dataclass(frozen=True)
class DistanceSimilarityRow:
    """One Table-2 row: pairs at ``distance`` and their mean similarity."""

    distance: int | None  # None encodes the paper's "Impossible" bucket
    pair_count: int
    percentage: float
    mean_similarity: float

    @property
    def label(self) -> str:
        """Row label as printed by the paper."""
        return "Impossible" if self.distance is None else str(self.distance)


@dataclass(frozen=True)
class TopRankDistanceRow:
    """One Table-3 row: distance profile of rank-``rank`` similar users."""

    rank: int
    average_distance: float
    #: distance -> percentage of rank-holders at that distance.
    distance_percentages: dict[int, float]


def sample_active_users(
    dataset: TwitterDataset,
    sample_size: int = 200,
    min_retweets: int = 5,
    seed: int | np.random.Generator | None = 0,
) -> list[int]:
    """Random users with at least ``min_retweets`` actions (§3.2 protocol)."""
    rng = make_rng(seed)
    eligible = sorted(
        u for u in dataset.users if dataset.user_retweet_count(u) >= min_retweets
    )
    if len(eligible) <= sample_size:
        return eligible
    picked = rng.choice(len(eligible), size=sample_size, replace=False)
    return sorted(eligible[i] for i in picked)


def similarity_by_distance(
    dataset: TwitterDataset,
    profiles: RetweetProfiles,
    users: list[int],
    max_distance: int = 6,
) -> list[DistanceSimilarityRow]:
    """The Table-2 experiment.

    For each sampled user, every peer with a non-zero similarity is
    bucketed by follow-graph distance (one BFS per user covers all peers);
    unreachable peers land in the "Impossible" bucket.  Distances beyond
    ``max_distance`` are folded into the last bucket, as the tail is
    negligible (Table 2 stops at 6).
    """
    sums: dict[int | None, float] = {}
    counts: dict[int | None, int] = {}
    for u in users:
        scores = similarities_from(profiles, u)
        if not scores:
            continue
        distances = bfs_distances(dataset.follow_graph, u)
        for v, score in scores.items():
            distance: int | None = distances.get(v)
            if distance is not None and distance > max_distance:
                distance = max_distance
            sums[distance] = sums.get(distance, 0.0) + score
            counts[distance] = counts.get(distance, 0) + 1
    total_pairs = sum(counts.values())
    rows: list[DistanceSimilarityRow] = []
    buckets: list[int | None] = sorted(
        (d for d in counts if d is not None)
    )
    if None in counts:
        buckets.append(None)
    for distance in buckets:
        count = counts[distance]
        rows.append(
            DistanceSimilarityRow(
                distance=distance,
                pair_count=count,
                percentage=100.0 * count / total_pairs if total_pairs else 0.0,
                mean_similarity=sums[distance] / count,
            )
        )
    return rows


def top_rank_distances(
    dataset: TwitterDataset,
    profiles: RetweetProfiles,
    users: list[int],
    top_n: int = 5,
    max_distance: int = 4,
) -> list[TopRankDistanceRow]:
    """The Table-3 experiment: distance profile of each top-N rank.

    For each sampled user, the ``top_n`` most similar peers are ranked and
    the shortest-path distance to each is recorded; per rank we report the
    mean distance and the distribution over distances (unreachable peers
    and those beyond ``max_distance`` are folded into the last bucket,
    like the paper's "4" column).
    """
    per_rank_distances: list[list[int]] = [[] for _ in range(top_n)]
    for u in users:
        scores = similarities_from(profiles, u)
        if len(scores) < top_n:
            continue
        ranked = top_k_items(scores, top_n)
        distances = bfs_distances(dataset.follow_graph, u, max_depth=max_distance)
        for rank, (v, _score) in enumerate(ranked):
            distance = distances.get(v, max_distance)
            per_rank_distances[rank].append(min(distance, max_distance))
    rows: list[TopRankDistanceRow] = []
    for rank, rank_distances in enumerate(per_rank_distances, start=1):
        if not rank_distances:
            rows.append(TopRankDistanceRow(rank, 0.0, {}))
            continue
        arr = np.asarray(rank_distances, dtype=np.float64)
        percentages = {
            d: 100.0 * float((arr == d).mean())
            for d in range(1, max_distance + 1)
        }
        rows.append(
            TopRankDistanceRow(
                rank=rank,
                average_distance=float(arr.mean()),
                distance_percentages=percentages,
            )
        )
    return rows
