"""Empirical convergence study (paper §5.3).

The paper proves convergence via diagonal dominance, then measures the
contraction factor on real data — *"we conducted an experimental study on
our dataset and show that the convergence of our model is bound to
‖A‖ = 0.91 — the worst case scenario"* — and motivates the §5.4
optimizations with the observed iteration counts.  This module reproduces
that study: per-tweet propagation iteration counts, the iteration-matrix
norms, and how both react to the similarity threshold τ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.linear import LinearSystem
from repro.core.profiles import RetweetProfiles
from repro.core.propagation import PropagationEngine
from repro.core.simgraph import SimGraph, SimGraphBuilder
from repro.data.models import Retweet
from repro.graph.digraph import DiGraph

__all__ = ["ConvergenceStudy", "study_convergence", "norms_by_tau"]


@dataclass(frozen=True)
class ConvergenceStudy:
    """Measured convergence behaviour of one SimGraph."""

    #: Infinity norm of the Jacobi iteration matrix (paper: 0.91).
    iteration_norm: float
    #: Power-iteration estimate of the spectral radius (true asymptotic
    #: contraction factor; always <= the norm).
    spectral_radius: float
    #: Propagation iterations per sampled tweet.
    iterations: list[int]
    #: Probability updates per sampled tweet (work measure).
    updates: list[int]

    @property
    def mean_iterations(self) -> float:
        """Average iterations to fixpoint."""
        if not self.iterations:
            return 0.0
        return float(np.mean(self.iterations))

    @property
    def max_iterations(self) -> int:
        """Worst sampled tweet."""
        return max(self.iterations, default=0)

    def rows(self) -> list[tuple[str, object]]:
        """Report rows."""
        return [
            ("iteration-matrix norm ||A||", round(self.iteration_norm, 4)),
            ("spectral radius (est.)", round(self.spectral_radius, 4)),
            ("tweets sampled", len(self.iterations)),
            ("mean iterations", round(self.mean_iterations, 2)),
            ("max iterations", self.max_iterations),
            ("mean updates/tweet",
             round(float(np.mean(self.updates)) if self.updates else 0.0, 1)),
        ]


def study_convergence(
    simgraph: SimGraph,
    retweets: list[Retweet],
    max_tweets: int = 50,
) -> ConvergenceStudy:
    """Measure convergence over the ``max_tweets`` most retweeted tweets.

    Each sampled tweet is propagated from its full retweeter set with the
    exact (threshold-free) algorithm; iteration and update counts are the
    §5.3 evidence that motivated the paper's optimizations.
    """
    system = LinearSystem(simgraph)
    retweeters: dict[int, set[int]] = {}
    for retweet in retweets:
        retweeters.setdefault(retweet.tweet, set()).add(retweet.user)
    sampled = sorted(
        retweeters, key=lambda t: len(retweeters[t]), reverse=True
    )[:max_tweets]
    engine = PropagationEngine(simgraph)
    iterations: list[int] = []
    updates: list[int] = []
    for tweet in sampled:
        result = engine.propagate(retweeters[tweet])
        iterations.append(result.iterations)
        updates.append(result.updates)
    return ConvergenceStudy(
        iteration_norm=system.iteration_norm(),
        spectral_radius=system.spectral_radius_estimate(),
        iterations=iterations,
        updates=updates,
    )


def norms_by_tau(
    follow_graph: DiGraph,
    profiles: RetweetProfiles,
    taus: list[float],
) -> list[tuple[float, float, float]]:
    """(tau, ||A||, spectral radius) for each threshold.

    Because each row of ``A`` is normalized by |F_u|, its off-diagonal
    mass is the *mean* similarity of the retained edges — so pruning weak
    edges with a higher τ can actually **raise** the contraction factor
    while keeping it strictly below 1 (every similarity is < 1, §5.3).
    What τ buys is fewer rows to touch per iteration, not a better
    per-iteration contraction; this is exactly why the paper adds the
    β/γ(t) thresholds on top of the convergence guarantee.
    """
    rows: list[tuple[float, float, float]] = []
    for tau in taus:
        simgraph = SimGraphBuilder(tau=tau).build(follow_graph, profiles)
        system = LinearSystem(simgraph)
        rows.append(
            (tau, system.iteration_norm(), system.spectral_radius_estimate())
        )
    return rows
