"""Information-bubble analysis (paper §7, future work).

The paper closes with: *"We also plan to break 'information bubbles',
since recommended information is generally originated from the same
sub-part of the graph.  We are currently working on the identification of
bubbles in our twitter graph based on both the network topology and tweet
topics.  Then we will propose a complementary score for recommendations
by escaping from information locality from a bubble to another."*

This module implements that programme:

* **bubble identification** — communities of the SimGraph (label
  propagation over similarity edges = topology x co-retweet topics, since
  the edges themselves encode topical co-engagement);
* **locality measurement** — how concentrated a user's recommendations
  are inside their own bubble;
* **escape re-ranking** — :class:`BubbleEscapeReranker` mixes the raw
  propagation score with a complementary cross-bubble bonus, trading a
  controllable amount of score mass for diversity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.baselines.base import Recommendation
from repro.core.simgraph import SimGraph
from repro.graph.communities import label_propagation_communities

__all__ = [
    "BubbleMap",
    "BubbleEscapeReranker",
    "identify_bubbles",
    "recommendation_locality",
]


@dataclass(frozen=True)
class BubbleMap:
    """User -> bubble assignment over a SimGraph."""

    labels: dict[int, int]

    @property
    def bubble_count(self) -> int:
        """Number of distinct bubbles."""
        return len(set(self.labels.values()))

    def bubble_of(self, user: int) -> int | None:
        """Bubble of ``user`` (None for users outside the SimGraph)."""
        return self.labels.get(user)

    def members(self, bubble: int) -> set[int]:
        """Users assigned to ``bubble``."""
        return {u for u, b in self.labels.items() if b == bubble}

    def sizes(self) -> dict[int, int]:
        """Bubble -> member count."""
        sizes: dict[int, int] = {}
        for bubble in self.labels.values():
            sizes[bubble] = sizes.get(bubble, 0) + 1
        return sizes


def identify_bubbles(
    simgraph: SimGraph,
    max_iterations: int = 50,
    seed: int = 0,
    backbone_size: int | None = 10,
) -> BubbleMap:
    """Partition the SimGraph into information bubbles.

    Label propagation over similarity edges: two users land in one bubble
    when they are densely connected through co-retweet similarity — the
    "same sub-part of the graph" the paper wants to escape from.

    ``backbone_size`` prunes each user's out-edges to their strongest few
    before detection.  Label propagation famously collapses into one
    giant community on very dense graphs; the backbone keeps only the
    high-similarity skeleton where bubble structure lives.  Pass ``None``
    to detect on the full graph.
    """
    if backbone_size is not None and backbone_size < 1:
        raise ValueError(f"backbone_size must be positive, got {backbone_size}")
    graph = simgraph.graph
    if backbone_size is not None:
        from repro.graph.digraph import DiGraph
        from repro.utils.topk import top_k_items

        backbone = DiGraph()
        backbone.add_nodes(graph.nodes())
        for user in graph.nodes():
            edges = dict(graph.out_edges(user))
            for target, weight in top_k_items(edges, backbone_size):
                backbone.add_edge(user, target, weight=weight)
        graph = backbone
    labels = label_propagation_communities(
        graph, max_iterations=max_iterations, seed=seed
    )
    return BubbleMap(labels={int(u): int(b) for u, b in labels.items()})


def recommendation_locality(
    recommendations: Iterable[Recommendation],
    bubbles: BubbleMap,
    tweet_audience: Mapping[int, Iterable[int]],
) -> float:
    """Fraction of recommendations whose tweet stays inside the bubble.

    A recommendation (user, tweet) is *local* when the tweet's audience so
    far (its retweeters, from ``tweet_audience``) is predominantly in the
    same bubble as the recommended user.  Returns the local fraction in
    [0, 1]; 0.0 when nothing could be assessed.
    """
    local = 0
    assessed = 0
    for rec in recommendations:
        user_bubble = bubbles.bubble_of(rec.user)
        if user_bubble is None:
            continue
        audience_bubbles = [
            bubbles.bubble_of(u) for u in tweet_audience.get(rec.tweet, ())
        ]
        audience_bubbles = [b for b in audience_bubbles if b is not None]
        if not audience_bubbles:
            continue
        assessed += 1
        inside = sum(1 for b in audience_bubbles if b == user_bubble)
        if inside * 2 >= len(audience_bubbles):
            local += 1
    if assessed == 0:
        return 0.0
    return local / assessed


class BubbleEscapeReranker:
    """Re-rank recommendations with a cross-bubble complementary score.

    The adjusted score of a recommendation is::

        (1 - escape_weight) * score + escape_weight * score * novelty

    where ``novelty`` is the fraction of the tweet's current audience
    living *outside* the user's bubble.  ``escape_weight`` = 0 keeps the
    original ranking; 1 ranks purely by cross-bubble reach.

    Parameters
    ----------
    bubbles:
        The bubble assignment to diversify against.
    escape_weight:
        Mixing coefficient in [0, 1].
    """

    def __init__(self, bubbles: BubbleMap, escape_weight: float = 0.3):
        if not 0.0 <= escape_weight <= 1.0:
            raise ValueError(
                f"escape_weight must be in [0, 1], got {escape_weight}"
            )
        self.bubbles = bubbles
        self.escape_weight = escape_weight

    def novelty(
        self, user: int, tweet: int, tweet_audience: Mapping[int, Iterable[int]]
    ) -> float:
        """Cross-bubble fraction of ``tweet``'s audience w.r.t. ``user``."""
        user_bubble = self.bubbles.bubble_of(user)
        if user_bubble is None:
            return 0.0
        audience = [
            self.bubbles.bubble_of(u)
            for u in tweet_audience.get(tweet, ())
        ]
        audience = [b for b in audience if b is not None]
        if not audience:
            return 0.0
        outside = sum(1 for b in audience if b != user_bubble)
        return outside / len(audience)

    def rerank(
        self,
        recommendations: list[Recommendation],
        tweet_audience: Mapping[int, Iterable[int]],
    ) -> list[Recommendation]:
        """Return recommendations with escape-adjusted scores, best first."""
        adjusted: list[Recommendation] = []
        for rec in recommendations:
            novelty = self.novelty(rec.user, rec.tweet, tweet_audience)
            score = rec.score * (
                (1.0 - self.escape_weight) + self.escape_weight * novelty
            )
            adjusted.append(
                Recommendation(
                    user=rec.user, tweet=rec.tweet, score=score, time=rec.time
                )
            )
        adjusted.sort(key=lambda r: (-r.score, r.tweet, r.user))
        return adjusted
