"""Orchestration of the full §3-§4 characterization.

One call produces everything the paper reports about the data and the
similarity graph before the recommendation experiments: Table 1, Figures
1-5, Tables 2-4.  Used by the homophily example and the characterization
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.homophily import (
    DistanceSimilarityRow,
    TopRankDistanceRow,
    sample_active_users,
    similarity_by_distance,
    top_rank_distances,
)
from repro.core.profiles import RetweetProfiles
from repro.core.simgraph import SimGraph, SimGraphBuilder
from repro.data.dataset import TwitterDataset
from repro.data.stats import DatasetStats, compute_dataset_stats
from repro.utils.tables import render_table

__all__ = ["CharacterizationReport", "characterize"]


@dataclass(frozen=True)
class CharacterizationReport:
    """Bundle of every pre-experiment measurement."""

    stats: DatasetStats
    table2: list[DistanceSimilarityRow]
    table3: list[TopRankDistanceRow]
    simgraph: SimGraph
    table4: list[tuple[str, object]]
    simgraph_paths: dict[int, int]

    def render_table1(self) -> str:
        """Table 1 as text."""
        return render_table(
            ["feature", "value"], self.stats.table1_rows(), title="Table 1"
        )

    def render_table2(self) -> str:
        """Table 2 as text."""
        rows = [
            [r.label, r.pair_count, round(r.percentage, 2), r.mean_similarity]
            for r in self.table2
        ]
        return render_table(
            ["Distance", "Nb of pairs", "Perc.", "Average similarity"],
            rows,
            title="Table 2",
        )

    def render_table3(self) -> str:
        """Table 3 as text."""
        distances = sorted(
            {d for row in self.table3 for d in row.distance_percentages}
        )
        headers = ["Rank", "Average Distance"] + [str(d) for d in distances]
        rows = []
        for row in self.table3:
            cells: list[object] = [row.rank, round(row.average_distance, 2)]
            cells.extend(
                round(row.distance_percentages.get(d, 0.0), 2) for d in distances
            )
            rows.append(cells)
        return render_table(headers, rows, title="Table 3")

    def render_table4(self) -> str:
        """Table 4 as text."""
        return render_table(["feature", "value"], self.table4, title="Table 4")


def characterize(
    dataset: TwitterDataset,
    tau: float | None = None,
    sample_size: int = 200,
    min_retweets: int = 5,
    path_sample_size: int = 150,
    seed: int = 0,
) -> CharacterizationReport:
    """Run the complete characterization of ``dataset``.

    ``tau`` overrides the SimGraph similarity threshold;
    ``sample_size`` / ``min_retweets`` control the §3.2 user sample, and
    ``path_sample_size`` the BFS sampling of path-length statistics.
    """
    stats = compute_dataset_stats(
        dataset, path_sample_size=path_sample_size, seed=seed
    )
    profiles = RetweetProfiles(dataset.retweets())
    users = sample_active_users(
        dataset, sample_size=sample_size, min_retweets=min_retweets, seed=seed
    )
    table2 = similarity_by_distance(dataset, profiles, users)
    table3 = top_rank_distances(dataset, profiles, users)
    builder = SimGraphBuilder() if tau is None else SimGraphBuilder(tau=tau)
    simgraph = builder.build(dataset.follow_graph, profiles)
    summary = simgraph.summary(sample_size=path_sample_size, seed=seed)
    return CharacterizationReport(
        stats=stats,
        table2=table2,
        table3=table3,
        simgraph=simgraph,
        table4=simgraph.table4_rows(sample_size=path_sample_size, seed=seed),
        simgraph_paths=summary.path_length_counts,
    )
