"""Dataset layer: entities, container, chronological split, IO and the
paper's §3 characterization measurements."""

from repro.data.builders import DatasetBuilder
from repro.data.columnar import ColumnarDataset
from repro.data.dataset import TwitterDataset
from repro.data.io import load_dataset, save_dataset
from repro.data.loaders import assemble_dataset, load_edge_list, load_retweet_csv
from repro.data.models import ActivityClass, Retweet, Tweet, User
from repro.data.protocol import DatasetProtocol
from repro.data.split import TemporalSplit, temporal_split
from repro.data.stats import (
    DatasetStats,
    compute_dataset_stats,
    lifetime_survival,
    retweets_per_tweet,
    retweets_per_user,
    tweet_lifetimes,
)

__all__ = [
    "ActivityClass",
    "ColumnarDataset",
    "DatasetBuilder",
    "DatasetProtocol",
    "DatasetStats",
    "Retweet",
    "TemporalSplit",
    "Tweet",
    "TwitterDataset",
    "assemble_dataset",
    "User",
    "compute_dataset_stats",
    "lifetime_survival",
    "load_dataset",
    "load_edge_list",
    "load_retweet_csv",
    "retweets_per_tweet",
    "retweets_per_user",
    "save_dataset",
    "temporal_split",
    "tweet_lifetimes",
]
