"""Chronological splitting of the retweet log (paper §6.1).

The paper orders all sharing actions of messages with >= 2 retweets by
time, trains on the first 90% and tests on the last 10%.  Figure 16
additionally needs the 90-95% and 95-100% slices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet
from repro.exceptions import DatasetError

__all__ = ["TemporalSplit", "temporal_split"]


@dataclass(frozen=True)
class TemporalSplit:
    """Result of a chronological split of the eligible retweet stream."""

    train: list[Retweet]
    test: list[Retweet]

    @property
    def boundary_time(self) -> float:
        """Timestamp separating train from test."""
        if not self.test:
            raise DatasetError("empty test split has no boundary")
        return self.test[0].time

    def slice_test(self, start_frac: float, end_frac: float) -> list[Retweet]:
        """A sub-window of the test stream by fraction of *overall* actions.

        Fractions are relative to the full eligible stream, e.g.
        ``slice_test(0.95, 1.0)`` returns the last 5% used by Figure 16.
        """
        total = len(self.train) + len(self.test)
        lo = int(total * start_frac) - len(self.train)
        hi = int(total * end_frac) - len(self.train)
        lo = max(lo, 0)
        hi = max(hi, 0)
        return self.test[lo:hi]


def temporal_split(
    dataset: TwitterDataset,
    train_fraction: float = 0.9,
    min_retweets: int = 2,
) -> TemporalSplit:
    """Split the eligible retweet stream chronologically.

    Only actions on tweets with at least ``min_retweets`` distinct
    retweeters (measured over the whole dataset, as the paper does when
    assembling its 132M-action evaluation set) are retained.
    """
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    eligible_tweets = dataset.tweets_with_min_retweets(min_retweets)
    stream = [r for r in dataset.retweets() if r.tweet in eligible_tweets]
    if len(stream) < 2:
        raise DatasetError(
            "fewer than two eligible retweet actions; cannot split"
        )
    cut = int(len(stream) * train_fraction)
    cut = min(max(cut, 1), len(stream) - 1)
    return TemporalSplit(train=stream[:cut], test=stream[cut:])
