"""Fluent construction of small datasets, mainly for tests and examples.

Building a :class:`TwitterDataset` by hand requires registering users
before follows, tweets before retweets, and keeping timestamps coherent.
:class:`DatasetBuilder` handles the ordering so fixtures read like the
scenario they describe.
"""

from __future__ import annotations

from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet, Tweet, User

__all__ = ["DatasetBuilder"]


class DatasetBuilder:
    """Accumulate entities and produce a validated dataset.

    Example
    -------
    >>> ds = (
    ...     DatasetBuilder()
    ...     .with_users(3)
    ...     .follow(0, 1)
    ...     .tweet(tweet_id=0, author=1, at=0.0)
    ...     .retweet(user=0, tweet=0, at=10.0)
    ...     .build()
    ... )
    >>> ds.popularity(0)
    1
    """

    def __init__(self) -> None:
        self._dataset = TwitterDataset()
        self._next_tweet_id = 0

    def with_users(self, count: int, community: int = 0) -> "DatasetBuilder":
        """Add ``count`` users with consecutive ids in ``community``."""
        start = self._dataset.user_count
        for user_id in range(start, start + count):
            self._dataset.add_user(User(id=user_id, community=community))
        return self

    def user(self, user_id: int, community: int = 0) -> "DatasetBuilder":
        """Add a single user with an explicit id."""
        self._dataset.add_user(User(id=user_id, community=community))
        return self

    def follow(self, follower: int, followee: int) -> "DatasetBuilder":
        """Add a follow edge."""
        self._dataset.add_follow(follower, followee)
        return self

    def follow_chain(self, *user_ids: int) -> "DatasetBuilder":
        """Add follow edges along the path ``u0 -> u1 -> ... -> un``."""
        for follower, followee in zip(user_ids, user_ids[1:]):
            self._dataset.add_follow(follower, followee)
        return self

    def tweet(
        self,
        author: int,
        at: float = 0.0,
        tweet_id: int | None = None,
        topic: int = -1,
    ) -> "DatasetBuilder":
        """Add an original post (auto-assigns the id when omitted)."""
        if tweet_id is None:
            tweet_id = self._next_tweet_id
        self._dataset.add_tweet(
            Tweet(id=tweet_id, author=author, created_at=at, topic=topic)
        )
        self._next_tweet_id = max(self._next_tweet_id, tweet_id + 1)
        return self

    def retweet(self, user: int, tweet: int, at: float) -> "DatasetBuilder":
        """Add a sharing action."""
        self._dataset.add_retweet(Retweet(user=user, tweet=tweet, time=at))
        return self

    def build(self) -> TwitterDataset:
        """Validate and return the dataset."""
        self._dataset.validate()
        return self._dataset
