"""Dataset characterization (paper §3, Table 1 and Figures 1-4).

Every measurement the paper performs on its crawl is reproduced here:

* Table 1 — node/edge/tweet counts, mean and max degrees, diameter and
  average path length of the follow graph;
* Figure 1 — smallest-path distribution;
* Figure 2 — retweets-per-tweet distribution in the paper's bins;
* Figure 3 — retweets-per-user distribution;
* Figure 4 — tweet lifetime (publication -> last retweet) distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import TwitterDataset
from repro.graph.metrics import GraphSummary, summarize_graph
from repro.utils.histogram import FIGURE2_BINS, binned_counts, log_binned_counts

__all__ = [
    "DatasetStats",
    "compute_dataset_stats",
    "retweets_per_tweet",
    "retweets_per_user",
    "tweet_lifetimes",
    "lifetime_survival",
]


def retweets_per_tweet(dataset: TwitterDataset) -> list[int]:
    """Distinct-retweeter count of every tweet (zeros included) — Fig. 2."""
    return [dataset.popularity(tweet_id) for tweet_id in dataset.tweets]


def retweets_per_user(dataset: TwitterDataset) -> list[int]:
    """Total sharing actions of every user (zeros included) — Fig. 3."""
    return [dataset.user_retweet_count(user_id) for user_id in dataset.users]


def tweet_lifetimes(dataset: TwitterDataset) -> dict[int, float]:
    """Lifetime in hours of every tweet retweeted at least once — Fig. 4.

    The lifetime is the span between publication and the *last* retweet,
    exactly the paper's definition (§3.1.2).
    """
    last_retweet: dict[int, float] = {}
    for retweet in dataset.retweets():
        current = last_retweet.get(retweet.tweet)
        if current is None or retweet.time > current:
            last_retweet[retweet.tweet] = retweet.time
    return {
        tweet_id: (last - dataset.tweets[tweet_id].created_at) / 3600.0
        for tweet_id, last in last_retweet.items()
    }


def lifetime_survival(
    lifetimes_hours: dict[int, float], checkpoints: tuple[float, ...] = (1.0, 72.0)
) -> dict[float, float]:
    """Fraction of tweets dead (no further retweet) before each checkpoint.

    The paper reports 40% dead before 1h and 90% before 72h.
    """
    values = np.asarray(list(lifetimes_hours.values()), dtype=np.float64)
    if values.size == 0:
        return {cp: 0.0 for cp in checkpoints}
    return {cp: float((values < cp).mean()) for cp in checkpoints}


@dataclass(frozen=True)
class DatasetStats:
    """All §3 measurements bundled for reporting."""

    graph: GraphSummary
    tweet_count: int
    mean_tweets_per_user: float
    retweets_per_tweet_binned: list[tuple[str, int]]
    retweets_per_user_binned: list[tuple[str, int]]
    path_length_rows: list[tuple[int, int]]
    lifetime_binned: list[tuple[str, int]]
    lifetime_survival: dict[float, float]
    mean_retweets_per_user: float
    median_retweets_per_user: float
    never_retweeted_fraction: float
    never_retweeting_user_fraction: float

    def table1_rows(self) -> list[tuple[str, object]]:
        """The rows of the paper's Table 1."""
        rows = self.graph.rows()
        rows.insert(2, ("# tweets", self.tweet_count))
        return rows


def compute_dataset_stats(
    dataset: TwitterDataset,
    path_sample_size: int = 200,
    seed: int = 0,
) -> DatasetStats:
    """Run the complete §3 characterization of ``dataset``."""
    graph_summary = summarize_graph(
        dataset.follow_graph, sample_size=path_sample_size, seed=seed
    )
    per_tweet = retweets_per_tweet(dataset)
    per_user = retweets_per_user(dataset)
    lifetimes = tweet_lifetimes(dataset)
    lifetime_hours_int = [max(int(v), 0) for v in lifetimes.values()]
    per_user_arr = np.asarray(per_user, dtype=np.float64)
    per_tweet_arr = np.asarray(per_tweet, dtype=np.float64)
    return DatasetStats(
        graph=graph_summary,
        tweet_count=dataset.tweet_count,
        mean_tweets_per_user=(
            dataset.tweet_count / dataset.user_count if dataset.user_count else 0.0
        ),
        retweets_per_tweet_binned=binned_counts(per_tweet, FIGURE2_BINS),
        retweets_per_user_binned=log_binned_counts(per_user),
        path_length_rows=sorted(graph_summary.path_length_counts.items()),
        lifetime_binned=log_binned_counts(lifetime_hours_int),
        lifetime_survival=lifetime_survival(lifetimes),
        mean_retweets_per_user=float(per_user_arr.mean()) if per_user else 0.0,
        median_retweets_per_user=(
            float(np.median(per_user_arr)) if per_user else 0.0
        ),
        never_retweeted_fraction=(
            float((per_tweet_arr == 0).mean()) if per_tweet else 0.0
        ),
        never_retweeting_user_fraction=(
            float((per_user_arr == 0).mean()) if per_user else 0.0
        ),
    )
