"""Loaders for common external data formats.

For adopters bringing their own crawl instead of the synthetic generator:

* :func:`load_edge_list` — the Kwak et al. (WWW 2010) follow-graph format
  the paper bootstrapped from: one ``follower followee`` pair per line,
  whitespace- or comma-separated, ``#`` comments allowed;
* :func:`load_retweet_csv` — retweet actions as ``user,tweet,timestamp``
  CSV (header optional);
* :func:`assemble_dataset` — combine both into a validated
  :class:`~repro.data.dataset.TwitterDataset`, synthesizing minimal tweet
  records for retweeted-only corpora (original-post metadata is usually
  absent from interaction dumps; creation time is approximated by the
  first observed retweet).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet, Tweet, User
from repro.exceptions import DatasetError

__all__ = ["load_edge_list", "load_retweet_csv", "assemble_dataset"]


def load_edge_list(path: str | Path) -> list[tuple[int, int]]:
    """Parse a Kwak-style follow edge list.

    Each non-comment line holds ``follower followee`` (whitespace or
    comma separated).  Raises :class:`DatasetError` with the line number
    on malformed input.
    """
    edges: list[tuple[int, int]] = []
    with open(path, encoding="utf-8") as f:
        for line_no, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.replace(",", " ").split()
            if len(parts) != 2:
                raise DatasetError(
                    f"{path}:{line_no}: expected 2 fields, got {len(parts)}"
                )
            try:
                edges.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_no}: non-integer node id"
                ) from exc
    return edges


def load_retweet_csv(path: str | Path) -> list[Retweet]:
    """Parse retweet actions from ``user,tweet,timestamp`` CSV.

    A header row is detected (non-numeric first field) and skipped.
    """
    actions: list[Retweet] = []
    with open(path, encoding="utf-8", newline="") as f:
        reader = csv.reader(f)
        for line_no, row in enumerate(reader, start=1):
            if not row or not "".join(row).strip():
                continue
            if line_no == 1 and not row[0].strip().lstrip("-").isdigit():
                continue  # header
            if len(row) < 3:
                raise DatasetError(
                    f"{path}:{line_no}: expected 3 fields, got {len(row)}"
                )
            try:
                actions.append(
                    Retweet(
                        user=int(row[0]),
                        tweet=int(row[1]),
                        time=float(row[2]),
                    )
                )
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_no}: malformed row") from exc
    return actions


def assemble_dataset(
    edges: list[tuple[int, int]],
    retweets: list[Retweet],
    tweets: list[Tweet] | None = None,
) -> TwitterDataset:
    """Build a validated dataset from loaded pieces.

    Users are the union of edge endpoints and retweeting users.  When
    ``tweets`` is omitted, a minimal record is synthesized per retweeted
    tweet: author 0 is a reserved "unknown author" account and the
    creation time is the first observed retweet (so lifetimes measured on
    such corpora are lower bounds).
    """
    dataset = TwitterDataset()
    user_ids = {u for edge in edges for u in edge}
    user_ids.update(r.user for r in retweets)
    if tweets is None and retweets:
        user_ids.add(0)  # the unknown-author account
    if tweets is not None:
        user_ids.update(t.author for t in tweets)
    for user_id in sorted(user_ids):
        dataset.add_user(User(id=user_id))
    for follower, followee in edges:
        if follower == followee:
            continue  # self-follows appear in dirty crawls; drop them
        dataset.add_follow(follower, followee)
    if tweets is None:
        first_seen: dict[int, float] = {}
        for retweet in retweets:
            current = first_seen.get(retweet.tweet)
            if current is None or retweet.time < current:
                first_seen[retweet.tweet] = retweet.time
        tweets = [
            Tweet(id=tweet_id, author=0, created_at=at)
            for tweet_id, at in sorted(first_seen.items())
        ]
    for tweet in tweets:
        dataset.add_tweet(tweet)
    for retweet in sorted(retweets, key=lambda r: (r.time, r.user, r.tweet)):
        dataset.add_retweet(retweet)
    dataset.validate()
    return dataset
