"""The read API every dataset backend shares.

:class:`TwitterDataset` (dict-of-objects, incremental construction) and
:class:`~repro.data.columnar.ColumnarDataset` (numpy columns, bulk
construction) both satisfy :class:`DatasetProtocol`; downstream code —
splits, stats, profile building, evaluation — should type against the
protocol so either backend can be swapped in.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.data.models import Retweet

__all__ = ["DatasetProtocol"]


@runtime_checkable
class DatasetProtocol(Protocol):
    """Read-side contract of a dataset container.

    ``users`` and ``tweets`` additionally behave as mappings (id ->
    entity) on both concrete backends, but the protocol pins only the
    methods downstream subsystems call; mutating construction APIs are
    backend-specific.
    """

    @property
    def user_count(self) -> int: ...

    @property
    def tweet_count(self) -> int: ...

    @property
    def retweet_count(self) -> int: ...

    def retweets(self) -> list[Retweet]: ...

    def popularity(self, tweet_id: int) -> int: ...

    def retweeters(self, tweet_id: int) -> set[int]: ...

    def profile(self, user_id: int) -> set[int]: ...

    def user_retweet_count(self, user_id: int) -> int: ...

    def activity_class(
        self, user_id: int, low_max: int = 100, moderate_max: int = 1000
    ) -> str: ...

    def tweets_with_min_retweets(self, min_retweets: int = 2) -> set[int]: ...

    def followees(self, user_id: int) -> list[int]: ...

    def followers(self, user_id: int) -> list[int]: ...

    def time_span(self) -> tuple[float, float]: ...

    def validate(self) -> None: ...
