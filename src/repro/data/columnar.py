"""Columnar dataset backend: numpy columns instead of dicts-of-objects.

:class:`TwitterDataset` keeps one Python object per user, tweet and
retweet — fine for the tens-of-thousands-scale replay harness, hopeless
for the paper's 2.2M-user / 3.9M-tweet crawl.  :class:`ColumnarDataset`
stores the same corpus as flat int64/float64 columns plus CSR secondary
indexes, so a million-user corpus is a handful of arrays:

* users: sorted id column + aligned community column; external ids map
  to dense positions ``0..n-1`` by binary search (id-dense encoding);
* follows: forward CSR (position -> followee positions) and its
  transpose (position -> follower positions);
* tweets: sorted id column + aligned author/time/topic columns;
* retweets: the raw chronological log as three parallel columns, with
  deduplicated CSR indexes for tweet -> retweeters and user -> profile.

It satisfies :class:`~repro.data.protocol.DatasetProtocol`, so the
split/stats/profile layers accept it unchanged.  Object-returning
accessors (``users``/``tweets`` mappings, :meth:`retweets`) materialize
lazily and are meant for protocol compatibility at modest scale; the
``*_array`` accessors are the paper-scale path.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import TwitterDataset
from repro.data.models import ActivityClass, Retweet, Tweet, User
from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = ["ColumnarDataset"]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def _dedup_pairs_csr(
    keys: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort + dedup ``(key, value)`` pairs into (unique_keys, indptr, values).

    Row ``i`` of the result — ``values[indptr[i]:indptr[i+1]]`` — holds the
    sorted distinct partners of ``unique_keys[i]``.
    """
    if len(keys) == 0:
        return _EMPTY_I64, np.zeros(1, dtype=np.int64), _EMPTY_I64
    order = np.lexsort((values, keys))
    k = keys[order]
    v = values[order]
    fresh = np.empty(len(k), dtype=bool)
    fresh[0] = True
    np.logical_or(k[1:] != k[:-1], v[1:] != v[:-1], out=fresh[1:])
    k = k[fresh]
    v = v[fresh]
    unique, counts = np.unique(k, return_counts=True)
    indptr = np.zeros(len(unique) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return unique, indptr, v


def _csr_row(
    keys: np.ndarray, indptr: np.ndarray, values: np.ndarray, key: int
) -> np.ndarray:
    i = int(np.searchsorted(keys, key))
    if i >= len(keys) or int(keys[i]) != key:
        return _EMPTY_I64
    return values[indptr[i] : indptr[i + 1]]


class _LazyIdMapping:
    """Read-only id -> entity mapping materializing objects on demand.

    Mimics the parts of the ``dict`` interface consumers use on
    ``TwitterDataset.users`` / ``.tweets``: iteration over ids,
    membership, ``len``, ``[]``/``get`` and ``values()``.
    """

    __slots__ = ("_ids", "_make")

    def __init__(self, ids: np.ndarray, make):
        self._ids = ids
        self._make = make

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids.tolist())

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, (int, np.integer)):
            return False
        i = int(np.searchsorted(self._ids, key))
        return i < len(self._ids) and int(self._ids[i]) == int(key)

    def __getitem__(self, key: int):
        if key not in self:
            raise KeyError(key)
        return self._make(int(key))

    def get(self, key: int, default=None):
        if key not in self:
            return default
        return self._make(int(key))

    def keys(self) -> Iterator[int]:
        return iter(self)

    def values(self) -> Iterator[object]:
        for key in self:
            yield self._make(key)

    def items(self) -> Iterator[tuple[int, object]]:
        for key in self:
            yield key, self._make(key)


class ColumnarDataset:
    """Users + follow graph + tweets + retweet log over flat columns.

    Construct via :meth:`from_dataset` (convert an in-memory
    :class:`TwitterDataset`) or :meth:`from_arrays` (bulk columns, the
    chunked synthesizer's output).  The container is immutable after
    construction — incremental ingestion belongs to ``TwitterDataset``
    and the service-layer delta engine.
    """

    def __init__(
        self,
        *,
        user_ids: np.ndarray,
        user_communities: np.ndarray | None = None,
        follow_src: np.ndarray,
        follow_dst: np.ndarray,
        tweet_ids: np.ndarray,
        tweet_authors: np.ndarray,
        tweet_times: np.ndarray,
        tweet_topics: np.ndarray | None = None,
        rt_users: np.ndarray,
        rt_tweets: np.ndarray,
        rt_times: np.ndarray,
        check: bool = True,
    ):
        order = np.argsort(np.asarray(user_ids, dtype=np.int64), kind="stable")
        self.user_ids = np.ascontiguousarray(
            np.asarray(user_ids, dtype=np.int64)[order]
        )
        if len(np.unique(self.user_ids)) != len(self.user_ids):
            raise DatasetError("duplicate user ids")
        if user_communities is None:
            self.user_communities = np.zeros(len(self.user_ids), dtype=np.int32)
        else:
            self.user_communities = np.ascontiguousarray(
                np.asarray(user_communities, dtype=np.int32)[order]
            )

        t_order = np.argsort(
            np.asarray(tweet_ids, dtype=np.int64), kind="stable"
        )
        self.tweet_ids = np.ascontiguousarray(
            np.asarray(tweet_ids, dtype=np.int64)[t_order]
        )
        if len(np.unique(self.tweet_ids)) != len(self.tweet_ids):
            raise DatasetError("duplicate tweet ids")
        self.tweet_authors = np.ascontiguousarray(
            np.asarray(tweet_authors, dtype=np.int64)[t_order]
        )
        self.tweet_times = np.ascontiguousarray(
            np.asarray(tweet_times, dtype=np.float64)[t_order]
        )
        if tweet_topics is None:
            self.tweet_topics = np.full(len(self.tweet_ids), -1, dtype=np.int32)
        else:
            self.tweet_topics = np.ascontiguousarray(
                np.asarray(tweet_topics, dtype=np.int32)[t_order]
            )

        rt_users = np.asarray(rt_users, dtype=np.int64)
        rt_tweets = np.asarray(rt_tweets, dtype=np.int64)
        rt_times = np.asarray(rt_times, dtype=np.float64)
        if not (len(rt_users) == len(rt_tweets) == len(rt_times)):
            raise DatasetError("retweet columns must be parallel")
        # Chronological order with the same tie-break TwitterDataset uses.
        r_order = np.lexsort((rt_tweets, rt_users, rt_times))
        self.rt_users = np.ascontiguousarray(rt_users[r_order])
        self.rt_tweets = np.ascontiguousarray(rt_tweets[r_order])
        self.rt_times = np.ascontiguousarray(rt_times[r_order])

        follow_src = np.asarray(follow_src, dtype=np.int64)
        follow_dst = np.asarray(follow_dst, dtype=np.int64)
        if follow_src.shape != follow_dst.shape:
            raise DatasetError("follow columns must be parallel")
        if check:
            self._check_membership(self.user_ids, follow_src, "follower")
            self._check_membership(self.user_ids, follow_dst, "followee")
            self._check_membership(self.user_ids, self.tweet_authors, "author")
            self._check_membership(self.user_ids, self.rt_users, "retweeter")
            self._check_membership(
                self.tweet_ids, self.rt_tweets, "retweeted tweet"
            )
            if np.any(follow_src == follow_dst):
                raise DatasetError("self-follow edge")
        src_pos = self._user_pos(follow_src)
        dst_pos = self._user_pos(follow_dst)
        fwd_keys, fwd_indptr, fwd_vals = _dedup_pairs_csr(src_pos, dst_pos)
        self.follow_indptr, self.follow_targets = self._densify(
            fwd_keys, fwd_indptr, fwd_vals, len(self.user_ids)
        )
        rev_keys, rev_indptr, rev_vals = _dedup_pairs_csr(dst_pos, src_pos)
        self.follower_indptr, self.follower_sources = self._densify(
            rev_keys, rev_indptr, rev_vals, len(self.user_ids)
        )

        # Distinct-pair secondary indexes (popularity m(i) and profiles L_u).
        self._rtw_keys, self._rtw_indptr, self._rtw_users = _dedup_pairs_csr(
            self.rt_tweets, self.rt_users
        )
        self._prof_keys, self._prof_indptr, self._prof_tweets = (
            _dedup_pairs_csr(self.rt_users, self.rt_tweets)
        )
        # Raw action counts per user (duplicates included, like the log).
        count_keys, counts = (
            np.unique(self.rt_users, return_counts=True)
            if len(self.rt_users)
            else (_EMPTY_I64, _EMPTY_I64)
        )
        self._count_keys = count_keys
        self._counts = counts.astype(np.int64)

        if check and len(self.rt_tweets):
            created = self.tweet_times[
                np.searchsorted(self.tweet_ids, self.rt_tweets)
            ]
            early = self.rt_times < created
            if np.any(early):
                i = int(np.argmax(early))
                raise DatasetError(
                    f"retweet at {self.rt_times[i]} precedes tweet "
                    f"{int(self.rt_tweets[i])} creation at {created[i]}"
                )

        self._retweet_list: list[Retweet] | None = None
        self._follow_graph: DiGraph | None = None
        self._interests: dict[int, tuple[float, ...]] = {}

    @staticmethod
    def _check_membership(
        universe: np.ndarray, ids: np.ndarray, role: str
    ) -> None:
        if len(ids) == 0:
            return
        pos = np.searchsorted(universe, ids)
        bad = (pos >= len(universe)) | (
            universe[np.minimum(pos, len(universe) - 1)] != ids
        )
        if np.any(bad):
            raise DatasetError(
                f"unknown {role} id {int(ids[int(np.argmax(bad))])}"
            )

    @staticmethod
    def _densify(
        keys: np.ndarray, indptr: np.ndarray, values: np.ndarray, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Spread a sparse-keyed CSR over all ``n`` dense positions."""
        full = np.zeros(n + 1, dtype=np.int64)
        if len(keys):
            full[keys + 1] = np.diff(indptr)
        np.cumsum(full, out=full)
        return full, values

    def _user_pos(self, ids: np.ndarray) -> np.ndarray:
        return np.searchsorted(self.user_ids, ids)

    def _user_position(self, user_id: int) -> int:
        i = int(np.searchsorted(self.user_ids, user_id))
        if i >= len(self.user_ids) or int(self.user_ids[i]) != user_id:
            raise DatasetError(f"unknown user id {user_id}")
        return i

    # ------------------------------------------------------------------
    # Construction from other representations
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: TwitterDataset) -> "ColumnarDataset":
        """Freeze an in-memory :class:`TwitterDataset` into columns."""
        users = sorted(dataset.users)
        follow_src: list[int] = []
        follow_dst: list[int] = []
        for follower, followee, _ in dataset.follow_graph.edges():
            follow_src.append(follower)
            follow_dst.append(followee)
        tweets = list(dataset.tweets.values())
        log = dataset.retweets()
        columnar = cls(
            user_ids=np.array(users, dtype=np.int64),
            user_communities=np.array(
                [dataset.users[u].community for u in users], dtype=np.int32
            ),
            follow_src=np.array(follow_src, dtype=np.int64),
            follow_dst=np.array(follow_dst, dtype=np.int64),
            tweet_ids=np.array([t.id for t in tweets], dtype=np.int64),
            tweet_authors=np.array([t.author for t in tweets], dtype=np.int64),
            tweet_times=np.array(
                [t.created_at for t in tweets], dtype=np.float64
            ),
            tweet_topics=np.array([t.topic for t in tweets], dtype=np.int32),
            rt_users=np.array([r.user for r in log], dtype=np.int64),
            rt_tweets=np.array([r.tweet for r in log], dtype=np.int64),
            rt_times=np.array([r.time for r in log], dtype=np.float64),
            check=False,
        )
        for u in users:
            interests = dataset.users[u].interests
            if interests:
                columnar._interests[u] = tuple(interests)
        return columnar

    @classmethod
    def from_arrays(cls, **columns) -> "ColumnarDataset":
        """Bulk construction from raw columns (validates referential
        integrity; see ``__init__`` for the column names)."""
        return cls(**columns)

    # ------------------------------------------------------------------
    # Protocol: counts and the retweet log
    # ------------------------------------------------------------------
    @property
    def user_count(self) -> int:
        return len(self.user_ids)

    @property
    def tweet_count(self) -> int:
        return len(self.tweet_ids)

    @property
    def retweet_count(self) -> int:
        return len(self.rt_users)

    def retweets(self) -> list[Retweet]:
        """The log as :class:`Retweet` objects, chronological (cached).

        Materializes one object per action — use :meth:`retweet_arrays`
        or :meth:`iter_retweets` on paper-scale corpora.
        """
        if self._retweet_list is None:
            self._retweet_list = [
                Retweet(user=int(u), tweet=int(t), time=float(ts))
                for u, t, ts in zip(self.rt_users, self.rt_tweets, self.rt_times)
            ]
        return self._retweet_list

    def retweet_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(users, tweets, times) columns, chronological — zero copies."""
        return self.rt_users, self.rt_tweets, self.rt_times

    def iter_retweets(self) -> Iterator[Retweet]:
        """Stream the log without materializing the full object list."""
        for u, t, ts in zip(self.rt_users, self.rt_tweets, self.rt_times):
            yield Retweet(user=int(u), tweet=int(t), time=float(ts))

    # ------------------------------------------------------------------
    # Protocol: indexes
    # ------------------------------------------------------------------
    def popularity(self, tweet_id: int) -> int:
        """m(i): number of distinct users who retweeted ``tweet_id``."""
        return len(self.retweeters_array(tweet_id))

    def retweeters(self, tweet_id: int) -> set[int]:
        """Distinct users who retweeted ``tweet_id`` (fresh copy)."""
        return set(self.retweeters_array(tweet_id).tolist())

    def retweeters_array(self, tweet_id: int) -> np.ndarray:
        """Distinct retweeters of ``tweet_id`` as a sorted array (view)."""
        return _csr_row(
            self._rtw_keys, self._rtw_indptr, self._rtw_users, tweet_id
        )

    def profile(self, user_id: int) -> set[int]:
        """L_u: the set of tweets ``user_id`` has retweeted (fresh copy)."""
        return set(self.profile_array(user_id).tolist())

    def profile_array(self, user_id: int) -> np.ndarray:
        """L_u as a sorted array (view into the profile CSR)."""
        return _csr_row(
            self._prof_keys, self._prof_indptr, self._prof_tweets, user_id
        )

    def user_retweet_count(self, user_id: int) -> int:
        """Total sharing actions by ``user_id`` (duplicates included)."""
        i = int(np.searchsorted(self._count_keys, user_id))
        if i >= len(self._count_keys) or int(self._count_keys[i]) != user_id:
            return 0
        return int(self._counts[i])

    def activity_class(
        self, user_id: int, low_max: int = 100, moderate_max: int = 1000
    ) -> str:
        """Activity stratum of ``user_id`` (see :class:`ActivityClass`)."""
        return ActivityClass.classify(
            self.user_retweet_count(user_id), low_max, moderate_max
        )

    def tweets_with_min_retweets(self, min_retweets: int = 2) -> set[int]:
        """Tweets retweeted by >= ``min_retweets`` distinct users (§3.1.2)."""
        sizes = np.diff(self._rtw_indptr)
        return set(self._rtw_keys[sizes >= min_retweets].tolist())

    # ------------------------------------------------------------------
    # Protocol: follow graph
    # ------------------------------------------------------------------
    def followees(self, user_id: int) -> list[int]:
        """Accounts ``user_id`` follows."""
        return self.user_ids[self.followees_positions(user_id)].tolist()

    def followers(self, user_id: int) -> list[int]:
        """Accounts following ``user_id``."""
        return self.user_ids[self.followers_positions(user_id)].tolist()

    def followees_positions(self, user_id: int) -> np.ndarray:
        """Dense positions of ``user_id``'s followees (CSR row view)."""
        i = self._user_position(user_id)
        return self.follow_targets[
            self.follow_indptr[i] : self.follow_indptr[i + 1]
        ]

    def followers_positions(self, user_id: int) -> np.ndarray:
        """Dense positions of ``user_id``'s followers (CSR row view)."""
        i = self._user_position(user_id)
        return self.follower_sources[
            self.follower_indptr[i] : self.follower_indptr[i + 1]
        ]

    @property
    def follow_graph(self) -> DiGraph:
        """The follow graph as a :class:`DiGraph` (lazy, cached).

        Materializes one adjacency dict per user — the compatibility
        path for the DiGraph-based builders at modest scale; the CSR
        columns (``follow_indptr``/``follow_targets``) are the scale
        path.
        """
        if self._follow_graph is None:
            graph = DiGraph()
            ids = self.user_ids.tolist()
            graph.add_nodes(ids)
            for i, user in enumerate(ids):
                row = self.follow_targets[
                    self.follow_indptr[i] : self.follow_indptr[i + 1]
                ]
                if len(row):
                    graph.set_row(
                        user,
                        {int(self.user_ids[j]): 1.0 for j in row.tolist()},
                    )
            self._follow_graph = graph
        return self._follow_graph

    # ------------------------------------------------------------------
    # Protocol: entity mappings
    # ------------------------------------------------------------------
    @property
    def users(self) -> _LazyIdMapping:
        """id -> :class:`User` mapping view (objects built on access)."""
        return _LazyIdMapping(self.user_ids, self._make_user)

    def _make_user(self, user_id: int) -> User:
        i = self._user_position(user_id)
        return User(
            id=user_id,
            community=int(self.user_communities[i]),
            interests=self._interests.get(user_id, ()),
        )

    @property
    def tweets(self) -> _LazyIdMapping:
        """id -> :class:`Tweet` mapping view (objects built on access)."""
        return _LazyIdMapping(self.tweet_ids, self._make_tweet)

    def _make_tweet(self, tweet_id: int) -> Tweet:
        i = int(np.searchsorted(self.tweet_ids, tweet_id))
        return Tweet(
            id=tweet_id,
            author=int(self.tweet_authors[i]),
            created_at=float(self.tweet_times[i]),
            topic=int(self.tweet_topics[i]),
        )

    # ------------------------------------------------------------------
    # Protocol: misc
    # ------------------------------------------------------------------
    def time_span(self) -> tuple[float, float]:
        """(first, last) timestamps over tweets and retweets."""
        if len(self.tweet_times) == 0 and len(self.rt_times) == 0:
            raise DatasetError("dataset holds no timestamped event")
        lows = [arr.min() for arr in (self.tweet_times, self.rt_times) if len(arr)]
        highs = [arr.max() for arr in (self.tweet_times, self.rt_times) if len(arr)]
        return float(min(lows)), float(max(highs))

    def validate(self) -> None:
        """Vectorized referential-integrity check; raise on corruption."""
        self._check_membership(self.user_ids, self.tweet_authors, "author")
        self._check_membership(self.user_ids, self.rt_users, "retweeter")
        self._check_membership(
            self.tweet_ids, self.rt_tweets, "retweeted tweet"
        )
        if len(self.rt_tweets):
            created = self.tweet_times[
                np.searchsorted(self.tweet_ids, self.rt_tweets)
            ]
            if np.any(self.rt_times < created):
                raise DatasetError("retweet precedes tweet creation")

    def nbytes(self) -> int:
        """Total bytes held by the numpy columns (diagnostics)."""
        arrays = (
            self.user_ids, self.user_communities,
            self.follow_indptr, self.follow_targets,
            self.follower_indptr, self.follower_sources,
            self.tweet_ids, self.tweet_authors, self.tweet_times,
            self.tweet_topics,
            self.rt_users, self.rt_tweets, self.rt_times,
            self._rtw_keys, self._rtw_indptr, self._rtw_users,
            self._prof_keys, self._prof_indptr, self._prof_tweets,
            self._count_keys, self._counts,
        )
        return int(sum(a.nbytes for a in arrays))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnarDataset(users={self.user_count}, "
            f"tweets={self.tweet_count}, retweets={self.retweet_count})"
        )
