"""Core entities of a microblogging dataset.

Mirrors what the paper's crawl collected per account (§3): the follow
edges live in a :class:`repro.graph.DiGraph`, while tweets and retweet
actions are the value objects defined here.  Timestamps are float seconds
since the dataset epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["User", "Tweet", "Retweet", "ActivityClass"]


class ActivityClass:
    """The paper's three evaluation strata (§6.1).

    * ``LOW``: fewer than 100 retweets
    * ``MODERATE``: 100 to 999 retweets
    * ``INTENSIVE``: 1,000 retweets or more

    Thresholds are scaled by the dataset generator when the corpus is
    smaller than the paper's; the *classification* API stays the same.
    """

    LOW = "low"
    MODERATE = "moderate"
    INTENSIVE = "intensive"

    ALL = (LOW, MODERATE, INTENSIVE)

    @staticmethod
    def classify(
        retweet_count: int, low_max: int = 100, moderate_max: int = 1000
    ) -> str:
        """Map a user's retweet count to its activity class."""
        if retweet_count < low_max:
            return ActivityClass.LOW
        if retweet_count < moderate_max:
            return ActivityClass.MODERATE
        return ActivityClass.INTENSIVE


@dataclass(slots=True)
class User:
    """A platform account.

    ``interests`` is the latent topic-mixture vector used only by the
    synthetic generator; real-data loaders leave it empty.
    """

    id: int
    community: int = 0
    interests: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"user id must be non-negative, got {self.id}")


@dataclass(slots=True)
class Tweet:
    """An original post: ``author`` published it at ``created_at``.

    ``topic`` is the generator's latent topic index (-1 for unknown, e.g.
    real data).
    """

    id: int
    author: int
    created_at: float
    topic: int = -1

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"tweet id must be non-negative, got {self.id}")


@dataclass(slots=True, frozen=True)
class Retweet:
    """One sharing action: ``user`` retweeted ``tweet`` at ``time``.

    Retweets are the paper's sole interest signal (§3.1) — the entire
    similarity measure, the propagation model and the evaluation protocol
    are built from streams of these records.
    """

    user: int
    tweet: int
    time: float
