"""The in-memory dataset container.

:class:`TwitterDataset` bundles everything the paper's crawl produced —
users, the follow graph, tweets, and the chronological retweet log — and
maintains the secondary indexes every other subsystem needs: retweets per
tweet (popularity m(i)), retweets per user (profiles L_u), and per-user
retweet counts (activity strata).
"""

from __future__ import annotations

from repro.data.models import ActivityClass, Retweet, Tweet, User
from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = ["TwitterDataset"]


class TwitterDataset:
    """Users + follow graph + tweets + retweet log, with indexes.

    The follow graph stores an edge ``u -> v`` when ``u`` follows ``v``
    (``v`` is a *followee* of ``u``), matching the paper's orientation:
    content flows from followees to followers, and the 2-hop exploration of
    §4.1 walks follow edges forward.
    """

    def __init__(self) -> None:
        self.users: dict[int, User] = {}
        self.tweets: dict[int, Tweet] = {}
        self.follow_graph = DiGraph()
        self._retweets: list[Retweet] = []
        self._retweets_sorted = True
        # Secondary indexes, maintained incrementally.
        self._retweeters: dict[int, set[int]] = {}  # tweet -> users
        self._profile: dict[int, set[int]] = {}  # user -> tweets retweeted
        self._user_retweet_count: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_user(self, user: User) -> None:
        """Register ``user``; duplicate ids are rejected."""
        if user.id in self.users:
            raise DatasetError(f"duplicate user id {user.id}")
        self.users[user.id] = user
        self.follow_graph.add_node(user.id)

    def add_follow(self, follower: int, followee: int) -> None:
        """Record that ``follower`` follows ``followee``."""
        self._check_user(follower)
        self._check_user(followee)
        self.follow_graph.add_edge(follower, followee)

    def add_tweet(self, tweet: Tweet) -> None:
        """Register an original post; its author must exist."""
        if tweet.id in self.tweets:
            raise DatasetError(f"duplicate tweet id {tweet.id}")
        self._check_user(tweet.author)
        self.tweets[tweet.id] = tweet

    def add_retweet(self, retweet: Retweet) -> None:
        """Append a sharing action and update all indexes.

        A user retweeting the same tweet twice is idempotent for the
        profile/popularity indexes (matching how the paper counts distinct
        retweeters) but the raw log keeps every action.
        """
        self._check_user(retweet.user)
        if retweet.tweet not in self.tweets:
            raise DatasetError(f"unknown tweet id {retweet.tweet}")
        tweet = self.tweets[retweet.tweet]
        if retweet.time < tweet.created_at:
            raise DatasetError(
                f"retweet at {retweet.time} precedes tweet {tweet.id} "
                f"creation at {tweet.created_at}"
            )
        if self._retweets and retweet.time < self._retweets[-1].time:
            self._retweets_sorted = False
        self._retweets.append(retweet)
        self._retweeters.setdefault(retweet.tweet, set()).add(retweet.user)
        self._profile.setdefault(retweet.user, set()).add(retweet.tweet)
        self._user_retweet_count[retweet.user] = (
            self._user_retweet_count.get(retweet.user, 0) + 1
        )

    def _check_user(self, user_id: int) -> None:
        if user_id not in self.users:
            raise DatasetError(f"unknown user id {user_id}")

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------
    @property
    def user_count(self) -> int:
        """Number of registered users."""
        return len(self.users)

    @property
    def tweet_count(self) -> int:
        """Number of original posts."""
        return len(self.tweets)

    @property
    def retweet_count(self) -> int:
        """Number of sharing actions in the log."""
        return len(self._retweets)

    def retweets(self) -> list[Retweet]:
        """The retweet log in chronological order (cached sort)."""
        if not self._retweets_sorted:
            self._retweets.sort(key=lambda r: (r.time, r.user, r.tweet))
            self._retweets_sorted = True
        return self._retweets

    def popularity(self, tweet_id: int) -> int:
        """m(i): number of distinct users who retweeted ``tweet_id``."""
        return len(self._retweeters.get(tweet_id, ()))

    def retweeters(self, tweet_id: int) -> set[int]:
        """Distinct users who retweeted ``tweet_id``."""
        return set(self._retweeters.get(tweet_id, ()))

    def profile(self, user_id: int) -> set[int]:
        """L_u: the set of tweets ``user_id`` has retweeted."""
        return set(self._profile.get(user_id, ()))

    def user_retweet_count(self, user_id: int) -> int:
        """Total sharing actions performed by ``user_id``."""
        return self._user_retweet_count.get(user_id, 0)

    def activity_class(
        self, user_id: int, low_max: int = 100, moderate_max: int = 1000
    ) -> str:
        """Activity stratum of ``user_id`` (see :class:`ActivityClass`)."""
        return ActivityClass.classify(
            self.user_retweet_count(user_id), low_max, moderate_max
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def tweets_with_min_retweets(self, min_retweets: int = 2) -> set[int]:
        """Tweets retweeted by at least ``min_retweets`` distinct users.

        The paper restricts both training and evaluation to messages with
        >= 2 retweets (§3.1.2, §6.1).
        """
        return {
            tweet_id
            for tweet_id, users in self._retweeters.items()
            if len(users) >= min_retweets
        }

    def followees(self, user_id: int) -> list[int]:
        """Accounts ``user_id`` follows."""
        self._check_user(user_id)
        return list(self.follow_graph.successors(user_id))

    def followers(self, user_id: int) -> list[int]:
        """Accounts following ``user_id``."""
        self._check_user(user_id)
        return list(self.follow_graph.predecessors(user_id))

    def time_span(self) -> tuple[float, float]:
        """(first, last) timestamps over tweets and retweets."""
        times: list[float] = [t.created_at for t in self.tweets.values()]
        times.extend(r.time for r in self._retweets)
        if not times:
            raise DatasetError("dataset holds no timestamped event")
        return min(times), max(times)

    def validate(self) -> None:
        """Check referential integrity of every index; raise on corruption."""
        for tweet_id, users in self._retweeters.items():
            if tweet_id not in self.tweets:
                raise DatasetError(f"index references unknown tweet {tweet_id}")
            for user_id in users:
                if user_id not in self.users:
                    raise DatasetError(f"index references unknown user {user_id}")
        recount: dict[int, int] = {}
        for retweet in self._retweets:
            recount[retweet.user] = recount.get(retweet.user, 0) + 1
        if recount != self._user_retweet_count:
            raise DatasetError("user retweet counts diverge from the log")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TwitterDataset(users={self.user_count}, "
            f"tweets={self.tweet_count}, retweets={self.retweet_count})"
        )
