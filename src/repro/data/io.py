"""Dataset persistence.

A :class:`~repro.data.dataset.TwitterDataset` is saved as a directory of
JSON-lines files — one per entity kind — so large corpora stream instead of
loading one giant JSON document.  The layout:

    <dir>/users.jsonl      {"id":..,"community":..,"interests":[..]}
    <dir>/follows.jsonl    {"follower":..,"followee":..}
    <dir>/tweets.jsonl     {"id":..,"author":..,"created_at":..,"topic":..}
    <dir>/retweets.jsonl   {"user":..,"tweet":..,"time":..}
    <dir>/meta.json        {"format": 1, counts...}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet, Tweet, User
from repro.exceptions import DatasetError

__all__ = ["save_dataset", "load_dataset"]

FORMAT_VERSION = 1


def save_dataset(dataset: TwitterDataset, directory: str | Path) -> Path:
    """Write ``dataset`` under ``directory`` (created if needed)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    with open(path / "users.jsonl", "w", encoding="utf-8") as f:
        for user in dataset.users.values():
            record = {
                "id": user.id,
                "community": user.community,
                "interests": list(user.interests),
            }
            f.write(json.dumps(record) + "\n")
    with open(path / "follows.jsonl", "w", encoding="utf-8") as f:
        for follower, followee, _ in dataset.follow_graph.edges():
            f.write(json.dumps({"follower": follower, "followee": followee}) + "\n")
    with open(path / "tweets.jsonl", "w", encoding="utf-8") as f:
        for tweet in dataset.tweets.values():
            record = {
                "id": tweet.id,
                "author": tweet.author,
                "created_at": tweet.created_at,
                "topic": tweet.topic,
            }
            f.write(json.dumps(record) + "\n")
    with open(path / "retweets.jsonl", "w", encoding="utf-8") as f:
        for retweet in dataset.retweets():
            record = {
                "user": retweet.user,
                "tweet": retweet.tweet,
                "time": retweet.time,
            }
            f.write(json.dumps(record) + "\n")
    meta = {
        "format": FORMAT_VERSION,
        "users": dataset.user_count,
        "tweets": dataset.tweet_count,
        "retweets": dataset.retweet_count,
        "follow_edges": dataset.follow_graph.edge_count,
    }
    with open(path / "meta.json", "w", encoding="utf-8") as f:
        json.dump(meta, f, indent=2)
    return path


def _read_jsonl(path: Path) -> Iterator[dict]:
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetError(f"{path}:{line_no}: invalid JSON") from exc


def load_dataset(directory: str | Path) -> TwitterDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(directory)
    meta_path = path / "meta.json"
    if not meta_path.exists():
        raise DatasetError(f"{path} is not a dataset directory (no meta.json)")
    with open(meta_path, encoding="utf-8") as f:
        meta = json.load(f)
    if meta.get("format") != FORMAT_VERSION:
        raise DatasetError(
            f"unsupported dataset format {meta.get('format')!r}, "
            f"expected {FORMAT_VERSION}"
        )
    dataset = TwitterDataset()
    for record in _read_jsonl(path / "users.jsonl"):
        dataset.add_user(
            User(
                id=record["id"],
                community=record.get("community", 0),
                interests=tuple(record.get("interests", ())),
            )
        )
    for record in _read_jsonl(path / "follows.jsonl"):
        dataset.add_follow(record["follower"], record["followee"])
    for record in _read_jsonl(path / "tweets.jsonl"):
        dataset.add_tweet(
            Tweet(
                id=record["id"],
                author=record["author"],
                created_at=record["created_at"],
                topic=record.get("topic", -1),
            )
        )
    for record in _read_jsonl(path / "retweets.jsonl"):
        dataset.add_retweet(
            Retweet(user=record["user"], tweet=record["tweet"], time=record["time"])
        )
    expected = (meta["users"], meta["tweets"], meta["retweets"])
    actual = (dataset.user_count, dataset.tweet_count, dataset.retweet_count)
    if expected != actual:
        raise DatasetError(
            f"meta counts {expected} disagree with loaded data {actual}"
        )
    return dataset
