"""Configuration of the synthetic Twitter generator.

Defaults are calibrated so that a generated corpus reproduces the *shapes*
the paper measures on its 2.2M-user crawl (§3):

* heavy-tailed in/out degrees with a small-world follow graph,
* ~90% of tweets never retweeted, popularity power law above that,
* 40% of retweeted tweets dead before 1 hour, ~90% before 72 hours,
* retweet counts per user spanning the paper's low / moderate / intensive
  strata,
* homophily: retweet profiles correlated with network distance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigError

__all__ = ["SynthConfig"]

HOUR = 3600.0
DAY = 24 * HOUR


@dataclass(frozen=True)
class SynthConfig:
    """All knobs of the synthetic dataset generator.

    The default values generate a laptop-scale corpus (1,000 users) in a
    few seconds; benchmarks scale ``n_users`` up.
    """

    # ------------------------------------------------------------------
    # Population and interests
    # ------------------------------------------------------------------
    n_users: int = 1000
    n_communities: int = 12
    n_topics: int = 24
    #: Mass an interest vector concentrates on its community's home topics.
    interest_concentration: float = 0.75
    #: Number of home topics per community.
    topics_per_community: int = 3

    # ------------------------------------------------------------------
    # Follow graph
    # ------------------------------------------------------------------
    #: Zipf exponent of the out-degree (followee count) distribution.
    out_degree_alpha: float = 1.6
    min_out_degree: int = 3
    max_out_degree: int = 150
    #: Probability that a follow edge stays inside the community.
    community_bias: float = 0.7

    # ------------------------------------------------------------------
    # Publication activity
    # ------------------------------------------------------------------
    #: Length of the simulated observation window.
    time_span: float = 60 * DAY
    #: Zipf exponent of tweets-published-per-user.
    tweets_alpha: float = 1.3
    min_tweets_per_user: int = 1
    max_tweets_per_user: int = 120

    # ------------------------------------------------------------------
    # Retweet cascades
    # ------------------------------------------------------------------
    #: Baseline probability that an exposed, interest-matched follower
    #: retweets. Effective probability is scaled by interest alignment,
    #: tweet virality and depth decay.
    base_retweet_rate: float = 0.02
    #: Pareto tail index of the per-tweet virality multiplier; smaller
    #: values produce more extreme hits.
    virality_tail: float = 2.2
    #: Multiplicative decay of retweet probability per cascade hop.
    depth_decay: float = 0.55
    #: Hard cap on a single cascade (guards pathological blow-ups).
    max_cascade_size: int = 2000
    #: Log-normal parameters of the parent->child retweet delay, seconds.
    #: Defaults give a median delay of ~55 minutes with a heavy tail,
    #: so ~40% of single-retweet tweets die before one hour and ~90%
    #: of cascades end before 72 hours (paper Fig. 4).
    delay_log_mean: float = 8.6
    delay_log_sigma: float = 2.2
    #: Exposures later than this after publication never convert. Set
    #: well beyond the paper's 72-hour relevance horizon so the horizon is
    #: an emergent property of the delay distribution, not a hard cut.
    max_lifetime: float = 240 * HOUR
    #: Mean number of *out-of-network* users exposed per sharer via the
    #: discovery channel (search, trends, external links).  Twitter
    #: cascades are not purely follower-driven: the paper's Table 2 finds
    #: 51% of similar user pairs at network distance 3, which only happens
    #: when co-retweeting does not require a follow path.  Discovery
    #: exposures target users with high interest in the tweet's topic.
    discovery_mean: float = 6.0
    #: Minimum topic alignment for a user to be reachable via discovery.
    #: 0.0 means exposure is broad (anyone can stumble on a trending
    #: tweet) while conversion stays interest-gated — which plants the
    #: similar-but-unconnected co-retweeters of the paper's Table 2.
    discovery_min_alignment: float = 0.0

    # ------------------------------------------------------------------
    # Reproducibility
    # ------------------------------------------------------------------
    seed: int = 42

    def __post_init__(self) -> None:
        checks: list[tuple[bool, str]] = [
            (self.n_users >= 2, "n_users must be at least 2"),
            (self.n_communities >= 1, "n_communities must be at least 1"),
            (self.n_communities <= self.n_users,
             "n_communities cannot exceed n_users"),
            (self.n_topics >= self.topics_per_community,
             "n_topics must cover topics_per_community"),
            (0.0 < self.interest_concentration <= 1.0,
             "interest_concentration must be in (0, 1]"),
            (self.out_degree_alpha > 0, "out_degree_alpha must be positive"),
            (1 <= self.min_out_degree <= self.max_out_degree,
             "out-degree bounds must satisfy 1 <= min <= max"),
            (0.0 <= self.community_bias <= 1.0,
             "community_bias must be in [0, 1]"),
            (self.time_span > 0, "time_span must be positive"),
            (self.tweets_alpha > 0, "tweets_alpha must be positive"),
            (1 <= self.min_tweets_per_user <= self.max_tweets_per_user,
             "tweet count bounds must satisfy 1 <= min <= max"),
            (0.0 < self.base_retweet_rate <= 1.0,
             "base_retweet_rate must be in (0, 1]"),
            (self.virality_tail > 1.0, "virality_tail must exceed 1"),
            (0.0 < self.depth_decay <= 1.0, "depth_decay must be in (0, 1]"),
            (self.max_cascade_size >= 1, "max_cascade_size must be >= 1"),
            (self.delay_log_sigma > 0, "delay_log_sigma must be positive"),
            (self.max_lifetime > 0, "max_lifetime must be positive"),
            (self.discovery_mean >= 0, "discovery_mean must be non-negative"),
            (0.0 <= self.discovery_min_alignment <= 1.0,
             "discovery_min_alignment must be in [0, 1]"),
            (self.seed >= 0, "seed must be non-negative"),
        ]
        for ok, message in checks:
            if not ok:
                raise ConfigError(message)

    def scaled(self, **overrides: object) -> "SynthConfig":
        """Return a copy with ``overrides`` applied (validation re-runs)."""
        from dataclasses import asdict

        params = asdict(self)
        params.update(overrides)
        return SynthConfig(**params)  # type: ignore[arg-type]
