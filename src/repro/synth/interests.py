"""Latent interest model behind the synthetic homophily.

Each community owns a small set of "home" topics; each member's interest
vector concentrates most of its mass on those topics with Dirichlet noise
spread over the rest.  A tweet's topic is drawn from its author's interest
vector, and an exposed user's conversion probability is proportional to
their own weight on that topic — so users of one community co-retweet the
same content, which is precisely the homophily signal (§3.2) the SimGraph
construction exploits.
"""

from __future__ import annotations

import numpy as np

from repro.synth.config import SynthConfig
from repro.utils.rng import make_rng

__all__ = ["InterestModel"]


class InterestModel:
    """Community assignments and per-user topic-interest vectors."""

    def __init__(
        self,
        config: SynthConfig,
        rng: int | np.random.Generator | None = None,
    ):
        self.config = config
        rng = make_rng(rng)
        self.communities = self._assign_communities(rng)
        self._home_topics = self._assign_home_topics(rng)
        self.interest_matrix = self._build_interests(rng)

    def _assign_communities(self, rng: np.random.Generator) -> np.ndarray:
        """Zipf-ish community sizes: a few big communities, many small."""
        cfg = self.config
        weights = 1.0 / np.arange(1, cfg.n_communities + 1, dtype=np.float64)
        weights /= weights.sum()
        labels = rng.choice(cfg.n_communities, size=cfg.n_users, p=weights)
        # Guarantee every community has at least one member so downstream
        # per-community structures are never empty.
        for community in range(cfg.n_communities):
            if not (labels == community).any():
                labels[int(rng.integers(cfg.n_users))] = community
        return labels

    def _assign_home_topics(self, rng: np.random.Generator) -> list[np.ndarray]:
        cfg = self.config
        return [
            rng.choice(cfg.n_topics, size=cfg.topics_per_community, replace=False)
            for _ in range(cfg.n_communities)
        ]

    def _build_interests(self, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        matrix = np.empty((cfg.n_users, cfg.n_topics), dtype=np.float64)
        for user in range(cfg.n_users):
            community = int(self.communities[user])
            home = self._home_topics[community]
            vector = rng.dirichlet(np.full(cfg.n_topics, 0.3))
            vector *= 1.0 - cfg.interest_concentration
            home_mass = rng.dirichlet(np.full(len(home), 1.0))
            vector[home] += cfg.interest_concentration * home_mass
            matrix[user] = vector / vector.sum()
        return matrix

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def community_of(self, user: int) -> int:
        """Community label of ``user``."""
        return int(self.communities[user])

    def home_topics(self, community: int) -> np.ndarray:
        """Home topics of ``community``."""
        return self._home_topics[community]

    def interests_of(self, user: int) -> np.ndarray:
        """Topic-interest vector of ``user`` (sums to 1)."""
        return self.interest_matrix[user]

    def draw_topic(self, user: int, rng: np.random.Generator) -> int:
        """Sample a tweet topic from ``user``'s interest vector."""
        return int(rng.choice(self.config.n_topics, p=self.interest_matrix[user]))

    def alignment(self, user: int, topic: int) -> float:
        """Interest of ``user`` in ``topic``, normalized to [0, 1].

        The raw interest weight is divided by the uniform weight
        ``1/n_topics`` and clipped, so 1.0 means "at least average
        interest" and small values mean the topic is foreign to the user.
        """
        uniform = 1.0 / self.config.n_topics
        return float(min(self.interest_matrix[user, topic] / uniform, 1.0))
