"""Follow-graph generation for the synthetic corpus.

Thin orchestration over :func:`repro.graph.generators.
community_preferential_graph`: sample zipf out-degrees, then wire edges
with community bias so the graph is simultaneously heavy-tailed,
small-world and homophilous.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.generators import community_preferential_graph
from repro.synth.config import SynthConfig
from repro.utils.powerlaw import sample_bounded_zipf
from repro.utils.rng import make_rng

__all__ = ["build_follow_graph"]


def build_follow_graph(
    config: SynthConfig,
    communities: np.ndarray,
    rng: int | np.random.Generator | None = None,
) -> DiGraph:
    """Generate the follow graph for ``config`` and ``communities``.

    Out-degrees are bounded-zipf samples (capped at ``n_users - 1``); the
    edge-wiring combines preferential attachment with community bias.
    """
    rng = make_rng(rng)
    max_degree = min(config.max_out_degree, config.n_users - 1)
    min_degree = min(config.min_out_degree, max_degree)
    out_degrees = sample_bounded_zipf(
        rng,
        alpha=config.out_degree_alpha,
        x_min=min_degree,
        x_max=max_degree,
        size=config.n_users,
    )
    return community_preferential_graph(
        out_degrees=out_degrees,
        communities=[int(c) for c in communities],
        community_bias=config.community_bias,
        seed=rng,
    )
