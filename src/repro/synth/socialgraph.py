"""Follow-graph generation for the synthetic corpus.

Thin orchestration over :func:`repro.graph.generators.
community_preferential_graph`: sample zipf out-degrees, then wire edges
with community bias so the graph is simultaneously heavy-tailed,
small-world and homophilous.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.generators import community_preferential_graph
from repro.synth.config import SynthConfig
from repro.utils.powerlaw import sample_bounded_zipf
from repro.utils.rng import make_rng

__all__ = ["build_follow_graph", "sample_follow_edges"]


def build_follow_graph(
    config: SynthConfig,
    communities: np.ndarray,
    rng: int | np.random.Generator | None = None,
) -> DiGraph:
    """Generate the follow graph for ``config`` and ``communities``.

    Out-degrees are bounded-zipf samples (capped at ``n_users - 1``); the
    edge-wiring combines preferential attachment with community bias.
    """
    rng = make_rng(rng)
    max_degree = min(config.max_out_degree, config.n_users - 1)
    min_degree = min(config.min_out_degree, max_degree)
    out_degrees = sample_bounded_zipf(
        rng,
        alpha=config.out_degree_alpha,
        x_min=min_degree,
        x_max=max_degree,
        size=config.n_users,
    )
    return community_preferential_graph(
        out_degrees=out_degrees,
        communities=[int(c) for c in communities],
        community_bias=config.community_bias,
        seed=rng,
    )


def sample_follow_edges(
    out_degrees: np.ndarray,
    communities: np.ndarray,
    community_bias: float,
    rng: np.random.Generator,
    attractiveness_tail: float = 0.8,
) -> tuple[np.ndarray, np.ndarray]:
    """Array-scale follow-edge sampler: ``(follow_src, follow_dst)``.

    The paper-scale counterpart of :func:`repro.graph.generators.
    community_preferential_graph`.  The loop version grows preferential
    weight edge by edge — O(edges) Python-level draws, minutes at a
    million users.  Here each node instead gets a *static* Zipf
    attractiveness ``(rank + 1) ** -attractiveness_tail`` over a random
    rank permutation (a Chung-Lu-style stand-in for preferential
    attachment: the realized in-degree distribution has the same
    heavy-tailed shape, without the sequential dependence), and all
    edges are drawn at once with cumulative-weight binary search —
    community-biased exactly like the loop version.  Self-loops and
    duplicate pairs are dropped afterwards, so realized out-degree can
    fall slightly short of target, matching the loop version's caveat.
    """
    n = len(out_degrees)
    out_degrees = np.asarray(out_degrees, dtype=np.int64)
    communities = np.asarray(communities, dtype=np.int64)
    total = int(out_degrees.sum())
    if n <= 1 or total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    src = np.repeat(np.arange(n, dtype=np.int64), out_degrees)
    weights = (rng.permutation(n).astype(np.float64) + 1.0) ** (
        -attractiveness_tail
    )

    dst = np.empty(total, dtype=np.int64)
    in_community = rng.random(total) < community_bias

    global_cum = np.cumsum(weights)
    n_global = int((~in_community).sum())
    if n_global:
        draws = rng.random(n_global) * global_cum[-1]
        dst[~in_community] = np.minimum(
            np.searchsorted(global_cum, draws, side="right"), n - 1
        )

    member_order = np.argsort(communities, kind="stable")
    member_sorted = communities[member_order]
    boundaries = np.searchsorted(
        member_sorted, np.arange(communities.max() + 2)
    )
    biased = np.flatnonzero(in_community)
    biased_comm = communities[src[biased]]
    for label in np.unique(biased_comm):
        members = member_order[boundaries[label] : boundaries[label + 1]]
        lane = biased[biased_comm == label]
        if len(members) == 0 or len(lane) == 0:
            continue
        cum = np.cumsum(weights[members])
        draws = rng.random(len(lane)) * cum[-1]
        picks = np.minimum(
            np.searchsorted(cum, draws, side="right"), len(members) - 1
        )
        dst[lane] = members[picks]

    keep = src != dst
    src, dst = src[keep], dst[keep]
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    fresh = np.empty(len(src), dtype=bool)
    if len(src):
        fresh[0] = True
        np.logical_or(
            src[1:] != src[:-1], dst[1:] != dst[:-1], out=fresh[1:]
        )
    return src[fresh], dst[fresh]
