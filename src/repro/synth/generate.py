"""One-stop synthetic dataset generation.

``generate_dataset(SynthConfig(...))`` wires the three synthesis stages —
interest model, follow graph, activity simulation — into a validated
:class:`~repro.data.dataset.TwitterDataset`.
"""

from __future__ import annotations

from repro.data.dataset import TwitterDataset
from repro.data.models import User
from repro.synth.activity import simulate_activity
from repro.synth.config import SynthConfig
from repro.synth.interests import InterestModel
from repro.synth.socialgraph import build_follow_graph
from repro.utils.rng import SeedSequenceFactory

__all__ = ["generate_dataset"]


def generate_dataset(config: SynthConfig | None = None) -> TwitterDataset:
    """Generate a synthetic Twitter-like dataset from ``config``.

    Determinism: the whole corpus is a pure function of ``config`` (its
    ``seed`` feeds named per-stage RNG streams, so e.g. enlarging the time
    span does not reshuffle the follow graph).
    """
    if config is None:
        config = SynthConfig()
    seeds = SeedSequenceFactory(config.seed)
    interests = InterestModel(config, rng=seeds.generator("interests"))
    follow_graph = build_follow_graph(
        config, interests.communities, rng=seeds.generator("socialgraph")
    )
    tweets, retweets = simulate_activity(
        config, interests, follow_graph, rng=seeds.generator("activity")
    )

    dataset = TwitterDataset()
    for user_id in range(config.n_users):
        dataset.add_user(
            User(
                id=user_id,
                community=interests.community_of(user_id),
                interests=tuple(
                    round(float(w), 6) for w in interests.interests_of(user_id)
                ),
            )
        )
    for follower, followee, _ in follow_graph.edges():
        dataset.add_follow(follower, followee)
    for tweet in tweets:
        dataset.add_tweet(tweet)
    for retweet in sorted(retweets, key=lambda r: (r.time, r.user, r.tweet)):
        dataset.add_retweet(retweet)
    dataset.validate()
    return dataset
