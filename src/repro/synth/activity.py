"""Publication and retweet-cascade simulation.

Produces the behavioural side of the synthetic corpus.  The design goals
are the paper's §3 measurements:

* **popularity power law** (Fig. 2): each tweet carries a Pareto-tailed
  *virality* multiplier, so most cascades die immediately while a few
  blow up;
* **short lifetimes** (Fig. 4): parent->child retweet delays are
  log-normal with a ~20-minute median and exposures beyond the 72-hour
  horizon never convert;
* **heavy-tailed user activity** (Fig. 3): exposure volume follows the
  zipf out-degree of the follow graph;
* **homophily** (§3.2): conversion probability is proportional to the
  exposed user's interest in the tweet's topic, which correlates with
  community membership and therefore with network distance.

Cascades run breadth-first over the *followers* of each sharer — content
flows from followees to followers, against the direction of follow edges —
plus a *discovery channel*: each sharer also exposes a few topically
-affine users anywhere in the network (search, trends, external links).
Without it every co-retweet would require a follow path, making follow
edges unrealistically predictive; with it, similar-but-unconnected users
co-retweet, reproducing the paper's Table-2 finding that half the similar
pairs sit at network distance 3.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.data.models import Retweet, Tweet
from repro.graph.digraph import DiGraph
from repro.synth.config import SynthConfig
from repro.synth.interests import InterestModel
from repro.utils.powerlaw import sample_bounded_zipf
from repro.utils.rng import make_rng

__all__ = ["simulate_activity", "simulate_cascade"]


def simulate_activity(
    config: SynthConfig,
    interests: InterestModel,
    follow_graph: DiGraph,
    rng: int | np.random.Generator | None = None,
) -> tuple[list[Tweet], list[Retweet]]:
    """Simulate the full observation window.

    Returns the list of published tweets and the chronologically *unsorted*
    list of retweet actions (the dataset container sorts on demand).
    """
    rng = make_rng(rng)
    tweets_per_user = sample_bounded_zipf(
        rng,
        alpha=config.tweets_alpha,
        x_min=config.min_tweets_per_user,
        x_max=config.max_tweets_per_user,
        size=config.n_users,
    )
    followers = _follower_arrays(follow_graph, config.n_users)
    alignment = np.minimum(interests.interest_matrix * config.n_topics, 1.0)
    topic_pools = _topic_pools(alignment, config.discovery_min_alignment)

    tweets: list[Tweet] = []
    retweets: list[Retweet] = []
    tweet_id = 0
    for author in range(config.n_users):
        creation_times = np.sort(
            rng.uniform(0.0, config.time_span, size=int(tweets_per_user[author]))
        )
        for created_at in creation_times:
            topic = interests.draw_topic(author, rng)
            tweet = Tweet(
                id=tweet_id, author=author, created_at=float(created_at),
                topic=topic,
            )
            tweets.append(tweet)
            tweet_id += 1
            retweets.extend(
                simulate_cascade(
                    tweet, config, followers, alignment, rng,
                    topic_pools=topic_pools,
                )
            )
    return tweets, retweets


def simulate_cascade(
    tweet: Tweet,
    config: SynthConfig,
    followers: dict[int, np.ndarray],
    alignment: np.ndarray,
    rng: np.random.Generator,
    topic_pools: dict[int, np.ndarray] | None = None,
) -> list[Retweet]:
    """Simulate the retweet cascade of one tweet.

    Each user gets a single conversion draw per cascade (their first
    exposure); sharers expose their own followers — plus a Poisson-sized
    sample of topically-affine *discovery* users when ``topic_pools`` is
    given — one hop deeper, with the conversion probability decayed by
    ``depth_decay``.
    """
    virality = _draw_virality(rng, config.virality_tail)
    horizon = tweet.created_at + config.max_lifetime
    attempted: set[int] = {tweet.author}
    actions: list[Retweet] = []
    pool = topic_pools.get(tweet.topic) if topic_pools else None
    # Queue of (sharer, share_time, depth of *their* followers).
    queue: deque[tuple[int, float, int]] = deque([(tweet.author, tweet.created_at, 0)])
    while queue and len(actions) < config.max_cascade_size:
        sharer, share_time, depth = queue.popleft()
        audience = followers.get(sharer, _EMPTY)
        if pool is not None and pool.size and config.discovery_mean > 0:
            n_discovery = int(rng.poisson(config.discovery_mean))
            if n_discovery > 0:
                discovered = pool[rng.integers(pool.size, size=n_discovery)]
                audience = np.concatenate([audience, discovered])
        if audience.size == 0:
            continue
        audience = np.unique(audience)
        fresh_mask = np.fromiter(
            (u not in attempted for u in audience), dtype=bool, count=audience.size
        )
        if not fresh_mask.any():
            continue
        candidates = audience[fresh_mask]
        attempted.update(int(u) for u in candidates)
        probs = (
            config.base_retweet_rate
            * virality
            * alignment[candidates, tweet.topic]
            * config.depth_decay**depth
        )
        np.clip(probs, 0.0, 0.95, out=probs)
        converted = candidates[rng.random(candidates.size) < probs]
        if converted.size == 0:
            continue
        delays = rng.lognormal(
            config.delay_log_mean, config.delay_log_sigma, size=converted.size
        )
        for user, delay in zip(converted, delays):
            share_at = share_time + float(delay)
            if share_at > horizon or share_at > config.time_span:
                continue
            actions.append(Retweet(user=int(user), tweet=tweet.id, time=share_at))
            queue.append((int(user), share_at, depth + 1))
            if len(actions) >= config.max_cascade_size:
                break
    return actions


_EMPTY = np.empty(0, dtype=np.int64)


def _topic_pools(
    alignment: np.ndarray, min_alignment: float
) -> dict[int, np.ndarray]:
    """Per topic, the users reachable through the discovery channel."""
    pools: dict[int, np.ndarray] = {}
    for topic in range(alignment.shape[1]):
        pools[topic] = np.flatnonzero(
            alignment[:, topic] >= min_alignment
        ).astype(np.int64)
    return pools


def _follower_arrays(
    follow_graph: DiGraph, n_users: int
) -> dict[int, np.ndarray]:
    """Precompute each user's follower list as an index array."""
    return {
        user: np.fromiter(
            follow_graph.predecessors(user),
            dtype=np.int64,
            count=follow_graph.in_degree(user),
        )
        for user in range(n_users)
        if user in follow_graph and follow_graph.in_degree(user) > 0
    }


def _draw_virality(rng: np.random.Generator, tail: float) -> float:
    """Pareto(x_min=1) virality multiplier with tail index ``tail``."""
    return float((1.0 - rng.random()) ** (-1.0 / tail))
