"""Chunked, array-scale synthetic corpus generation.

:func:`repro.synth.generate.generate_dataset` materializes every entity
as a Python object and tops out around tens of thousands of users.  This
module generates the same *kind* of corpus — homophilous interests,
heavy-tailed follow graph, cascade-driven retweets — at paper scale
(ROADMAP item 1: the crawl is 2.2M users):

* the static frame (communities, interest alignment, follow CSR, tweet
  columns) is built fully vectorized in a few flat arrays;
* retweets are *streamed* in time-ordered chunks
  (:class:`SynthChunk`), never holding the full log in RAM.

Chunking correctness rests on one invariant: every cascade event of a
tweet happens at or after the tweet's creation time, and tweets are
processed in creation order.  So when the generator reaches a tweet
created at ``t``, every pending event with ``time < t`` is final — no
future tweet can emit an earlier one — and whole windows below ``t``
can be flushed, sorted, as chunks.  The pending buffer is bounded by
the events inside one ``max_lifetime`` horizon, not the corpus.

Determinism: output is a pure function of the config (same named seed
streams as the object generator), but the vectorized algorithms draw in
a different order, so a chunked corpus is *statistically* — not
bitwise — equivalent to :func:`generate_dataset`'s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.columnar import ColumnarDataset
from repro.synth.activity import simulate_cascade
from repro.synth.config import DAY, SynthConfig
from repro.synth.socialgraph import sample_follow_edges
from repro.utils.powerlaw import sample_bounded_zipf
from repro.utils.rng import SeedSequenceFactory

__all__ = ["ChunkedGenerator", "CorpusFrame", "SynthChunk",
           "generate_dataset_chunked"]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class SynthChunk:
    """One time window of the retweet stream (columns, chronological)."""

    start: float
    end: float
    users: np.ndarray
    tweets: np.ndarray
    times: np.ndarray

    def __len__(self) -> int:
        return len(self.users)


@dataclass(frozen=True)
class CorpusFrame:
    """The static (non-stream) part of a chunked corpus, as columns."""

    communities: np.ndarray  # int32, per user
    alignment: np.ndarray  # float32, users x topics, in [0, 1]
    follow_src: np.ndarray  # int64 follower ids
    follow_dst: np.ndarray  # int64 followee ids
    tweet_ids: np.ndarray  # int64, creation-time order
    tweet_authors: np.ndarray  # int64
    tweet_times: np.ndarray  # float64, non-decreasing
    tweet_topics: np.ndarray  # int32

    @property
    def n_users(self) -> int:
        return len(self.communities)


class _CSRFollowers:
    """``followers.get(user)`` adapter over the reverse-follow CSR.

    :func:`simulate_cascade` looks followers up through a mapping
    interface; this serves zero-copy CSR row views instead of per-user
    arrays in a dict.
    """

    __slots__ = ("indptr", "sources")

    def __init__(self, src: np.ndarray, dst: np.ndarray, n: int):
        order = np.lexsort((src, dst))
        keys = dst[order]
        self.sources = np.ascontiguousarray(src[order])
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        unique, counts = np.unique(keys, return_counts=True)
        self.indptr[unique + 1] = counts
        np.cumsum(self.indptr, out=self.indptr)

    def get(self, user: int, default: np.ndarray = _EMPTY_I64) -> np.ndarray:
        row = self.sources[self.indptr[user] : self.indptr[user + 1]]
        return row if len(row) else default


class ChunkedGenerator:
    """Streamed synthetic corpus: a static frame + time-ordered chunks.

    ``window`` sets the chunk granularity (seconds of simulated time per
    chunk); chunks with no events are skipped.
    """

    def __init__(self, config: SynthConfig | None = None, window: float = DAY):
        if config is None:
            config = SynthConfig()
        if window <= 0:
            raise ValueError("window must be positive")
        self.config = config
        self.window = float(window)
        self._seeds = SeedSequenceFactory(config.seed)
        self.frame = self._build_frame()

    # ------------------------------------------------------------------
    # Static frame (vectorized)
    # ------------------------------------------------------------------
    def _build_frame(self) -> CorpusFrame:
        cfg = self.config
        interests_rng = self._seeds.generator("interests")
        communities = self._assign_communities(interests_rng)
        alignment = self._build_alignment(interests_rng, communities)

        social_rng = self._seeds.generator("socialgraph")
        max_degree = min(cfg.max_out_degree, cfg.n_users - 1)
        min_degree = min(cfg.min_out_degree, max_degree)
        out_degrees = sample_bounded_zipf(
            social_rng,
            alpha=cfg.out_degree_alpha,
            x_min=min_degree,
            x_max=max_degree,
            size=cfg.n_users,
        )
        follow_src, follow_dst = sample_follow_edges(
            out_degrees, communities, cfg.community_bias, social_rng
        )

        activity_rng = self._seeds.generator("activity")
        tweets_per_user = sample_bounded_zipf(
            activity_rng,
            alpha=cfg.tweets_alpha,
            x_min=cfg.min_tweets_per_user,
            x_max=cfg.max_tweets_per_user,
            size=cfg.n_users,
        )
        n_tweets = int(tweets_per_user.sum())
        authors = np.repeat(
            np.arange(cfg.n_users, dtype=np.int64), tweets_per_user
        )
        times = activity_rng.uniform(0.0, cfg.time_span, size=n_tweets)
        order = np.argsort(times, kind="stable")
        authors = authors[order]
        times = times[order]
        topics = self._draw_topics(activity_rng, alignment, communities, authors)
        self._cascade_rng = activity_rng

        return CorpusFrame(
            communities=communities.astype(np.int32),
            alignment=alignment,
            follow_src=follow_src,
            follow_dst=follow_dst,
            tweet_ids=np.arange(n_tweets, dtype=np.int64),
            tweet_authors=authors,
            tweet_times=times,
            tweet_topics=topics.astype(np.int32),
        )

    def _assign_communities(self, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        weights = 1.0 / np.arange(1, cfg.n_communities + 1, dtype=np.float64)
        weights /= weights.sum()
        labels = rng.choice(cfg.n_communities, size=cfg.n_users, p=weights)
        present = np.zeros(cfg.n_communities, dtype=bool)
        present[np.unique(labels)] = True
        for community in np.flatnonzero(~present):
            labels[int(rng.integers(cfg.n_users))] = community
        return labels.astype(np.int64)

    def _build_alignment(
        self, rng: np.random.Generator, communities: np.ndarray
    ) -> np.ndarray:
        """Interest alignment matrix, vectorized and float32.

        Same model as :class:`~repro.synth.interests.InterestModel` —
        Dirichlet background plus concentrated mass on the community's
        home topics — but drawn as gamma matrices (a Dirichlet row is a
        normalized gamma row) instead of a million per-user calls, and
        collapsed straight to the ``min(interest * n_topics, 1)``
        alignment the cascades consume.
        """
        cfg = self.config
        home = np.stack(
            [
                rng.choice(
                    cfg.n_topics, size=cfg.topics_per_community, replace=False
                )
                for _ in range(cfg.n_communities)
            ]
        )
        matrix = rng.gamma(0.3, size=(cfg.n_users, cfg.n_topics)).astype(
            np.float32
        )
        matrix /= np.maximum(matrix.sum(axis=1, keepdims=True), 1e-20)
        matrix *= 1.0 - cfg.interest_concentration
        home_mass = rng.gamma(
            1.0, size=(cfg.n_users, cfg.topics_per_community)
        ).astype(np.float32)
        home_mass /= np.maximum(home_mass.sum(axis=1, keepdims=True), 1e-20)
        rows = np.repeat(
            np.arange(cfg.n_users, dtype=np.int64), cfg.topics_per_community
        )
        cols = home[communities].ravel()
        np.add.at(
            matrix,
            (rows, cols),
            (cfg.interest_concentration * home_mass).ravel(),
        )
        matrix /= matrix.sum(axis=1, keepdims=True)
        return np.minimum(matrix * cfg.n_topics, 1.0)

    def _draw_topics(
        self,
        rng: np.random.Generator,
        alignment: np.ndarray,
        communities: np.ndarray,
        authors: np.ndarray,
        block: int = 131072,
    ) -> np.ndarray:
        """Sample each tweet's topic from its author's interest vector.

        Inverse-CDF over the (re-normalized) alignment rows, in blocks
        so the cumulative matrix never exceeds a few MB.
        """
        topics = np.empty(len(authors), dtype=np.int64)
        draws = rng.random(len(authors))
        for lo in range(0, len(authors), block):
            hi = min(lo + block, len(authors))
            rows = alignment[authors[lo:hi]].astype(np.float64)
            rows /= rows.sum(axis=1, keepdims=True)
            cum = np.cumsum(rows, axis=1)
            topics[lo:hi] = np.minimum(
                (cum < draws[lo:hi, None]).sum(axis=1),
                alignment.shape[1] - 1,
            )
        return topics

    # ------------------------------------------------------------------
    # The stream
    # ------------------------------------------------------------------
    def chunks(self) -> Iterator[SynthChunk]:
        """Yield the retweet log as time-ordered :class:`SynthChunk`s.

        Single-shot: cascade randomness is consumed as the stream
        advances (build a fresh generator to replay).
        """
        cfg = self.config
        frame = self.frame
        rng = self._cascade_rng
        followers = _CSRFollowers(
            frame.follow_src, frame.follow_dst, cfg.n_users
        )
        if cfg.discovery_min_alignment <= 0.0:
            everyone = np.arange(cfg.n_users, dtype=np.int64)
            topic_pools = {t: everyone for t in range(cfg.n_topics)}
        else:
            topic_pools = {
                t: np.flatnonzero(
                    frame.alignment[:, t] >= cfg.discovery_min_alignment
                ).astype(np.int64)
                for t in range(cfg.n_topics)
            }

        pending_users: list[np.ndarray] = []
        pending_tweets: list[np.ndarray] = []
        pending_times: list[np.ndarray] = []
        flushed_until = 0.0

        tweet = _TweetView()
        for i in range(len(frame.tweet_ids)):
            created = float(frame.tweet_times[i])
            while created >= flushed_until + self.window:
                chunk = self._drain(
                    pending_users, pending_tweets, pending_times,
                    flushed_until, flushed_until + self.window,
                )
                flushed_until += self.window
                if chunk is not None:
                    yield chunk
            tweet.id = int(frame.tweet_ids[i])
            tweet.author = int(frame.tweet_authors[i])
            tweet.created_at = created
            tweet.topic = int(frame.tweet_topics[i])
            actions = simulate_cascade(
                tweet, cfg, followers, frame.alignment, rng,
                topic_pools=topic_pools,
            )
            if actions:
                pending_users.append(
                    np.fromiter((a.user for a in actions), dtype=np.int64,
                                count=len(actions))
                )
                pending_tweets.append(
                    np.full(len(actions), tweet.id, dtype=np.int64)
                )
                pending_times.append(
                    np.fromiter((a.time for a in actions), dtype=np.float64,
                                count=len(actions))
                )
        # Everything left is final; flush window by window to the end.
        while pending_users:
            chunk = self._drain(
                pending_users, pending_tweets, pending_times,
                flushed_until, flushed_until + self.window,
            )
            flushed_until += self.window
            if chunk is not None:
                yield chunk

    @staticmethod
    def _drain(
        pending_users: list[np.ndarray],
        pending_tweets: list[np.ndarray],
        pending_times: list[np.ndarray],
        start: float,
        end: float,
    ) -> SynthChunk | None:
        """Extract the events with ``start <= time < end`` as one chunk."""
        if not pending_users:
            return None
        users = np.concatenate(pending_users)
        tweets = np.concatenate(pending_tweets)
        times = np.concatenate(pending_times)
        inside = times < end
        if not inside.any():
            return None
        pending_users[:] = [users[~inside]] if (~inside).any() else []
        pending_tweets[:] = [tweets[~inside]] if (~inside).any() else []
        pending_times[:] = [times[~inside]] if (~inside).any() else []
        users, tweets, times = users[inside], tweets[inside], times[inside]
        order = np.lexsort((tweets, users, times))
        return SynthChunk(
            start=start, end=end,
            users=users[order], tweets=tweets[order], times=times[order],
        )

    # ------------------------------------------------------------------
    # Convenience sinks
    # ------------------------------------------------------------------
    def to_columnar(self) -> ColumnarDataset:
        """Consume the whole stream into a :class:`ColumnarDataset`."""
        chunks = list(self.chunks())
        frame = self.frame
        return ColumnarDataset(
            user_ids=np.arange(self.config.n_users, dtype=np.int64),
            user_communities=frame.communities,
            follow_src=frame.follow_src,
            follow_dst=frame.follow_dst,
            tweet_ids=frame.tweet_ids,
            tweet_authors=frame.tweet_authors,
            tweet_times=frame.tweet_times,
            tweet_topics=frame.tweet_topics,
            rt_users=(
                np.concatenate([c.users for c in chunks])
                if chunks else _EMPTY_I64
            ),
            rt_tweets=(
                np.concatenate([c.tweets for c in chunks])
                if chunks else _EMPTY_I64
            ),
            rt_times=(
                np.concatenate([c.times for c in chunks])
                if chunks else np.empty(0, dtype=np.float64)
            ),
            check=False,
        )


class _TweetView:
    """Mutable stand-in for :class:`~repro.data.models.Tweet`.

    :func:`simulate_cascade` only reads ``id``/``author``/``created_at``
    /``topic``; reusing one view object avoids allocating millions of
    frozen dataclass instances on the hot path.
    """

    __slots__ = ("id", "author", "created_at", "topic")


def generate_dataset_chunked(
    config: SynthConfig | None = None, window: float = DAY
) -> Iterator[SynthChunk]:
    """Stream a synthetic corpus's retweet log as time-ordered chunks.

    Thin wrapper over :class:`ChunkedGenerator` for consumers that only
    need the event stream; instantiate the class directly when the
    static frame (follow edges, tweet columns) is needed too.
    """
    yield from ChunkedGenerator(config, window=window).chunks()
