"""Synthetic Twitter-like corpus generation (the paper's dataset
substitute): interest model, homophilous follow graph, retweet cascades."""

from repro.synth.activity import simulate_activity, simulate_cascade
from repro.synth.config import SynthConfig
from repro.synth.generate import generate_dataset
from repro.synth.interests import InterestModel
from repro.synth.socialgraph import build_follow_graph, sample_follow_edges
from repro.synth.stream import (
    ChunkedGenerator,
    CorpusFrame,
    SynthChunk,
    generate_dataset_chunked,
)

__all__ = [
    "ChunkedGenerator",
    "CorpusFrame",
    "InterestModel",
    "SynthChunk",
    "SynthConfig",
    "build_follow_graph",
    "generate_dataset",
    "generate_dataset_chunked",
    "sample_follow_edges",
    "simulate_activity",
    "simulate_cascade",
]
