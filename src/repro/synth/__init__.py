"""Synthetic Twitter-like corpus generation (the paper's dataset
substitute): interest model, homophilous follow graph, retweet cascades."""

from repro.synth.activity import simulate_activity, simulate_cascade
from repro.synth.config import SynthConfig
from repro.synth.generate import generate_dataset
from repro.synth.interests import InterestModel
from repro.synth.socialgraph import build_follow_graph

__all__ = [
    "InterestModel",
    "SynthConfig",
    "build_follow_graph",
    "generate_dataset",
    "simulate_activity",
    "simulate_cascade",
]
