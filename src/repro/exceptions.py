"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch any library failure with a single ``except`` clause while still being
able to discriminate specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class GraphError(ReproError):
    """Raised for invalid graph operations (unknown nodes, bad edges...)."""


class DatasetError(ReproError):
    """Raised when a dataset is malformed or an entity lookup fails."""


class ConfigError(ReproError):
    """Raised when a configuration object holds invalid parameter values."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to converge within its budget."""


class EvaluationError(ReproError):
    """Raised when the replay evaluation protocol is violated."""


class ShardError(ReproError):
    """Raised when a shard worker fails, dies or misbehaves mid-request."""
