"""Result aggregation and text rendering of the experiment figures.

Each §6.2 figure is a family of per-method series over the k sweep;
:class:`SweepReport` stores the :class:`~repro.eval.metrics.KMetrics` grid
and renders any metric as an aligned table, one column per method — the
textual equivalent of the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.eval.metrics import KMetrics, overlap_ratio
from repro.utils.tables import render_table

__all__ = ["SweepReport"]


@dataclass
class SweepReport:
    """A metric grid: methods x k values."""

    k_values: list[int]
    #: method name -> one KMetrics per k, aligned with ``k_values``.
    series: dict[str, list[KMetrics]]

    def __post_init__(self) -> None:
        for name, metrics in self.series.items():
            if len(metrics) != len(self.k_values):
                raise ValueError(
                    f"series {name!r} has {len(metrics)} entries for "
                    f"{len(self.k_values)} k values"
                )

    @property
    def methods(self) -> list[str]:
        """Method names in insertion order."""
        return list(self.series)

    def metric_grid(self, attribute: str) -> list[list[object]]:
        """Rows of (k, value per method) for ``attribute`` of KMetrics."""
        rows: list[list[object]] = []
        for i, k in enumerate(self.k_values):
            row: list[object] = [k]
            for name in self.methods:
                row.append(getattr(self.series[name][i], attribute))
            rows.append(row)
        return rows

    def render(self, attribute: str, title: str, precision: int = 4) -> str:
        """Render one metric as an aligned table (a printed figure)."""
        headers = ["k"] + self.methods
        return render_table(
            headers, self.metric_grid(attribute), title=title, precision=precision
        )

    def overlap_with(self, reference: str) -> list[list[object]]:
        """Fig. 13 rows: σ of each method's hits w.r.t. ``reference``."""
        if reference not in self.series:
            raise KeyError(f"unknown reference method {reference!r}")
        rows: list[list[object]] = []
        for i, k in enumerate(self.k_values):
            reference_hits = self.series[reference][i].hit_pairs
            row: list[object] = [k]
            for name in self.methods:
                row.append(
                    overlap_ratio(reference_hits, self.series[name][i].hit_pairs)
                )
            rows.append(row)
        return rows

    def render_overlap(self, reference: str, title: str) -> str:
        """Render the Fig. 13 overlap table."""
        headers = ["k"] + self.methods
        return render_table(headers, self.overlap_with(reference), title=title)

    def best_k(self, attribute: str, method: str) -> int:
        """The k maximizing ``attribute`` for ``method`` (e.g. peak F1)."""
        metrics = self.series[method]
        best = max(range(len(metrics)), key=lambda i: getattr(metrics[i], attribute))
        return self.k_values[best]
