"""Diversity and popularity-bias measurements.

Complements the paper's hit-count metrics with the two questions its
conclusion raises: *how concentrated on popular content is a method?*
(GraphJet's known bias, Fig. 12) and *how varied are the sources a user
hears from?* (the §7 information-bubble concern).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.analysis.bubbles import BubbleMap
from repro.baselines.base import Recommendation

__all__ = ["gini", "popularity_gini", "user_source_entropy"]


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of ``values`` in [0, 1] (0 = perfectly even).

    Standard mean-absolute-difference form over non-negative inputs.
    """
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        return 0.0
    if (arr < 0).any():
        raise ValueError("gini requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, arr.size + 1)
    return float((2.0 * (ranks * arr).sum()) / (arr.size * total) - (arr.size + 1) / arr.size)


def popularity_gini(
    recommendations: Iterable[Recommendation],
    popularity: Callable[[int], int],
) -> float:
    """Gini of the popularity of *distinct recommended tweets*.

    High values mean the method's catalogue is dominated by a few viral
    messages (the GraphJet profile); low values mean it spreads over the
    long tail (the Bayes profile).
    """
    tweets = {rec.tweet for rec in recommendations}
    return gini(float(popularity(t)) for t in tweets)


def user_source_entropy(
    recommendations: Iterable[Recommendation],
    bubbles: BubbleMap,
    tweet_audience: Mapping[int, Iterable[int]],
) -> float:
    """Mean per-user entropy (bits) over the bubbles recommendations
    originate from.

    A tweet's *origin bubble* is the majority bubble of its audience so
    far.  0.0 means every user only ever hears from one bubble; higher
    values mean the §7 "escape" goal is being met.
    """
    origin: dict[int, int] = {}
    for tweet, audience in tweet_audience.items():
        labels = [bubbles.bubble_of(u) for u in audience]
        labels = [b for b in labels if b is not None]
        if labels:
            origin[tweet] = max(set(labels), key=labels.count)
    per_user: dict[int, list[int]] = {}
    for rec in recommendations:
        bubble = origin.get(rec.tweet)
        if bubble is not None:
            per_user.setdefault(rec.user, []).append(bubble)
    if not per_user:
        return 0.0
    entropies = []
    for sources in per_user.values():
        counts: dict[int, int] = {}
        for bubble in sources:
            counts[bubble] = counts.get(bubble, 0) + 1
        total = len(sources)
        entropy = -sum(
            (c / total) * math.log2(c / total) for c in counts.values()
        )
        entropies.append(entropy)
    return float(np.mean(entropies))
