"""Evaluation protocol (§6.1): stratified target selection, temporal
replay, daily budgets, quality metrics, timing harness and reporting."""

from repro.eval.budget import DAY_SECONDS, CapacityModel, apply_daily_budget
from repro.eval.diversity import gini, popularity_gini, user_source_entropy
from repro.eval.metrics import KMetrics, evaluate_at_k, evaluate_sweep, overlap_ratio
from repro.eval.replay import ReplayResult, run_replay
from repro.eval.report import SweepReport
from repro.eval.significance import HitGap, bootstrap_hit_gap, hits_per_user
from repro.eval.targets import TargetSelection, activity_thresholds, select_target_users
from repro.eval.timing import TimingReport, time_method

__all__ = [
    "CapacityModel",
    "DAY_SECONDS",
    "HitGap",
    "KMetrics",
    "ReplayResult",
    "SweepReport",
    "TargetSelection",
    "TimingReport",
    "activity_thresholds",
    "apply_daily_budget",
    "bootstrap_hit_gap",
    "evaluate_at_k",
    "gini",
    "hits_per_user",
    "evaluate_sweep",
    "overlap_ratio",
    "popularity_gini",
    "run_replay",
    "select_target_users",
    "time_method",
    "user_source_entropy",
]
