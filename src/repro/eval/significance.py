"""Statistical support for the method comparisons.

The paper reports point hit counts; a reproduction on a smaller corpus
should say *how sure* it is about who wins.  :func:`bootstrap_hit_gap`
resamples the evaluated users and reports a confidence interval for the
per-user hit-count difference between two methods — paired by user, since
both methods replay the same stream for the same population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["HitGap", "bootstrap_hit_gap", "hits_per_user"]


def hits_per_user(
    hit_pairs: Iterable[tuple[int, int]], users: Iterable[int]
) -> dict[int, int]:
    """Count hits per user over ``users`` (zero-filled)."""
    counts = {user: 0 for user in users}
    for user, _tweet in hit_pairs:
        if user in counts:
            counts[user] += 1
    return counts


@dataclass(frozen=True)
class HitGap:
    """Bootstrap summary of method A's hits minus method B's."""

    mean_difference: float
    ci_low: float
    ci_high: float
    #: Fraction of bootstrap resamples where A strictly beats B.
    win_probability: float
    samples: int

    @property
    def significant(self) -> bool:
        """True when the confidence interval excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0


def bootstrap_hit_gap(
    hits_a: Iterable[tuple[int, int]],
    hits_b: Iterable[tuple[int, int]],
    users: Iterable[int],
    samples: int = 2000,
    confidence: float = 0.95,
    seed: int | np.random.Generator | None = 0,
) -> HitGap:
    """Paired bootstrap over users for the hit difference A - B.

    Users are resampled with replacement; each resample's statistic is
    the total hit difference.  ``confidence`` sets the two-sided interval
    (default 95%).
    """
    if samples < 1:
        raise ValueError(f"samples must be positive, got {samples}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    user_list = sorted(set(users))
    if not user_list:
        raise ValueError("need at least one evaluated user")
    rng = make_rng(seed)
    per_user_a = hits_per_user(hits_a, user_list)
    per_user_b = hits_per_user(hits_b, user_list)
    differences = np.asarray(
        [per_user_a[u] - per_user_b[u] for u in user_list], dtype=np.float64
    )
    n = len(user_list)
    totals = np.empty(samples, dtype=np.float64)
    for i in range(samples):
        indexes = rng.integers(0, n, size=n)
        totals[i] = differences[indexes].sum()
    alpha = (1.0 - confidence) / 2.0
    return HitGap(
        mean_difference=float(differences.sum()),
        ci_low=float(np.quantile(totals, alpha)),
        ci_high=float(np.quantile(totals, 1.0 - alpha)),
        win_probability=float((totals > 0).mean()),
        samples=samples,
    )
