"""The daily per-user recommendation budget (the k axis of Figs. 7-15).

Every figure of §6.2 sweeps "the maximum number of daily recommendations
per user": within each simulated day, at most ``k`` recommendations reach
a given user, the highest-scored candidates winning the slots.  Ties break
on earlier emission time, then tweet id, for full determinism.

:class:`CapacityModel` is the serving-side companion: where the daily
budget caps what each *user* receives, the capacity model caps what the
*service* can sustainably ingest.  The :mod:`repro.serve` admission
controller calibrates its token bucket and queue-depth thresholds from
it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import Recommendation
from repro.obs import NULL, MetricsRegistry
from repro.utils.topk import TopK

__all__ = ["apply_daily_budget", "CapacityModel", "DAY_SECONDS"]

DAY_SECONDS = 86400.0


@dataclass(frozen=True)
class CapacityModel:
    """Sustainable ingest rate of one service worker.

    Calibrated from a measured per-event service cost — typically the
    inverse saturation throughput of a closed-loop bench run (the paper's
    §6.3 timing tables are the same quantity at paper scale: ~38 ms per
    message is a ~26 events/sec worker).  An open-loop arrival rate above
    ``events_per_second`` grows the queue without bound, so the admission
    token bucket refills at exactly that rate and queue-depth thresholds
    derive from how much drain backlog a latency SLO tolerates.
    """

    #: Measured wall-clock seconds of service work per admitted event.
    service_seconds_per_event: float
    #: Target utilization headroom (fraction of raw capacity admitted;
    #: keeping it below 1 leaves room for maintenance pauses and bursts).
    utilization: float = 0.8

    def __post_init__(self) -> None:
        if self.service_seconds_per_event <= 0:
            raise ValueError(
                "service_seconds_per_event must be positive, got "
                f"{self.service_seconds_per_event}"
            )
        if not 0 < self.utilization <= 1:
            raise ValueError(
                f"utilization must be in (0, 1], got {self.utilization}"
            )

    @property
    def events_per_second(self) -> float:
        """Admissible arrival rate (raw capacity times utilization)."""
        return self.utilization / self.service_seconds_per_event

    def queue_depth_for_latency(self, latency_budget_s: float) -> int:
        """Largest backlog whose drain time still fits the budget.

        A queue of depth ``d`` takes ``d * service_seconds_per_event``
        to drain at raw speed; an arriving request queued behind it waits
        at least that long.  The admission ladder degrades once the depth
        exceeds this bound (and sheds at a multiple of it).  Always at
        least 1 so a nonzero budget never degrades an idle service.
        """
        if latency_budget_s <= 0:
            raise ValueError(
                f"latency_budget_s must be positive, got {latency_budget_s}"
            )
        return max(
            1, int(latency_budget_s / self.service_seconds_per_event)
        )


def apply_daily_budget(
    candidates: list[Recommendation],
    k: int,
    start_time: float,
    day_length: float = DAY_SECONDS,
    metrics: MetricsRegistry | None = None,
) -> list[Recommendation]:
    """Return the candidates actually delivered under a ``k``/day/user cap.

    Days are counted from ``start_time`` (the beginning of the test
    window) as the half-open windows ``[start + d*day_length,
    start + (d+1)*day_length)``: a recommendation stamped *exactly* at a
    day boundary (a midnight-timestamp retweet) opens the **new** day's
    budget — the boundary suite in ``tests/test_eval_budget.py`` pins
    this down.  This mirrors a service that refreshes budgets on a fixed
    clock.

    ``metrics`` (default: no-op) records the ``budget`` span plus
    candidate / delivered / rejection counters.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if day_length <= 0:
        raise ValueError(f"day_length must be positive, got {day_length}")
    metrics = metrics if metrics is not None else NULL
    with metrics.span("budget"):
        slots: dict[tuple[int, int], TopK[tuple[float, int]]] = {}
        by_key: dict[tuple[int, int, float, int], Recommendation] = {}
        for rec in candidates:
            day = int((rec.time - start_time) // day_length)
            slot = slots.get((rec.user, day))
            if slot is None:
                slot = TopK(k)
                slots[(rec.user, day)] = slot
            # Higher score wins; for equal scores the earlier emission (and
            # then the smaller tweet id) wins, hence the negated tiebreak.
            slot.push((-rec.time, -rec.tweet), rec.score)
            by_key[(rec.user, day, -rec.time, -rec.tweet)] = rec
        delivered: list[Recommendation] = []
        for (user, day), slot in slots.items():
            for (neg_time, neg_tweet), _ in slot.items():
                delivered.append(by_key[(user, day, neg_time, neg_tweet)])
        delivered.sort(key=lambda r: (r.time, r.user, r.tweet))
    metrics.counter("budget.candidates").inc(len(candidates))
    metrics.counter("budget.delivered").inc(len(delivered))
    metrics.counter("budget.rejections").inc(len(candidates) - len(delivered))
    return delivered
