"""Temporal replay of the test stream (paper §6.1).

The replay engine drives a fitted recommender through the test retweets in
chronological order, collecting every *candidate recommendation* it emits
for the evaluated users.  The expensive pass runs **once**; daily budgets
and metrics for each top-k value are applied afterwards by
:mod:`repro.eval.metrics` — which is sound because a recommender's
emissions do not depend on k.

Candidate hygiene rules enforced here:

* only recommendations for target users are retained;
* a (user, tweet) pair already retweeted by that user in the train split
  is discarded — the user demonstrably knows the tweet;
* each (user, tweet) pair keeps its **earliest** emission time (fixing the
  advance-time measurement point) and the **highest** score any emission
  carried — recommenders refine their confidence as more retweets of the
  same tweet stream in, and the daily budget should rank on a method's
  best knowledge, not its first guess.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.base import Recommendation, Recommender
from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet
from repro.exceptions import EvaluationError
from repro.obs import NULL, MetricsRegistry

__all__ = ["ReplayResult", "run_replay"]


@dataclass(frozen=True)
class ReplayResult:
    """Everything needed to score one method at any k."""

    name: str
    #: Earliest candidate per (user, tweet), target users only.
    candidates: list[Recommendation]
    target_users: frozenset[int]
    #: (user, tweet) -> time of the user's first retweet in the test set.
    first_retweet: dict[tuple[int, int], float]
    test_start: float
    test_end: float

    @property
    def test_days(self) -> float:
        """Length of the test window in days (minimum one)."""
        return max((self.test_end - self.test_start) / 86400.0, 1.0)


def run_replay(
    recommender: Recommender,
    dataset: TwitterDataset,
    train: list[Retweet],
    test: list[Retweet],
    target_users: set[int],
    fitted: bool = False,
    metrics: MetricsRegistry | None = None,
) -> ReplayResult:
    """Fit ``recommender`` and stream the test events through it.

    Set ``fitted=True`` when the recommender was already fitted by the
    caller (e.g. with an injected, strategy-updated SimGraph).

    ``metrics`` (default: no-op) wraps the fit and streaming stages in
    ``replay.*`` spans, counts events and candidate-recommendation flow,
    and records the achieved events/sec throughput (a timing gauge,
    excluded from deterministic snapshots).
    """
    metrics = metrics if metrics is not None else NULL
    if not test:
        raise EvaluationError("empty test stream")
    for earlier, later in zip(test, test[1:]):
        if later.time < earlier.time:
            raise EvaluationError("test stream is not in chronological order")
    if not fitted:
        with metrics.span("replay.fit"):
            recommender.fit(dataset, train, target_users=target_users)

    known: set[tuple[int, int]] = {
        (r.user, r.tweet) for r in train if r.user in target_users
    }
    first_retweet: dict[tuple[int, int], float] = {}
    candidates: dict[tuple[int, int], Recommendation] = {}
    emissions = metrics.counter("replay.emissions")

    def collect(recs: list[Recommendation]) -> None:
        emissions.inc(len(recs))
        for rec in recs:
            if rec.user not in target_users:
                continue
            key = (rec.user, rec.tweet)
            if key in known:
                continue
            existing = candidates.get(key)
            if existing is None:
                candidates[key] = rec
            elif rec.score > existing.score:
                # Keep the first emission time, upgrade to the best score.
                candidates[key] = Recommendation(
                    user=existing.user,
                    tweet=existing.tweet,
                    score=rec.score,
                    time=existing.time,
                )

    started = time.perf_counter()
    with metrics.span("replay.stream"):
        for event in test:
            collect(recommender.on_event(event))
            if event.user in target_users:
                key = (event.user, event.tweet)
                if key not in known and key not in first_retweet:
                    first_retweet[key] = event.time
        # The end-of-stream drain releases every still-buffered batch at
        # once — on the CSR backend a single joint propagation — so it
        # gets its own span in the call tree.
        with metrics.span("replay.finalize"):
            collect(recommender.finalize(test[-1].time))
    elapsed = time.perf_counter() - started
    metrics.counter("replay.events").inc(len(test))
    metrics.counter("replay.candidates").inc(len(candidates))
    if elapsed > 0:
        metrics.gauge("replay.events_per_sec", timing=True).set(
            len(test) / elapsed
        )

    return ReplayResult(
        name=recommender.name,
        candidates=list(candidates.values()),
        target_users=frozenset(target_users),
        first_retweet=first_retweet,
        test_start=test[0].time,
        test_end=test[-1].time,
    )
