"""Processing-time measurement (paper Table 5).

Times the two phases the paper reports for each method:

* **initialization** — the :meth:`fit` call (similarity pre-computation
  for CF, SimGraph construction, trust estimation for Bayes; GraphJet has
  none beyond loading interactions);
* **streaming** — processing the test events, amortized per message (or,
  for the user-centric GraphJet, per periodic batch query).

Absolute numbers are hardware- and scale-dependent; the reproduced claim
is the *ordering*: Bayes ≫ CF ≫ GraphJet ≳ SimGraph in total cost, with
CF dominated by init and Bayes by per-message work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import Recommender
from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet
from repro.utils.timer import Timer

__all__ = ["TimingReport", "time_method"]


@dataclass(frozen=True)
class TimingReport:
    """Wall-clock cost breakdown of one method."""

    name: str
    init_seconds: float
    init_per_user_ms: float
    stream_seconds: float
    per_event_ms: float
    events: int
    users: int

    @property
    def total_seconds(self) -> float:
        """Init plus streaming."""
        return self.init_seconds + self.stream_seconds

    def row(self) -> list[object]:
        """One Table-5 row."""
        return [
            self.name,
            round(self.init_per_user_ms, 3),
            round(self.init_seconds, 3),
            round(self.per_event_ms, 3),
            round(self.stream_seconds, 3),
            round(self.total_seconds, 3),
        ]


def time_method(
    recommender: Recommender,
    dataset: TwitterDataset,
    train: list[Retweet],
    test: list[Retweet],
    target_users: set[int],
    max_events: int | None = None,
) -> TimingReport:
    """Measure init and streaming cost of ``recommender``.

    ``max_events`` truncates the streamed test prefix (the full stream is
    unnecessary for a stable per-event estimate); per-event cost is
    averaged over what was streamed.
    """
    with Timer() as init_timer:
        recommender.fit(dataset, train, target_users=target_users)
    events = test if max_events is None else test[:max_events]
    with Timer() as stream_timer:
        for event in events:
            recommender.on_event(event)
        if events:
            recommender.finalize(events[-1].time)
    n_users = max(dataset.user_count, 1)
    n_events = max(len(events), 1)
    return TimingReport(
        name=recommender.name,
        init_seconds=init_timer.elapsed,
        init_per_user_ms=init_timer.elapsed / n_users * 1000.0,
        stream_seconds=stream_timer.elapsed,
        per_event_ms=stream_timer.elapsed / n_events * 1000.0,
        events=len(events),
        users=dataset.user_count,
    )
