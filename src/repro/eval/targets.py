"""Stratified selection of the evaluated users (paper §6.1).

The paper samples 500 low-active users (< 100 retweets), 500 moderate
(100-1,000) and 500 intensive (> 1,000), judged on their total retweet
activity.  On a scaled-down synthetic corpus the absolute thresholds are
meaningless, so by default the strata boundaries are the 50th and 85th
percentiles of the per-user activity distribution — preserving the
*relative* notion of small/medium/big users — while explicit thresholds
remain available for paper-faithful runs on large corpora.
"""

from __future__ import annotations

import numpy as np

from repro.data.models import ActivityClass, Retweet
from repro.utils.rng import make_rng

__all__ = ["TargetSelection", "select_target_users", "activity_thresholds"]


class TargetSelection:
    """The evaluated population, stratified by activity."""

    def __init__(self, strata: dict[str, list[int]]):
        self.strata = strata

    @property
    def all_users(self) -> set[int]:
        """Union of every stratum."""
        return {u for users in self.strata.values() for u in users}

    def stratum(self, name: str) -> set[int]:
        """Users of one stratum (see :class:`ActivityClass` names)."""
        return set(self.strata.get(name, ()))

    def counts(self) -> dict[str, int]:
        """Stratum -> size."""
        return {name: len(users) for name, users in self.strata.items()}


def activity_thresholds(
    counts: dict[int, int],
    low_quantile: float = 0.5,
    moderate_quantile: float = 0.85,
) -> tuple[int, int]:
    """Derive (low_max, moderate_max) activity cut-offs from quantiles.

    Only users with at least one retweet participate (the paper's strata
    are defined over retweeting users).
    """
    values = np.asarray([c for c in counts.values() if c > 0], dtype=np.float64)
    if values.size == 0:
        return 1, 2
    low_max = max(int(np.quantile(values, low_quantile)), 1)
    moderate_max = max(int(np.quantile(values, moderate_quantile)), low_max + 1)
    return low_max, moderate_max


def select_target_users(
    train: list[Retweet],
    per_stratum: int = 500,
    thresholds: tuple[int, int] | None = None,
    seed: int | np.random.Generator | None = 0,
) -> TargetSelection:
    """Sample ``per_stratum`` users from each activity stratum.

    Activity is measured on the **train** split only — selecting on the
    full log would leak test-set information into the population choice.
    Strata smaller than ``per_stratum`` are taken whole.
    """
    rng = make_rng(seed)
    counts: dict[int, int] = {}
    for retweet in train:
        counts[retweet.user] = counts.get(retweet.user, 0) + 1
    if thresholds is None:
        thresholds = activity_thresholds(counts)
    low_max, moderate_max = thresholds
    pools: dict[str, list[int]] = {name: [] for name in ActivityClass.ALL}
    for user, count in counts.items():
        pools[ActivityClass.classify(count, low_max, moderate_max)].append(user)
    strata: dict[str, list[int]] = {}
    for name, pool in pools.items():
        pool.sort()
        if len(pool) > per_stratum:
            picked = rng.choice(len(pool), size=per_stratum, replace=False)
            strata[name] = sorted(pool[i] for i in picked)
        else:
            strata[name] = pool
    return TargetSelection(strata)
