"""Scoring of a replayed method at each k (Figures 7-15).

A delivered recommendation is a **hit** when the user really retweeted the
tweet later in the test window (prediction strictly before interaction,
§6.1).  From the hit set every reported quantity follows:

* Fig. 7 — recall capacity: delivered recommendations / day / user;
* Figs. 8-11 — hit counts (overall and per activity stratum);
* Fig. 12 — mean popularity (total shares) of hit tweets;
* Fig. 13 — ratio of a competitor's hits also found by SimGraph;
* Fig. 14 — F1 (precision vs the user's actual test retweets);
* Fig. 15 — mean advance time between recommendation and retweet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.eval.budget import DAY_SECONDS, apply_daily_budget
from repro.eval.replay import ReplayResult
from repro.obs import MetricsRegistry

__all__ = ["KMetrics", "evaluate_at_k", "evaluate_sweep", "overlap_ratio"]


@dataclass(frozen=True)
class KMetrics:
    """All per-k measurements of one method."""

    k: int
    delivered: int
    recs_per_user_day: float
    hits: int
    precision: float
    recall: float
    f1: float
    mean_hit_popularity: float
    mean_advance_seconds: float
    hit_pairs: frozenset[tuple[int, int]]


def evaluate_at_k(
    result: ReplayResult,
    k: int,
    popularity: Callable[[int], int],
    users: Iterable[int] | None = None,
    day_length: float = DAY_SECONDS,
    metrics: MetricsRegistry | None = None,
) -> KMetrics:
    """Score ``result`` under a k/day/user budget.

    ``popularity`` maps a tweet id to its total share count (used for the
    Fig. 12 measurement).  ``users`` restricts the scoring to a stratum
    (Figs. 9-11); the budget itself is always applied per user, so
    restricting after the fact is exact.  ``metrics`` is forwarded to the
    budget-enforcement stage.
    """
    user_filter = result.target_users if users is None else frozenset(users)
    delivered = apply_daily_budget(
        result.candidates, k, start_time=result.test_start,
        day_length=day_length, metrics=metrics,
    )
    delivered = [r for r in delivered if r.user in user_filter]
    hit_pairs: set[tuple[int, int]] = set()
    advance_sum = 0.0
    popularity_sum = 0
    for rec in delivered:
        retweet_time = result.first_retweet.get((rec.user, rec.tweet))
        if retweet_time is not None and rec.time < retweet_time:
            hit_pairs.add((rec.user, rec.tweet))
            advance_sum += retweet_time - rec.time
            popularity_sum += popularity(rec.tweet)
    hits = len(hit_pairs)
    relevant = sum(1 for (user, _t) in result.first_retweet if user in user_filter)
    precision = hits / len(delivered) if delivered else 0.0
    recall = hits / relevant if relevant else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    n_users = len(user_filter)
    recs_per_user_day = (
        len(delivered) / (n_users * result.test_days) if n_users else 0.0
    )
    return KMetrics(
        k=k,
        delivered=len(delivered),
        recs_per_user_day=recs_per_user_day,
        hits=hits,
        precision=precision,
        recall=recall,
        f1=f1,
        mean_hit_popularity=popularity_sum / hits if hits else 0.0,
        mean_advance_seconds=advance_sum / hits if hits else 0.0,
        hit_pairs=frozenset(hit_pairs),
    )


def evaluate_sweep(
    result: ReplayResult,
    k_values: Sequence[int],
    popularity: Callable[[int], int],
    users: Iterable[int] | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[KMetrics]:
    """:func:`evaluate_at_k` across the paper's k sweep (20..200)."""
    return [
        evaluate_at_k(result, k, popularity, users=users, metrics=metrics)
        for k in k_values
    ]


def overlap_ratio(
    reference_hits: frozenset[tuple[int, int]],
    competitor_hits: frozenset[tuple[int, int]],
) -> float:
    """σ(competitor) = |hits(ref) ∩ hits(comp)| / |hits(comp)| (Fig. 13)."""
    if not competitor_hits:
        return 0.0
    return len(reference_hits & competitor_hits) / len(competitor_hits)
