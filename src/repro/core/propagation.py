"""The iterative propagation algorithm (paper Algorithm 1, §5).

Given a tweet's current retweeters ``D`` (probability pinned at 1), the
sharing probability of every other user,

.. math::  p(u, t) = \\frac{\\sum_{v \\in F_u} p(v, t) \\cdot sim(u, v)}{|F_u|},

is iterated to fixpoint over the SimGraph.  The implementation is
*frontier-based*: an iteration only recomputes users whose influential set
changed in the previous round — on a sparse graph this touches a tiny
subgraph rather than all of V, which is what makes per-message propagation
fast (§6.3 reports 38ms/message at paper scale).

Threshold optimization (§5.4): when a user's probability change falls
below the policy's threshold, the value is still updated but is **not
propagated further** — exactly the paper's β / γ(t) semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.simgraph import SimGraph
from repro.core.thresholds import NoThreshold, ThresholdPolicy
from repro.obs import NULL, MetricsRegistry

__all__ = ["PropagationResult", "PropagationEngine"]


@dataclass(frozen=True)
class PropagationResult:
    """Outcome of one propagation run.

    ``probabilities`` is sparse: users absent from the map have p = 0.
    ``updates`` counts probability recomputations (the work metric used by
    the threshold ablation); ``converged`` is False when the iteration
    budget ran out first.
    """

    probabilities: dict[int, float]
    iterations: int
    updates: int
    converged: bool

    def score(self, user: int) -> float:
        """p(user, t), 0.0 when the propagation never reached the user."""
        return self.probabilities.get(user, 0.0)

    def nonseed_scores(self, seeds: Iterable[int]) -> dict[int, float]:
        """Probabilities of users outside ``seeds`` — the recommendees."""
        seed_set = set(seeds)
        return {
            user: p
            for user, p in self.probabilities.items()
            if user not in seed_set
        }


class PropagationEngine:
    """Runs Algorithm 1 over a fixed :class:`SimGraph`.

    Parameters
    ----------
    simgraph:
        The similarity graph to propagate over.
    threshold:
        Propagation-threshold policy (default: none, the exact algorithm).
    tolerance:
        Numerical convergence tolerance: changes below it count as "no
        change" for the stop test (Algorithm 1 line 11 compares floats).
    max_iterations:
        Hard iteration cap; the model provably converges (the system is
        diagonally dominant, §5.3) but a cap guards degenerate inputs.
    metrics:
        Observability registry; the default :data:`repro.obs.NULL`
        records nothing at ~zero cost.  A real registry collects the
        ``propagation`` span (with its ``solve`` fixpoint-loop child),
        run/iteration/update counters, β / γ(t) threshold-skip counts and
        frontier/seed-size histograms.
    """

    def __init__(
        self,
        simgraph: SimGraph,
        threshold: ThresholdPolicy | None = None,
        tolerance: float = 1e-10,
        max_iterations: int = 200,
        metrics: MetricsRegistry | None = None,
    ):
        if tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        if max_iterations < 1:
            raise ValueError(
                f"max_iterations must be at least 1, got {max_iterations}"
            )
        self.simgraph = simgraph
        self.threshold = threshold if threshold is not None else NoThreshold()
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.metrics = metrics if metrics is not None else NULL
        self._last_state: dict[int, float] | None = None
        self._last_states: list[dict[int, float]] = []

    def take_state(self) -> dict[int, float] | None:
        """Warm state of the most recent :meth:`propagate`.

        For this engine that is simply the fixpoint probability dict;
        the CSR engine returns compiled arrays instead.  Both feed the
        next run's ``initial=`` — the uniform warm-cache contract.
        """
        return self._last_state

    def take_states(self) -> list[dict[int, float]]:
        """Per-task warm states of the most recent :meth:`propagate_many`."""
        return self._last_states

    def propagate_many(
        self,
        seed_sets: Sequence[Iterable[int]],
        popularities: Sequence[int | None] | None = None,
        initials: Sequence[Mapping[int, float] | None] | None = None,
    ) -> list[PropagationResult]:
        """Propagate a batch of independent tasks (sequentially here).

        The CSR backend overlaps the whole batch in one joint fixpoint;
        this engine provides the same interface so call sites release a
        scheduler flush through one invocation on either backend.
        """
        if popularities is None:
            popularities = [None] * len(seed_sets)
        if initials is None:
            initials = [None] * len(seed_sets)
        results = [
            self.propagate(seeds, popularity=popularity, initial=initial)
            for seeds, popularity, initial in zip(
                seed_sets, popularities, initials
            )
        ]
        self._last_states = [r.probabilities for r in results]
        return results

    def propagate(
        self,
        seeds: Iterable[int],
        popularity: int | None = None,
        initial: Mapping[int, float] | None = None,
    ) -> PropagationResult:
        """Compute p(·, t) given the retweeters ``seeds`` of tweet t.

        ``popularity`` feeds the threshold policy (defaults to the seed
        count, i.e. the tweet's current retweet count).  ``initial`` warm
        -starts non-seed probabilities from a previous run of the same
        tweet — the incremental path used when a new retweet arrives.
        """
        with self.metrics.span("propagation"):
            return self._propagate(seeds, popularity, initial)

    def _propagate(
        self,
        seeds: Iterable[int],
        popularity: int | None,
        initial: Mapping[int, float] | None,
    ) -> PropagationResult:
        metrics = self.metrics
        seed_set = {s for s in seeds if s is not None}
        if popularity is None:
            popularity = len(seed_set)
        beta = self.threshold.threshold_for(popularity)

        graph = self.simgraph
        probabilities: dict[int, float] = {}
        if initial:
            probabilities.update(
                (u, p) for u, p in initial.items() if u not in seed_set and p > 0.0
            )
        for seed in seed_set:
            probabilities[seed] = 1.0

        # Users whose value changed last round; their *influencees* are the
        # only candidates whose Def. 4.2 sum can change this round.  With a
        # warm start the old fixpoint is already consistent everywhere
        # except at the *newly pinned* seeds, so only those enter the
        # initial frontier — the incremental path that makes re-propagating
        # a tweet after each additional retweet cheap.
        if initial:
            new_seeds = {s for s in seed_set if initial.get(s, 0.0) != 1.0}
            frontier: set[int] = {s for s in new_seeds if s in graph}
        else:
            frontier = {s for s in seed_set if s in graph}
        # Users whose change once fell below the threshold stop propagating
        # "for any following iteration" (§5.4) — they stay muted even if a
        # later update pushes their delta back above β.
        muted: set[int] = set()
        iterations = 0
        updates = 0
        converged = True
        frontier_hist = metrics.histogram("propagation.frontier")
        with metrics.span("solve"):
            while frontier:
                if iterations >= self.max_iterations:
                    converged = False
                    break
                iterations += 1
                frontier_hist.observe(len(frontier))
                dirty: set[int] = set()
                for changed in frontier:
                    dirty.update(
                        u for u in graph.influenced(changed) if u not in seed_set
                    )
                if not dirty:
                    break
                new_values: dict[int, float] = {}
                next_frontier: set[int] = set()
                for user in dirty:
                    influencers = graph.influencers(user)
                    total = sum(
                        probabilities.get(v, 0.0) * sim for v, sim in influencers
                    )
                    new_p = total / len(influencers)
                    old_p = probabilities.get(user, 0.0)
                    delta = abs(new_p - old_p)
                    if delta <= self.tolerance:
                        continue
                    new_values[user] = new_p
                    updates += 1
                    if delta >= beta:
                        if user not in muted:
                            next_frontier.add(user)
                    elif beta > 0.0:
                        muted.add(user)
                probabilities.update(new_values)
                frontier = next_frontier
        metrics.counter("propagation.runs").inc()
        metrics.counter("propagation.iterations").inc(iterations)
        metrics.counter("propagation.updates").inc(updates)
        metrics.counter("propagation.threshold_skips").inc(len(muted))
        if not converged:
            metrics.counter("propagation.non_converged").inc()
        metrics.histogram("propagation.seeds").observe(len(seed_set))
        metrics.histogram("propagation.touched").observe(len(probabilities))
        self._last_state = probabilities
        return PropagationResult(
            probabilities=probabilities,
            iterations=iterations,
            updates=updates,
            converged=converged,
        )
