"""Compiled propagation backend: Algorithm 1 over flat CSR arrays.

:class:`CSRPropagationEngine` runs the exact frontier fixpoint of
:class:`~repro.core.propagation.PropagationEngine` — same muted
"stop propagating for any following iteration" rule (§5.4), same
tolerance stop test, same :class:`PropagationResult` — but every
iteration is a handful of numpy gathers and segment sums over a
:class:`~repro.core.csr.CSRSimGraph` instead of a Python loop over
dict adjacency.  Per-row influencer order is preserved by the
compilation and the segment sums accumulate in that order (in-order
``bincount`` / CSR matvec, never pairwise summation), so results are
bit-identical to the reference engine; the
differential harness (``tests/test_propagation_differential.py``) pins
both paths together.

Two extras the reference engine does not have:

* **warm-state arrays** — :meth:`CSRPropagationEngine.take_state`
  returns a :class:`CSRWarmState` (member positions + values over the
  compiled index) that feeds the next ``initial=`` without ever
  rebuilding a probability dict; the
  :class:`~repro.core.warmcache.WarmStateCache` stores these;
* **batched scoring** — :meth:`CSRPropagationEngine.propagate_many`
  advances a whole batch of released propagation tasks (e.g. a
  :meth:`~repro.core.scheduler.PostponedScheduler.flush`) through the
  fixpoint *jointly*: one sparse product per iteration computes every
  task's dirty set, one more scores them, with per-task β/γ(t)
  thresholds, mute masks and iteration budgets.

Select the backend with ``prop_backend="reference" | "csr" | "numba" |
"auto"`` on
:class:`~repro.core.recommender.SimGraphRecommender`,
:class:`~repro.service.engine.ServiceConfig` or the CLI — mirroring the
existing SimGraph ``backend=`` build knob.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.csr import CSRSimGraph, gather_ranges
from repro.core.propagation import PropagationEngine, PropagationResult
from repro.core.simgraph import SimGraph
from repro.core.thresholds import NoThreshold, ThresholdPolicy
from repro.obs import NULL, MetricsRegistry

__all__ = [
    "PROP_BACKENDS",
    "CSRWarmState",
    "CSRPropagationEngine",
    "make_propagation_engine",
]

#: Available propagation backends: ``reference`` is the pure-Python
#: frontier loop (:mod:`repro.core.propagation`); ``csr`` runs the same
#: fixpoint over compiled numpy CSR arrays; ``numba`` lowers it into a
#: jitted kernel (:mod:`repro.core.propagation_kernel`) and falls back
#: to ``csr`` when numba is absent; ``auto`` picks the fastest rung
#: available at runtime.  The differential suite pins every backend to
#: identical results.
PROP_BACKENDS = ("reference", "csr", "numba", "auto")


class CSRWarmState:
    """A propagation fixpoint in compiled form.

    ``indices``/``values`` hold the result membership over the compiled
    user index of ``graph``; ``extra`` holds the (rare) members outside
    the similarity graph — seeds and carried warm entries the graph
    never saw.  Passing one of these as ``initial=`` is exactly
    equivalent to passing the corresponding ``result.probabilities``
    dict, minus the dict round-trip.
    """

    __slots__ = ("graph", "indices", "values", "extra")

    def __init__(
        self,
        graph: CSRSimGraph,
        indices: np.ndarray,
        values: np.ndarray,
        extra: dict[int, float],
    ):
        self.graph = graph
        self.indices = indices
        self.values = values
        self.extra = extra

    def __len__(self) -> int:
        return len(self.indices) + len(self.extra)

    def __bool__(self) -> bool:
        # An empty state must behave like an empty ``initial`` mapping
        # (cold frontier), so truthiness follows content.
        return len(self) > 0


class CSRPropagationEngine:
    """Algorithm 1 compiled to flat arrays (drop-in for the reference).

    Parameters mirror :class:`~repro.core.propagation.PropagationEngine`
    exactly; ``csr`` optionally injects an already-compiled
    :class:`CSRSimGraph` (e.g. one whose weights were patched in place
    at maintenance time) so construction skips recompilation.
    """

    def __init__(
        self,
        simgraph: SimGraph,
        threshold: ThresholdPolicy | None = None,
        tolerance: float = 1e-10,
        max_iterations: int = 200,
        metrics: MetricsRegistry | None = None,
        csr: CSRSimGraph | None = None,
    ):
        if tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        if max_iterations < 1:
            raise ValueError(
                f"max_iterations must be at least 1, got {max_iterations}"
            )
        self.simgraph = simgraph
        self.threshold = threshold if threshold is not None else NoThreshold()
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.metrics = metrics if metrics is not None else NULL
        self.csr = csr if csr is not None else CSRSimGraph.from_simgraph(simgraph)
        self._last_state: CSRWarmState | None = None
        self._last_states: list[CSRWarmState] = []

    # ------------------------------------------------------------------
    # Single-task path (bit-identical to the reference engine)
    # ------------------------------------------------------------------
    def propagate(
        self,
        seeds: Iterable[int],
        popularity: int | None = None,
        initial: Mapping[int, float] | CSRWarmState | None = None,
    ) -> PropagationResult:
        """Compute p(·, t); see the reference engine for semantics.

        ``initial`` warm-starts from a previous fixpoint of the same
        tweet — either a probability mapping or a :class:`CSRWarmState`
        from :meth:`take_state` (the no-dict incremental path).
        """
        with self.metrics.span("propagation"):
            return self._propagate(seeds, popularity, initial)

    def take_state(self) -> CSRWarmState | None:
        """Compiled warm state of the most recent :meth:`propagate`."""
        return self._last_state

    def take_states(self) -> list[CSRWarmState]:
        """Per-task warm states of the most recent :meth:`propagate_many`."""
        return self._last_states

    def _load_task(self, seeds, popularity, initial):
        """Shared seed/warm-start decoding for both paths."""
        csr = self.csr
        seed_set = {s for s in seeds if s is not None}
        if popularity is None:
            popularity = len(seed_set)
        beta = self.threshold.threshold_for(popularity)
        index = csr.index
        seed_idx = np.fromiter(
            (index[s] for s in seed_set if s in index), dtype=np.int64
        )
        off_seeds = [s for s in seed_set if s not in index]
        n = csr.node_count
        # ``raw`` mirrors ``initial.get(u, 0.0)`` for in-graph users: the
        # value the warm-frontier test reads.  ``p`` only keeps entries
        # that pass the reference's ``p > 0 and not seed`` load filter.
        raw = np.zeros(n, dtype=np.float64)
        off_graph: dict[int, float] = {}
        if initial:
            if isinstance(initial, CSRWarmState):
                if initial.graph is not csr:
                    raise ValueError(
                        "warm state was compiled against a different "
                        "CSRSimGraph; cold-start or pass a mapping instead"
                    )
                raw[initial.indices] = initial.values
                off_items: Iterable[tuple[int, float]] = initial.extra.items()
            else:
                off_items = []
                for u, value in initial.items():
                    i = index.get(u)
                    if i is None:
                        off_items.append((u, value))
                    else:
                        raw[i] = value
            for u, value in off_items:
                if u not in seed_set and value > 0.0:
                    off_graph[u] = value
        seed_mask = np.zeros(n, dtype=bool)
        seed_mask[seed_idx] = True
        member = (raw > 0.0) & ~seed_mask
        p = np.where(member, raw, 0.0)
        p[seed_idx] = 1.0
        if initial:
            # Warm start: the old fixpoint is consistent everywhere
            # except at newly pinned seeds (reference: initial.get(s)
            # != 1.0), so only those enter the initial frontier.
            frontier = seed_idx[raw[seed_idx] != 1.0]
        else:
            frontier = seed_idx
        frontier = np.unique(frontier)
        return (
            seed_set, seed_idx, off_seeds, beta, p, member, seed_mask,
            off_graph, frontier,
        )

    def _finish_task(self, seed_idx, off_seeds, p, member, off_graph):
        """Build the result dict + warm state for one task."""
        csr = self.csr
        member = member.copy()
        member[seed_idx] = True
        idx = np.flatnonzero(member)
        probabilities = dict(
            zip(csr.users[idx].tolist(), p[idx].tolist())
        )
        extra = dict(off_graph)
        for s in off_seeds:
            extra[s] = 1.0
        probabilities.update(extra)
        state = CSRWarmState(csr, idx, p[idx], extra)
        return probabilities, state

    def _propagate(self, seeds, popularity, initial):
        metrics = self.metrics
        csr = self.csr
        (
            seed_set, seed_idx, off_seeds, beta, p, member, seed_mask,
            off_graph, frontier,
        ) = self._load_task(seeds, popularity, initial)
        inf_indptr = csr.inf_indptr
        inf_indices = csr.inf_indices
        inf_weights = csr.inf_weights
        out_indptr = csr.out_indptr
        out_indices = csr.out_indices
        muted = np.zeros(csr.node_count, dtype=bool)
        iterations = 0
        updates = 0
        converged = True
        frontier_hist = metrics.histogram("propagation.frontier")
        with metrics.span("solve"):
            while frontier.size:
                if iterations >= self.max_iterations:
                    converged = False
                    break
                iterations += 1
                frontier_hist.observe(int(frontier.size))
                flat, _, _ = gather_ranges(out_indptr, frontier)
                dirty = np.unique(out_indices[flat])
                if dirty.size:
                    dirty = dirty[~seed_mask[dirty]]
                if dirty.size == 0:
                    break
                # Every dirty user has >= 1 influencer (it reached the
                # dirty set through one), so no segment is empty.  The
                # segment sums use ``bincount``, which accumulates
                # strictly in input order — each dirty user's sum is the
                # same left-to-right sequential sum the reference runs,
                # bit for bit (``np.add.reduceat`` switches to pairwise
                # summation on long rows and drifts by ULPs).
                flat, _, lengths = gather_ranges(inf_indptr, dirty)
                sums = np.bincount(
                    np.repeat(np.arange(dirty.size), lengths),
                    weights=inf_weights[flat] * p[inf_indices[flat]],
                    minlength=dirty.size,
                )
                new_p = sums / lengths
                delta = np.abs(new_p - p[dirty])
                changed = delta > self.tolerance
                upd = dirty[changed]
                p[upd] = new_p[changed]
                member[upd] = True
                updates += int(np.count_nonzero(changed))
                passing = dirty[changed & (delta >= beta)]
                frontier = passing[~muted[passing]]
                if beta > 0.0:
                    muted[dirty[changed & (delta < beta)]] = True
        probabilities, state = self._finish_task(
            seed_idx, off_seeds, p, member, off_graph
        )
        self._last_state = state
        metrics.counter("propagation.runs").inc()
        metrics.counter("propagation.iterations").inc(iterations)
        metrics.counter("propagation.updates").inc(updates)
        metrics.counter("propagation.threshold_skips").inc(
            int(np.count_nonzero(muted))
        )
        if not converged:
            metrics.counter("propagation.non_converged").inc()
        metrics.histogram("propagation.seeds").observe(len(seed_set))
        metrics.histogram("propagation.touched").observe(len(probabilities))
        return PropagationResult(
            probabilities=probabilities,
            iterations=iterations,
            updates=updates,
            converged=converged,
        )

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------
    def propagate_many(
        self,
        seed_sets: Sequence[Iterable[int]],
        popularities: Sequence[int | None] | None = None,
        initials: Sequence[Mapping[int, float] | CSRWarmState | None]
        | None = None,
    ) -> list[PropagationResult]:
        """Propagate a batch of tasks jointly over the shared arrays.

        Task ``i`` produces exactly the result ``propagate(seed_sets[i],
        popularities[i], initials[i])`` would — per-task thresholds,
        mute masks and iteration budgets are tracked in parallel — but
        each joint iteration advances every still-active task with two
        sparse products instead of per-task Python work.  Counters and
        histograms record the same totals as the equivalent sequence of
        single calls (span *counts* differ: one batch = one span).
        """
        tasks = len(seed_sets)
        if tasks == 0:
            self._last_states = []
            return []
        if popularities is None:
            popularities = [None] * tasks
        if initials is None:
            initials = [None] * tasks
        if tasks == 1:
            result = self.propagate(
                seed_sets[0], popularity=popularities[0], initial=initials[0]
            )
            self._last_states = [self._last_state]
            return [result]
        with self.metrics.span("propagation"):
            return self._propagate_many(seed_sets, popularities, initials)

    def _propagate_many(self, seed_sets, popularities, initials):
        metrics = self.metrics
        csr = self.csr
        n = csr.node_count
        tasks = len(seed_sets)
        seed_set_l, seed_idx_l, off_seeds_l, off_graph_l = [], [], [], []
        betas = np.zeros(tasks, dtype=np.float64)
        p = np.zeros((tasks, n), dtype=np.float64)
        member = np.zeros((tasks, n), dtype=bool)
        seed_mask = np.zeros((tasks, n), dtype=bool)
        frontier = np.zeros((tasks, n), dtype=bool)
        for c in range(tasks):
            (
                seed_set, seed_idx, off_seeds, beta, p_c, member_c,
                seed_mask_c, off_graph, frontier_c,
            ) = self._load_task(seed_sets[c], popularities[c], initials[c])
            seed_set_l.append(seed_set)
            seed_idx_l.append(seed_idx)
            off_seeds_l.append(off_seeds)
            off_graph_l.append(off_graph)
            betas[c] = beta
            p[c] = p_c
            member[c] = member_c
            seed_mask[c] = seed_mask_c
            frontier[c, frontier_c] = True
        weights = csr.influencer_matrix()
        pattern = csr.influence_matrix()
        counts = csr.inf_counts.astype(np.float64)
        muted = np.zeros((tasks, n), dtype=bool)
        iterations = np.zeros(tasks, dtype=np.int64)
        updates = np.zeros(tasks, dtype=np.int64)
        converged = np.ones(tasks, dtype=bool)
        active = frontier.any(axis=1)
        frontier_hist = metrics.histogram("propagation.frontier")
        with metrics.span("solve"):
            while True:
                live = np.flatnonzero(active)
                if live.size == 0:
                    break
                over = live[iterations[live] >= self.max_iterations]
                if over.size:
                    converged[over] = False
                    active[over] = False
                    live = live[iterations[live] < self.max_iterations]
                    if live.size == 0:
                        break
                iterations[live] += 1
                for size in frontier[live].sum(axis=1):
                    frontier_hist.observe(int(size))
                # One sparse product marks, for every live task, the
                # users whose Def. 4.2 sum can change this round.
                indicator = frontier[live].astype(np.float64)
                dirty = (pattern @ indicator.T).T > 0
                dirty &= ~seed_mask[live]
                has_dirty = dirty.any(axis=1)
                if not has_dirty.all():
                    done = live[~has_dirty]
                    active[done] = False
                    frontier[done] = False
                    live = live[has_dirty]
                    if live.size == 0:
                        continue
                    dirty = dirty[has_dirty]
                old = p[live]
                sums = (weights @ old.T).T
                # Users without influencers divide by zero here; they can
                # never be dirty, so the masked select below discards the
                # resulting inf/nan lanes.
                with np.errstate(divide="ignore", invalid="ignore"):
                    fresh = sums / counts
                delta = np.where(dirty, np.abs(fresh - old), 0.0)
                changed = dirty & (delta > self.tolerance)
                p[live] = np.where(changed, fresh, old)
                member[live] |= changed
                updates[live] += changed.sum(axis=1)
                col_betas = betas[live, None]
                above = delta >= col_betas
                frontier[live] = changed & above & ~muted[live]
                muted[live] |= changed & ~above & (col_betas > 0.0)
                active[live] = frontier[live].any(axis=1)
        results = []
        states = []
        seeds_hist = metrics.histogram("propagation.seeds")
        touched_hist = metrics.histogram("propagation.touched")
        for c in range(tasks):
            probabilities, state = self._finish_task(
                seed_idx_l[c], off_seeds_l[c], p[c], member[c], off_graph_l[c]
            )
            results.append(
                PropagationResult(
                    probabilities=probabilities,
                    iterations=int(iterations[c]),
                    updates=int(updates[c]),
                    converged=bool(converged[c]),
                )
            )
            states.append(state)
            seeds_hist.observe(len(seed_set_l[c]))
            touched_hist.observe(len(probabilities))
        metrics.counter("propagation.runs").inc(tasks)
        metrics.counter("propagation.iterations").inc(int(iterations.sum()))
        metrics.counter("propagation.updates").inc(int(updates.sum()))
        metrics.counter("propagation.threshold_skips").inc(
            int(np.count_nonzero(muted))
        )
        failed = int(np.count_nonzero(~converged))
        if failed:
            metrics.counter("propagation.non_converged").inc(failed)
        self._last_states = states
        return results


def make_propagation_engine(
    simgraph: SimGraph,
    prop_backend: str = "reference",
    threshold: ThresholdPolicy | None = None,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
    metrics: MetricsRegistry | None = None,
    csr: CSRSimGraph | None = None,
) -> PropagationEngine | CSRPropagationEngine:
    """Construct the propagation engine for ``prop_backend``.

    ``csr`` (meaningful for the ``csr`` and ``numba`` backends) reuses
    an already-compiled structure, e.g. one patched in place by the
    weights-only maintenance strategy.  ``numba`` resolves to the jitted
    kernel engine when numba is importable (or the interpreted kernels
    when forced via ``REPRO_PROP_KERNEL=python``) and otherwise falls
    back to ``csr`` with a one-line warning and a
    ``prop.kernel.fallback`` counter bump; ``auto`` silently picks the
    fastest rung available.
    """
    # Deferred import: propagation_kernel subclasses the engine above.
    from repro.core.propagation_kernel import (
        NumbaPropagationEngine,
        describe_backends,
        resolve_prop_backend,
    )

    if prop_backend in ("numba", "auto"):
        prop_backend = resolve_prop_backend(
            prop_backend, metrics=metrics if metrics is not None else NULL
        )
    if prop_backend == "reference":
        return PropagationEngine(
            simgraph,
            threshold=threshold,
            tolerance=tolerance,
            max_iterations=max_iterations,
            metrics=metrics,
        )
    if prop_backend == "csr":
        return CSRPropagationEngine(
            simgraph,
            threshold=threshold,
            tolerance=tolerance,
            max_iterations=max_iterations,
            metrics=metrics,
            csr=csr,
        )
    if prop_backend == "numba":
        return NumbaPropagationEngine(
            simgraph,
            threshold=threshold,
            tolerance=tolerance,
            max_iterations=max_iterations,
            metrics=metrics,
            csr=csr,
        )
    raise ValueError(
        f"unknown propagation backend {prop_backend!r}; "
        f"available: {describe_backends()}"
    )
