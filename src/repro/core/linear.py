"""Linear-system view of the propagation model (paper §5.2-5.3).

The fixpoint of Definition 4.2 solves ``A p = b`` where

* ``a_ii = 1``,
* ``a_ij = -sim(u_i, u_j) / |F_{u_i}|`` when ``u_i -> u_j`` is a SimGraph
  edge,
* ``b_i = 1`` when ``u_i`` already retweeted the message, else 0.

Seed rows are replaced by identity rows (``p_i = 1`` exactly), matching
Algorithm 1's "probability 1, never recomputed" semantics.

Because every ``sim < 1`` and each row is normalized by ``|F_u|``, the
off-diagonal mass of a row is strictly below 1: ``A`` is strictly
diagonally dominant, so Jacobi, Gauss-Seidel and SOR all converge (§5.3).
This module provides the matrix assembly, the three stationary solvers,
and the dominance / spectral-radius diagnostics the paper discusses
(they measure ``||A|| = 0.91`` on their data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from repro.core.simgraph import SimGraph
from repro.exceptions import ConvergenceError
from repro.obs import NULL, MetricsRegistry

__all__ = ["LinearSystem", "SolveStats"]


@dataclass(frozen=True)
class SolveStats:
    """Probabilities plus solver diagnostics."""

    probabilities: dict[int, float]
    iterations: int
    residual: float
    method: str


class LinearSystem:
    """The ``A p = b`` system of one SimGraph.

    The matrix skeleton (index maps and the off-diagonal similarity
    entries) is assembled once per SimGraph and reused across tweets —
    only the seed vector ``b`` changes per message.

    ``metrics`` (default: the no-op :data:`repro.obs.NULL`) collects one
    ``linear.*`` span per solver entry point, sweep counters for the
    stationary methods, batch-size histograms for the multi-RHS paths and
    a last-residual gauge.
    """

    def __init__(self, simgraph: SimGraph, metrics: MetricsRegistry | None = None):
        self.simgraph = simgraph
        self.metrics = metrics if metrics is not None else NULL
        self._users = sorted(simgraph.users())
        self._index = {user: i for i, user in enumerate(self._users)}
        n = len(self._users)
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for u in self._users:
            i = self._index[u]
            influencers = simgraph.influencers(u)
            if not influencers:
                continue
            inv_count = 1.0 / len(influencers)
            for v, sim in influencers:
                rows.append(i)
                cols.append(self._index[v])
                vals.append(sim * inv_count)
        # S holds the positive off-diagonal mass; A = I - S (seed rows
        # are patched at solve time).
        self._S = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(n, n), dtype=np.float64
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of unknowns (users in the SimGraph)."""
        return len(self._users)

    @property
    def users(self) -> list[int]:
        """Users in index order."""
        return list(self._users)

    def matrix(self, seeds: Iterable[int] = ()) -> sparse.csr_matrix:
        """The full ``A`` for a given seed set (identity rows for seeds)."""
        seed_idx = self._seed_indexes(seeds)
        S = self._S.tolil(copy=True)
        for i in seed_idx:
            S.rows[i] = []
            S.data[i] = []
        A = sparse.identity(self.size, format="csr") - S.tocsr()
        return A.tocsr()

    def _seed_indexes(self, seeds: Iterable[int]) -> list[int]:
        return [self._index[s] for s in seeds if s in self._index]

    def _rhs(self, seed_idx: list[int]) -> np.ndarray:
        b = np.zeros(self.size, dtype=np.float64)
        b[seed_idx] = 1.0
        return b

    # ------------------------------------------------------------------
    # Diagnostics (§5.3)
    # ------------------------------------------------------------------
    def is_diagonally_dominant(self) -> bool:
        """Strict diagonal dominance of ``A`` — the convergence condition."""
        off_diagonal = np.abs(self._S).sum(axis=1).A1  # type: ignore[union-attr]
        return bool((off_diagonal < 1.0).all())

    def iteration_norm(self) -> float:
        """Infinity norm of the Jacobi iteration matrix.

        This is the quantity the paper bounds experimentally (0.91 on
        their dataset): the worst-case per-iteration error contraction.
        """
        if self.size == 0:
            return 0.0
        off_diagonal = np.abs(self._S).sum(axis=1).A1  # type: ignore[union-attr]
        return float(off_diagonal.max())

    def spectral_radius_estimate(self, iterations: int = 50, seed: int = 0) -> float:
        """Power-iteration estimate of the iteration matrix's spectral radius."""
        if self.size == 0:
            return 0.0
        rng = np.random.default_rng(seed)
        x = rng.random(self.size)
        norm = np.linalg.norm(x)
        if norm == 0:
            return 0.0
        x /= norm
        radius = 0.0
        for _ in range(iterations):
            y = self._S @ x
            norm = float(np.linalg.norm(y))
            if norm == 0:
                return 0.0
            radius = norm
            x = y / norm
        return radius

    # ------------------------------------------------------------------
    # Solvers
    # ------------------------------------------------------------------
    def solve_many_jacobi(
        self,
        seed_sets: list[set[int]],
        tolerance: float = 1e-10,
        max_iterations: int = 500,
    ) -> list[dict[int, float]]:
        """Solve many tweets' systems in one vectorized Jacobi sweep.

        All columns share the matrix ``S``; each column is one tweet's
        probability vector.  Seed rows are pinned per column by masking,
        so one sparse mat-mat product per iteration advances every tweet —
        the batch path for offline scoring of a message backlog.
        """
        if not seed_sets:
            return []
        metrics = self.metrics
        metrics.histogram("linear.batch_size").observe(len(seed_sets))
        n, m = self.size, len(seed_sets)
        B = np.zeros((n, m), dtype=np.float64)
        seed_mask = np.zeros((n, m), dtype=bool)
        for j, seeds in enumerate(seed_sets):
            for s in seeds:
                i = self._index.get(s)
                if i is not None:
                    B[i, j] = 1.0
                    seed_mask[i, j] = True
        P = B.copy()
        with metrics.span("linear.batch_jacobi"):
            for iteration in range(max_iterations):
                P_next = self._S @ P + B
                P_next[seed_mask] = 1.0
                delta = float(np.abs(P_next - P).max()) if n else 0.0
                P = P_next
                if delta <= tolerance:
                    break
            else:
                raise ConvergenceError(
                    f"batch Jacobi did not converge in {max_iterations} iterations"
                )
        metrics.counter("linear.sweeps").inc(iteration + 1)
        metrics.gauge("linear.residual").set(delta)
        results: list[dict[int, float]] = []
        for j in range(m):
            column = P[:, j]
            results.append(
                {
                    user: float(column[i])
                    for user, i in self._index.items()
                    if column[i] > 0.0
                }
            )
        return results

    #: Past this many stacked unknowns the block-diagonal factorization's
    #: superlinear ordering/fill cost outweighs the amortized call
    #: overhead, and per-block solves win.
    _STACK_LIMIT = 20_000

    def solve_many_direct(
        self, seed_sets: list[set[int]]
    ) -> list[dict[int, float]]:
        """Solve many tweets' systems directly, batched.

        Unlike a classic multi-RHS solve, each seed set pins different
        rows of ``A`` (seed rows become identity rows), so the per-tweet
        matrices differ.  Small batches are stacked into one
        block-diagonal system and handed to a single ``spsolve`` call;
        when the stacked system would exceed ``_STACK_LIMIT`` unknowns
        each block is solved on its own (one big factorization costs more
        than the per-call overhead it saves).  Either way the result is
        the exact solution — this is the batch path the service uses to
        score a backlog of live tweets at once (``solve_many_jacobi`` is
        the iterative counterpart).
        """
        if not seed_sets:
            return []
        if self.size == 0:
            return [{} for _ in seed_sets]
        self.metrics.histogram("linear.batch_size").observe(len(seed_sets))
        with self.metrics.span("linear.batch_direct"):
            blocks = []
            rhs = []
            for seeds in seed_sets:
                blocks.append(self.matrix(seeds))
                rhs.append(self._rhs(self._seed_indexes(seeds)))
            if self.size * len(seed_sets) <= self._STACK_LIMIT:
                A = sparse.block_diag(blocks, format="csc")
                p = np.atleast_1d(spsolve(A, np.concatenate(rhs)))
                columns = [
                    p[j * self.size : (j + 1) * self.size]
                    for j in range(len(seed_sets))
                ]
            else:
                columns = [
                    np.atleast_1d(spsolve(block.tocsc(), b))
                    for block, b in zip(blocks, rhs)
                ]
        results: list[dict[int, float]] = []
        for column in columns:
            results.append(
                {
                    user: float(column[i])
                    for user, i in self._index.items()
                    if column[i] > 0.0
                }
            )
        return results

    def solve_direct(self, seeds: Iterable[int]) -> SolveStats:
        """Sparse LU reference solution (exact up to machine precision)."""
        with self.metrics.span("linear.direct"):
            seed_idx = self._seed_indexes(seeds)
            A = self.matrix(seeds)
            b = self._rhs(seed_idx)
            p = spsolve(A.tocsc(), b)
            p = np.atleast_1d(p)
            residual = float(np.abs(A @ p - b).max()) if self.size else 0.0
        return self._stats(p, iterations=1, residual=residual, method="direct")

    def solve_jacobi(
        self,
        seeds: Iterable[int],
        tolerance: float = 1e-10,
        max_iterations: int = 500,
    ) -> SolveStats:
        """Jacobi iteration: ``p' = S p + b`` (diag(A) = 1)."""
        seed_idx = self._seed_indexes(seeds)
        S = self._zeroed_seed_rows(seed_idx)
        b = self._rhs(seed_idx)
        p = b.copy()
        with self.metrics.span("linear.jacobi"):
            for iteration in range(1, max_iterations + 1):
                p_next = S @ p + b
                delta = float(np.abs(p_next - p).max()) if self.size else 0.0
                p = p_next
                if delta <= tolerance:
                    return self._stats(p, iteration, delta, "jacobi")
        raise ConvergenceError(
            f"Jacobi did not converge in {max_iterations} iterations"
        )

    def solve_gauss_seidel(
        self,
        seeds: Iterable[int],
        tolerance: float = 1e-10,
        max_iterations: int = 500,
    ) -> SolveStats:
        """Gauss-Seidel: like Jacobi but consumes fresh values in-row."""
        return self._sor_sweep(seeds, omega=1.0, tolerance=tolerance,
                               max_iterations=max_iterations, method="gauss-seidel")

    def solve_sor(
        self,
        seeds: Iterable[int],
        omega: float | None = None,
        tolerance: float = 1e-10,
        max_iterations: int = 500,
    ) -> SolveStats:
        """Successive over-relaxation with factor ``omega`` in (0, 2).

        ``A`` here is strictly diagonally dominant but *not* symmetric, so
        over-relaxation is only guaranteed to converge for
        ``omega < 2 / (1 + rho)`` with ``rho`` the Jacobi iteration norm
        (the H-matrix/SOR bound); beyond it the sweep can genuinely
        diverge on adversarial graphs.  ``omega=None`` (default) uses 1.2
        capped to just inside the guaranteed region for this system.
        Passing an explicit ``omega`` overrides the cap (and may raise
        :class:`ConvergenceError`).
        """
        if omega is None:
            rho = self.iteration_norm()
            omega = min(1.2, 1.999 / (1.0 + rho)) if rho > 0 else 1.2
        if not 0.0 < omega < 2.0:
            raise ValueError(f"omega must be in (0, 2), got {omega}")
        return self._sor_sweep(seeds, omega=omega, tolerance=tolerance,
                               max_iterations=max_iterations, method="sor")

    def _sor_sweep(
        self,
        seeds: Iterable[int],
        omega: float,
        tolerance: float,
        max_iterations: int,
        method: str,
    ) -> SolveStats:
        seed_idx = self._seed_indexes(seeds)
        S = self._zeroed_seed_rows(seed_idx)
        b = self._rhs(seed_idx)
        p = b.copy()
        indptr, indices, data = S.indptr, S.indices, S.data
        with self.metrics.span(f"linear.{method}"):
            for iteration in range(1, max_iterations + 1):
                delta = 0.0
                for i in range(self.size):
                    row = slice(indptr[i], indptr[i + 1])
                    gs_value = b[i] + float(data[row] @ p[indices[row]])
                    new_value = (1.0 - omega) * p[i] + omega * gs_value
                    delta = max(delta, abs(new_value - p[i]))
                    p[i] = new_value
                if delta <= tolerance:
                    return self._stats(p, iteration, delta, method)
        raise ConvergenceError(
            f"{method} did not converge in {max_iterations} iterations"
        )

    def _zeroed_seed_rows(self, seed_idx: list[int]) -> sparse.csr_matrix:
        if not seed_idx:
            return self._S
        S = self._S.tolil(copy=True)
        for i in seed_idx:
            S.rows[i] = []
            S.data[i] = []
        return S.tocsr()

    def _stats(
        self, p: np.ndarray, iterations: int, residual: float, method: str
    ) -> SolveStats:
        if method != "direct":
            self.metrics.counter("linear.sweeps").inc(iterations)
        self.metrics.gauge("linear.residual").set(residual)
        probabilities = {
            user: float(p[i]) for user, i in self._index.items() if p[i] > 0.0
        }
        return SolveStats(
            probabilities=probabilities,
            iterations=iterations,
            residual=residual,
            method=method,
        )
