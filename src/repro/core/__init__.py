"""The paper's contribution: similarity measure, SimGraph construction,
propagation model (iterative + linear-system views), threshold policies,
postponed scheduling, the end-to-end recommender and the incremental
maintenance strategies."""

from repro.core.coldstart import ColdStartAugmenter
from repro.core.csr import CSRSimGraph
from repro.core.delta import (
    DeltaPlan,
    DeltaReport,
    affected_region,
    apply_delta,
)
from repro.core.linear import LinearSystem, SolveStats
from repro.core.persistence import load_simgraph, save_simgraph
from repro.core.profiles import RetweetProfiles
from repro.core.propagation import PropagationEngine, PropagationResult
from repro.core.propagation_csr import (
    PROP_BACKENDS,
    CSRPropagationEngine,
    CSRWarmState,
    make_propagation_engine,
)
from repro.core.propagation_kernel import (
    NUMBA_AVAILABLE,
    NumbaPropagationEngine,
    describe_backends,
    kernel_mode,
    resolve_prop_backend,
)
from repro.core.recommender import SimGraphRecommender
from repro.core.scheduler import DelayPolicy, PostponedScheduler, PropagationTask
from repro.core.simgraph import BACKENDS, DEFAULT_TAU, SimGraph, SimGraphBuilder
from repro.core.simmatrix import SimilarityMatrix
from repro.core.similarity import (
    pairwise_similarities,
    similarities_from,
    similarity,
)
from repro.core.thresholds import (
    DynamicThreshold,
    NoThreshold,
    StaticThreshold,
    ThresholdPolicy,
)
from repro.core.topics import (
    TopicAssignment,
    merge_by_coretweeters,
    merge_by_label,
    topic_profiles,
)
from repro.core.update import (
    ALL_STRATEGIES,
    SCOPED_STRATEGIES,
    STRATEGIES,
    apply_strategy,
)
from repro.core.warmcache import WarmStateCache

__all__ = [
    "ALL_STRATEGIES",
    "BACKENDS",
    "CSRPropagationEngine",
    "CSRSimGraph",
    "CSRWarmState",
    "ColdStartAugmenter",
    "DEFAULT_TAU",
    "DelayPolicy",
    "DeltaPlan",
    "DeltaReport",
    "DynamicThreshold",
    "LinearSystem",
    "NUMBA_AVAILABLE",
    "NoThreshold",
    "NumbaPropagationEngine",
    "PROP_BACKENDS",
    "PostponedScheduler",
    "PropagationEngine",
    "PropagationResult",
    "PropagationTask",
    "RetweetProfiles",
    "SCOPED_STRATEGIES",
    "STRATEGIES",
    "SimGraph",
    "SimGraphBuilder",
    "SimGraphRecommender",
    "SimilarityMatrix",
    "SolveStats",
    "StaticThreshold",
    "ThresholdPolicy",
    "TopicAssignment",
    "WarmStateCache",
    "describe_backends",
    "kernel_mode",
    "make_propagation_engine",
    "merge_by_coretweeters",
    "resolve_prop_backend",
    "merge_by_label",
    "topic_profiles",
    "affected_region",
    "apply_delta",
    "apply_strategy",
    "load_simgraph",
    "pairwise_similarities",
    "save_simgraph",
    "similarities_from",
    "similarity",
]
