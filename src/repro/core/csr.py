"""Compiled CSR form of the SimGraph.

The dict-of-dict :class:`~repro.graph.digraph.DiGraph` behind a
:class:`~repro.core.simgraph.SimGraph` is ideal for incremental
construction but slow to *propagate* over: Algorithm 1 spends its time
gathering influencer lists and predecessor sets, and every lookup pays
Python dict overhead.  This module freezes a finished SimGraph into flat
numpy arrays — the sparse-matrix formulation the influence-propagation
literature uses for exactly this cascade structure (ten Thij et al.,
arXiv:1502.00166; Nguyen & Zheng, arXiv:1307.4264):

* a contiguous **user index** (position ``i`` <-> user id ``users[i]``,
  in graph insertion order so compilation is deterministic);
* the **influencer direction** as CSR rows: row ``i`` lists ``F_u`` of
  ``users[i]`` with similarity weights, *in the same order the DiGraph
  stores them* — segment sums over these rows are then bit-identical to
  the reference engine's sequential Python ``sum``;
* the **influenced direction** (the CSR transpose): row ``i`` lists the
  users that ``users[i]`` influences, which is what frontier expansion
  consumes.

A compiled graph is immutable in structure; the §6.3 *weights-only*
maintenance strategy (``"SimGraph updated"``) keeps the topology fixed,
so :meth:`CSRSimGraph.patch_weights` can refresh the weight array in
place instead of recompiling — the incremental path the service uses at
rebuild time.  The delta maintenance engine goes one step further: its
:class:`~repro.core.delta.DeltaReport` names exactly the rows whose
weights moved, and :meth:`CSRSimGraph.patch_rows` rewrites only those
row segments — O(changed edges) instead of O(all edges) per rebuild.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.core.simgraph import SimGraph
from repro.graph.digraph import DiGraph

__all__ = ["ArraySimGraph", "CSRSimGraph", "gather_ranges"]


def gather_ranges(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat element positions of CSR ``rows``, plus segment layout.

    Returns ``(flat, seg_starts, lengths)`` where ``flat`` indexes the
    CSR data arrays for every element of every requested row (rows
    concatenated in the order given), ``seg_starts`` are the offsets of
    each row's segment inside ``flat`` (ready for ``np.add.reduceat``)
    and ``lengths`` are the per-row element counts.
    """
    starts = indptr[rows]
    lengths = indptr[rows + 1] - starts
    total = int(lengths.sum())
    seg_starts = np.zeros(len(rows), dtype=np.int64)
    if len(rows) > 1:
        np.cumsum(lengths[:-1], out=seg_starts[1:])
    if total == 0:
        return np.empty(0, dtype=np.int64), seg_starts, lengths
    flat = np.repeat(starts - seg_starts, lengths) + np.arange(
        total, dtype=np.int64
    )
    return flat, seg_starts, lengths


class CSRSimGraph:
    """A :class:`SimGraph` frozen into flat numpy CSR arrays.

    Attributes
    ----------
    users:
        ``int64[n]`` — position -> user id (graph insertion order).
    index:
        user id -> position (inverse of ``users``).
    inf_indptr / inf_indices / inf_weights:
        CSR of the influencer direction: row ``i`` holds the positions
        and similarities of ``F_u`` for ``users[i]``, preserving the
        DiGraph's edge order.
    inf_counts:
        ``int64[n]`` — ``|F_u|`` per row (the Def. 4.2 divisor).
    out_indptr / out_indices:
        CSR of the influenced direction (transpose): row ``i`` holds the
        positions of the users ``users[i]`` influences.
    """

    __slots__ = (
        "users", "index", "inf_indptr", "inf_indices", "inf_weights",
        "inf_counts", "out_indptr", "out_indices", "_inf_matrix",
        "_out_matrix",
    )

    def __init__(
        self,
        users: np.ndarray,
        inf_indptr: np.ndarray,
        inf_indices: np.ndarray,
        inf_weights: np.ndarray,
    ):
        self.users = users
        self.index = {int(u): i for i, u in enumerate(users.tolist())}
        self.inf_indptr = inf_indptr
        self.inf_indices = inf_indices
        self.inf_weights = inf_weights
        self.inf_counts = np.diff(inf_indptr)
        n = len(users)
        # Transpose: edge (row u -> influencer v) means "v influences u",
        # so bucket edge rows by their target position.  The stable sort
        # keeps each bucket in edge order — deterministic compilation.
        order = np.argsort(inf_indices, kind="stable")
        edge_rows = np.repeat(np.arange(n, dtype=np.int64), self.inf_counts)
        self.out_indices = edge_rows[order]
        out_counts = np.bincount(inf_indices, minlength=n)
        self.out_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(out_counts, out=self.out_indptr[1:])
        self._inf_matrix = None
        self._out_matrix = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_simgraph(cls, simgraph: SimGraph) -> "CSRSimGraph":
        """Compile ``simgraph`` (one pass over its nodes and edges)."""
        graph = simgraph.graph
        n = graph.node_count
        users = np.fromiter(graph.nodes(), dtype=np.int64, count=n)
        index = {int(u): i for i, u in enumerate(users.tolist())}
        m = graph.edge_count
        indptr = np.zeros(n + 1, dtype=np.int64)
        indices = np.empty(m, dtype=np.int64)
        weights = np.empty(m, dtype=np.float64)
        pos = 0
        for i, u in enumerate(users.tolist()):
            for v, w in graph.out_edges(u):
                indices[pos] = index[v]
                weights[pos] = w
                pos += 1
            indptr[i + 1] = pos
        return cls(users, indptr, indices, weights)

    def patch_weights(self, simgraph: SimGraph) -> bool:
        """Refresh weights in place when ``simgraph`` has this topology.

        Returns True (and rewrites ``inf_weights``) when the node
        sequence and every per-row edge sequence match the compiled
        structure — the §6.3 *weights-only* update keeps topology fixed,
        so a maintenance rebuild can skip recompilation.  Returns False
        (structure untouched) on any mismatch, or when the weight array
        is read-only (a memory-mapped snapshot); the caller recompiles.
        """
        if not self.inf_weights.flags.writeable:
            return False
        graph = simgraph.graph
        if graph.node_count != len(self.users):
            return False
        if graph.edge_count != len(self.inf_indices):
            return False
        refreshed = np.empty_like(self.inf_weights)
        pos = 0
        indices = self.inf_indices
        for i, u in enumerate(self.users.tolist()):
            if u not in graph:
                return False
            row_end = int(self.inf_indptr[i + 1])
            for v, w in graph.out_edges(u):
                j = self.index.get(v)
                if j is None or pos >= row_end or indices[pos] != j:
                    return False
                refreshed[pos] = w
                pos += 1
            if pos != row_end:
                return False
        self.inf_weights[:] = refreshed
        self._inf_matrix = None
        return True

    def patch_rows(self, simgraph: SimGraph, users: Iterable[int]) -> bool:
        """Refresh only the named rows' weights in place.

        The delta maintenance engine reports exactly which users' rows
        changed; when no row changed topology, only those segments of
        ``inf_weights`` need rewriting — O(changed edges) instead of the
        full-array verify of :meth:`patch_weights`.  Every named row is
        verified against the compiled structure (same targets, same
        order) before anything is written; on any mismatch — a named
        user absent from the graph or the index, or a row whose edge
        sequence drifted — the structure is left untouched and False is
        returned so the caller can fall back to the full patch or a
        recompile.  Global node/edge counts are checked first: a count
        drift means topology changed somewhere, named or not.  A
        read-only weight array (memory-mapped snapshot) also returns
        False — mmap-loaded structures are never patched in place.
        """
        if not self.inf_weights.flags.writeable:
            return False
        graph = simgraph.graph
        if graph.node_count != len(self.users):
            return False
        if graph.edge_count != len(self.inf_indices):
            return False
        indices = self.inf_indices
        updates: list[tuple[int, np.ndarray]] = []
        for u in users:
            i = self.index.get(u)
            if i is None or u not in graph:
                return False
            lo = int(self.inf_indptr[i])
            hi = int(self.inf_indptr[i + 1])
            fresh = np.empty(hi - lo, dtype=np.float64)
            pos = lo
            for v, w in graph.out_edges(u):
                j = self.index.get(v)
                if j is None or pos >= hi or indices[pos] != j:
                    return False
                fresh[pos - lo] = w
                pos += 1
            if pos != hi:
                return False
            updates.append((lo, fresh))
        for lo, fresh in updates:
            self.inf_weights[lo : lo + len(fresh)] = fresh
        self._inf_matrix = None
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of compiled users."""
        return len(self.users)

    @property
    def edge_count(self) -> int:
        """Number of compiled similarity edges."""
        return len(self.inf_indices)

    def __contains__(self, user: int) -> bool:
        return user in self.index

    def influencer_matrix(self):
        """``scipy`` CSR with row ``u`` = influencer weights of ``u``.

        ``(W @ P)[u]`` is the Def. 4.2 numerator for every user at once —
        the batched scoring path's workhorse.  Built lazily and cached.
        """
        if self._inf_matrix is None:
            from scipy import sparse

            n = len(self.users)
            self._inf_matrix = sparse.csr_matrix(
                (self.inf_weights, self.inf_indices, self.inf_indptr),
                shape=(n, n),
            )
        return self._inf_matrix

    def influence_matrix(self):
        """Binarized influencer pattern: ``(M @ f)[u] > 0`` iff some
        member of the frontier indicator ``f`` influences ``u`` — one
        sparse product computes the next dirty set for a whole batch of
        propagations at once.  Built lazily and cached.
        """
        if self._out_matrix is None:
            from scipy import sparse

            n = len(self.users)
            self._out_matrix = sparse.csr_matrix(
                (
                    np.ones(len(self.inf_indices), dtype=np.float64),
                    self.inf_indices,
                    self.inf_indptr,
                ),
                shape=(n, n),
            )
        return self._out_matrix

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CSRSimGraph(nodes={self.node_count}, edges={self.edge_count})"
        )


class ArraySimGraph(SimGraph):
    """A :class:`SimGraph` whose edges live in flat CSR arrays.

    The snapshot format v2 loader (:func:`repro.core.persistence.
    load_simgraph` with ``mmap=True``) and the scale benchmarks build
    graphs directly from ``(users, indptr, indices, weights)`` arrays —
    possibly ``np.memmap``-backed, so a million-edge graph "loads" in
    the time it takes to parse a header.  This class is the SimGraph
    face of those arrays:

    * count/membership/row queries are answered from the arrays (plus a
      lazily built id index) without ever touching a dict adjacency;
    * :meth:`csr` compiles the :class:`CSRSimGraph` the ``csr``
      propagation backend consumes — sharing the arrays zero-copy;
    * ``.graph`` materializes the dict-of-dict :class:`DiGraph` on
      first access, so every legacy consumer (reference propagation,
      delta maintenance, Table-4 reporting) still works — it just pays
      the materialization cost once, and only if it really needs it.

    Rows keep the array order, so ``csr()`` and
    ``CSRSimGraph.from_simgraph(self)`` (via the materialized DiGraph)
    compile bit-identical structures.
    """

    def __init__(
        self,
        users: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        tau: float,
    ):
        n = len(users)
        if len(indptr) != n + 1:
            raise ValueError(
                f"indptr must have {n + 1} entries, got {len(indptr)}"
            )
        if len(indices) != len(weights):
            raise ValueError(
                f"indices ({len(indices)}) and weights ({len(weights)}) "
                "must have the same length"
            )
        self._users_arr = users
        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self.tau = float(tau)
        self._graph_cache: DiGraph | None = None
        self._csr_cache: CSRSimGraph | None = None
        self._id_index: dict[int, int] | None = None

    # ------------------------------------------------------------------
    # Array-native queries (no DiGraph materialization)
    # ------------------------------------------------------------------
    def _index(self) -> dict[int, int]:
        if self._csr_cache is not None:
            return self._csr_cache.index
        if self._id_index is None:
            self._id_index = {
                int(u): i for i, u in enumerate(self._users_arr.tolist())
            }
        return self._id_index

    @property
    def node_count(self) -> int:
        return len(self._users_arr)

    @property
    def edge_count(self) -> int:
        return len(self._indices)

    def __contains__(self, user: int) -> bool:
        return user in self._index()

    def users(self) -> Iterator[int]:
        return iter(self._users_arr.tolist())

    def influencers(self, user: int) -> tuple[tuple[int, float], ...]:
        i = self._index().get(user)
        if i is None:
            return ()
        lo, hi = int(self._indptr[i]), int(self._indptr[i + 1])
        targets = self._users_arr[self._indices[lo:hi]].tolist()
        return tuple(zip(targets, self._weights[lo:hi].tolist()))

    def influencer_count(self, user: int) -> int:
        i = self._index().get(user)
        if i is None:
            return 0
        return int(self._indptr[i + 1] - self._indptr[i])

    def row(self, user: int) -> dict[int, float]:
        return dict(self.influencers(user))

    def similarity(self, u: int, v: int) -> float:
        for target, weight in self.influencers(u):
            if target == v:
                return weight
        return 0.0

    def mean_similarity(self) -> float:
        if len(self._weights) == 0:
            return 0.0
        return float(np.mean(self._weights))

    def arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(users, indptr, indices, weights)`` — the raw CSR sections."""
        return self._users_arr, self._indptr, self._indices, self._weights

    def csr(self) -> CSRSimGraph:
        """The compiled structure for the ``csr`` propagation backend.

        Built lazily and cached; shares the underlying arrays zero-copy
        (a memory-mapped snapshot stays on disk until rows are touched).
        """
        if self._csr_cache is None:
            self._csr_cache = CSRSimGraph(
                self._users_arr, self._indptr, self._indices, self._weights
            )
        return self._csr_cache

    # ------------------------------------------------------------------
    # Legacy dict-adjacency face
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The dict-of-dict adjacency, materialized on first access."""
        if self._graph_cache is None:
            graph = DiGraph()
            users = self._users_arr.tolist()
            graph.add_nodes(users)
            indptr = self._indptr
            for i, u in enumerate(users):
                lo, hi = int(indptr[i]), int(indptr[i + 1])
                if lo == hi:
                    continue
                graph.set_row(
                    u,
                    {
                        users[j]: w
                        for j, w in zip(
                            self._indices[lo:hi].tolist(),
                            self._weights[lo:hi].tolist(),
                        )
                    },
                )
            self._graph_cache = graph
        return self._graph_cache

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ArraySimGraph(nodes={self.node_count}, "
            f"edges={self.edge_count}, tau={self.tau})"
        )
