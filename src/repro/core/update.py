"""Incremental SimGraph maintenance strategies (paper §6.3, Figure 16).

The experiment: a SimGraph is built after 90% of the retweet stream; the
90-95% slice then arrives, and we compare four ways of absorbing it before
evaluating on the final 5%:

* **from_scratch** — full rebuild on the follow graph with updated
  profiles (upper bound, most expensive);
* **old_simgraph** — keep the stale graph untouched (lower bound, free);
* **crossfold** — rerun the 2-hop construction *on the previous SimGraph*
  instead of the follow graph: finds new influential users reachable
  through similarity paths while refreshing weights, at a fraction of the
  rebuild cost;
* **update_weights** — keep the old topology, recompute edge weights only;
* **delta** — edge-identical to *from scratch* but driven by the
  profiles' dirty sets (:mod:`repro.core.delta`): only the affected
  region — dirty users, co-retweeters of weight-changed tweets and
  their exploration fringe — is rescored; everything else is copied
  through untouched.

The *scoped* registry holds delta-accelerated variants of the two
incremental strategies: they consume the same affected region to skip
every pair whose similarity cannot have changed, instead of scanning
all users.
"""

from __future__ import annotations

from typing import Callable

from repro.core.delta import affected_region, apply_delta
from repro.core.profiles import RetweetProfiles
from repro.core.simgraph import SimGraph, SimGraphBuilder
from repro.data.models import Retweet
from repro.graph.digraph import DiGraph

__all__ = [
    "from_scratch",
    "old_simgraph",
    "crossfold",
    "update_weights",
    "delta",
    "crossfold_scoped",
    "update_weights_scoped",
    "STRATEGIES",
    "SCOPED_STRATEGIES",
    "ALL_STRATEGIES",
    "UpdateStrategy",
    "apply_strategy",
]

#: Signature shared by all strategies: (old graph, follow graph, updated
#: profiles, builder) -> refreshed graph.
UpdateStrategy = Callable[
    [SimGraph, DiGraph, RetweetProfiles, SimGraphBuilder], SimGraph
]


def from_scratch(
    old: SimGraph,
    follow_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
) -> SimGraph:
    """Full rebuild from the follow graph (ignores ``old`` entirely)."""
    return builder.build(follow_graph, profiles)


def old_simgraph(
    old: SimGraph,
    follow_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
) -> SimGraph:
    """No maintenance: keep the stale similarity graph as-is."""
    return old


def crossfold(
    old: SimGraph,
    follow_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
) -> SimGraph:
    """2-hop exploration of the *previous SimGraph* with fresh profiles.

    New influential users two similarity-hops away become direct edges,
    densifying the graph, and every retained edge gets a recomputed
    weight — the strategy Figure 16 shows tracking *from scratch* almost
    perfectly at a much lower cost (it explores the SimGraph, whose
    out-degree is ~6, instead of the follow graph, whose 2-hop
    neighbourhoods are thousands of users).
    """
    return builder.build(old.graph, profiles)


def update_weights(
    old: SimGraph,
    follow_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
) -> SimGraph:
    """Keep the old topology; recompute every edge weight.

    Edges whose refreshed similarity falls below τ are kept at their new
    (lower) weight: the experiment isolates *weight drift* from *topology
    drift*, and the paper finds topology is what matters.
    """
    from repro.core.similarity import similarity

    refreshed = DiGraph()
    refreshed.add_nodes(old.graph.nodes())
    for u, v, _ in old.graph.edges():
        refreshed.add_edge(u, v, weight=similarity(profiles, u, v))
    return SimGraph(refreshed, tau=old.tau)


def delta(
    old: SimGraph,
    follow_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
) -> SimGraph:
    """Dirty-set-driven rebuild, edge-identical to :func:`from_scratch`.

    Reads the profiles' dirty sets (everything added since the last
    :meth:`~repro.core.profiles.RetweetProfiles.mark_clean`), rescores
    only the affected region and copies every other row from ``old``.
    With an empty delta this is the identity.  See
    :func:`repro.core.delta.apply_delta` for the exactness argument.
    """
    refreshed, _ = apply_delta(old, follow_graph, profiles, builder)
    return refreshed


def update_weights_scoped(
    old: SimGraph,
    follow_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
) -> SimGraph:
    """:func:`update_weights` restricted to the pairs that can change.

    An edge (u, v) keeps its stored weight unless ``u`` or ``v`` is in
    the affected-region core — exactly the pairs Def. 3.1 allows to
    move.  Equivalent to the full scan up to last-ulp round-off (the
    full scan recomputes unchanged pairs through ``similarity`` while
    this keeps the builder-accumulated weight; both orderings of the
    same sum).  With an empty delta it returns ``old`` unchanged.
    """
    from repro.core.similarity import similarity

    plan = affected_region(profiles, old.graph, hops=builder.hops)
    if plan.is_empty:
        return old
    core = plan.core
    refreshed = DiGraph()
    refreshed.add_nodes(old.graph.nodes())
    for u, v, w in old.graph.edges():
        if u in core or v in core:
            w = similarity(profiles, u, v)
        refreshed.add_edge(u, v, weight=w)
    return SimGraph(refreshed, tau=old.tau)


def crossfold_scoped(
    old: SimGraph,
    follow_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
) -> SimGraph:
    """:func:`crossfold` restricted to the affected region.

    Sources in the core or its SimGraph 2-hop in-fringe get their full
    crossfold row (identical to the full scan's row for those sources);
    untouched sources keep their previous rows — their pair scores are
    unchanged, so the only thing deferred is pure transitive
    *densification* of clean users, which the next full build (or their
    own future dirt) picks up.  The scoped result is therefore an
    edge-subset of the full crossfold with equal weights on every
    shared edge.  With an empty delta it returns ``old`` unchanged
    (the full scan would densify even then).
    """
    plan = affected_region(profiles, old.graph, hops=builder.hops)
    if plan.is_empty:
        return old
    recompute = {u for u in plan.affected if u in old.graph}
    rebuilt = builder.build(old.graph, profiles, users=sorted(recompute))
    result = DiGraph()
    for u in old.graph.nodes():
        row = rebuilt.row(u) if u in recompute else old.row(u)
        for w, score in row.items():
            result.add_edge(u, w, weight=score)
    return SimGraph(result, tau=old.tau)


#: Name -> strategy map in the order Figure 16 plots them (the four
#: paper strategies plus the delta engine's from-scratch-equivalent).
STRATEGIES: dict[str, UpdateStrategy] = {
    "from scratch": from_scratch,
    "old SimGraph": old_simgraph,
    "crossfold": crossfold,
    "SimGraph updated": update_weights,
    "delta": delta,
}

#: Delta-accelerated variants of the incremental strategies: same
#: refresh decisions, restricted to the affected region.
SCOPED_STRATEGIES: dict[str, UpdateStrategy] = {
    "crossfold scoped": crossfold_scoped,
    "SimGraph updated scoped": update_weights_scoped,
}

#: Every strategy name the service and ``apply_strategy`` accept.
ALL_STRATEGIES: dict[str, UpdateStrategy] = {
    **STRATEGIES,
    **SCOPED_STRATEGIES,
}


def apply_strategy(
    name: str,
    old: SimGraph,
    follow_graph: DiGraph,
    train: list[Retweet],
    extra: list[Retweet],
    builder: SimGraphBuilder | None = None,
) -> SimGraph:
    """Convenience: refresh ``old`` with strategy ``name``.

    ``train`` is the stream the old graph was built from; ``extra`` is the
    newly arrived slice (the 90-95% window in Figure 16).  The profiles
    are checkpointed between the two, so the dirty-set-driven strategies
    see exactly ``extra`` as the delta.
    """
    if name not in ALL_STRATEGIES:
        raise KeyError(
            f"unknown strategy {name!r}; available: {sorted(ALL_STRATEGIES)}"
        )
    if builder is None:
        builder = SimGraphBuilder(tau=old.tau)
    profiles = RetweetProfiles(train)
    profiles.mark_clean()
    profiles.extend(extra)
    return ALL_STRATEGIES[name](old, follow_graph, profiles, builder)
