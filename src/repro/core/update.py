"""Incremental SimGraph maintenance strategies (paper §6.3, Figure 16).

The experiment: a SimGraph is built after 90% of the retweet stream; the
90-95% slice then arrives, and we compare four ways of absorbing it before
evaluating on the final 5%:

* **from_scratch** — full rebuild on the follow graph with updated
  profiles (upper bound, most expensive);
* **old_simgraph** — keep the stale graph untouched (lower bound, free);
* **crossfold** — rerun the 2-hop construction *on the previous SimGraph*
  instead of the follow graph: finds new influential users reachable
  through similarity paths while refreshing weights, at a fraction of the
  rebuild cost;
* **update_weights** — keep the old topology, recompute edge weights only.
"""

from __future__ import annotations

from typing import Callable

from repro.core.profiles import RetweetProfiles
from repro.core.simgraph import SimGraph, SimGraphBuilder
from repro.data.models import Retweet
from repro.graph.digraph import DiGraph

__all__ = [
    "from_scratch",
    "old_simgraph",
    "crossfold",
    "update_weights",
    "STRATEGIES",
    "UpdateStrategy",
    "apply_strategy",
]

#: Signature shared by all strategies: (old graph, follow graph, updated
#: profiles, builder) -> refreshed graph.
UpdateStrategy = Callable[
    [SimGraph, DiGraph, RetweetProfiles, SimGraphBuilder], SimGraph
]


def from_scratch(
    old: SimGraph,
    follow_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
) -> SimGraph:
    """Full rebuild from the follow graph (ignores ``old`` entirely)."""
    return builder.build(follow_graph, profiles)


def old_simgraph(
    old: SimGraph,
    follow_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
) -> SimGraph:
    """No maintenance: keep the stale similarity graph as-is."""
    return old


def crossfold(
    old: SimGraph,
    follow_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
) -> SimGraph:
    """2-hop exploration of the *previous SimGraph* with fresh profiles.

    New influential users two similarity-hops away become direct edges,
    densifying the graph, and every retained edge gets a recomputed
    weight — the strategy Figure 16 shows tracking *from scratch* almost
    perfectly at a much lower cost (it explores the SimGraph, whose
    out-degree is ~6, instead of the follow graph, whose 2-hop
    neighbourhoods are thousands of users).
    """
    return builder.build(old.graph, profiles)


def update_weights(
    old: SimGraph,
    follow_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
) -> SimGraph:
    """Keep the old topology; recompute every edge weight.

    Edges whose refreshed similarity falls below τ are kept at their new
    (lower) weight: the experiment isolates *weight drift* from *topology
    drift*, and the paper finds topology is what matters.
    """
    from repro.core.similarity import similarity

    refreshed = DiGraph()
    refreshed.add_nodes(old.graph.nodes())
    for u, v, _ in old.graph.edges():
        refreshed.add_edge(u, v, weight=similarity(profiles, u, v))
    return SimGraph(refreshed, tau=old.tau)


#: Name -> strategy map in the order Figure 16 plots them.
STRATEGIES: dict[str, UpdateStrategy] = {
    "from scratch": from_scratch,
    "old SimGraph": old_simgraph,
    "crossfold": crossfold,
    "SimGraph updated": update_weights,
}


def apply_strategy(
    name: str,
    old: SimGraph,
    follow_graph: DiGraph,
    train: list[Retweet],
    extra: list[Retweet],
    builder: SimGraphBuilder | None = None,
) -> SimGraph:
    """Convenience: refresh ``old`` with strategy ``name``.

    ``train`` is the stream the old graph was built from; ``extra`` is the
    newly arrived slice (the 90-95% window in Figure 16).
    """
    if name not in STRATEGIES:
        raise KeyError(
            f"unknown strategy {name!r}; available: {sorted(STRATEGIES)}"
        )
    if builder is None:
        builder = SimGraphBuilder(tau=old.tau)
    profiles = RetweetProfiles(train)
    profiles.extend(extra)
    return STRATEGIES[name](old, follow_graph, profiles, builder)
