"""Postponed propagation (paper §5.4, "Postponed computation").

Instead of propagating on every retweet, each tweet's computation is
deferred by an interval δ that depends on its recent activity: a message
collecting dozens of retweets per minute can wait a few minutes and be
processed once, while a quiet message is batched on a longer timer.  The
scheduler buffers incoming retweets and releases one *batch* per tweet
when its timer expires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import heapq

from repro.data.models import Retweet
from repro.obs import NULL, MetricsRegistry

__all__ = ["DelayPolicy", "PostponedScheduler", "PropagationTask"]


class DelayPolicy:
    """Maps a tweet's recent retweet rate to a postponement delay δ.

    ``delay = clamp(scale / (1 + rate_per_minute), min_delay, max_delay)``:
    hot tweets (high rate) flush quickly — they accumulate a large batch in
    little time — while cold tweets wait up to ``max_delay`` seconds.
    """

    def __init__(
        self,
        scale: float = 3600.0,
        min_delay: float = 60.0,
        max_delay: float = 4 * 3600.0,
    ):
        if min_delay < 0 or max_delay < min_delay:
            raise ValueError(
                f"need 0 <= min_delay <= max_delay, got {min_delay}, {max_delay}"
            )
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.min_delay = min_delay
        self.max_delay = max_delay

    def delay_for(self, rate_per_minute: float) -> float:
        """Postponement in seconds for a tweet at ``rate_per_minute``."""
        raw = self.scale / (1.0 + max(rate_per_minute, 0.0))
        return min(max(raw, self.min_delay), self.max_delay)


@dataclass(frozen=True)
class PropagationTask:
    """One due computation: propagate ``tweet`` with retweeters ``users``."""

    tweet: int
    users: tuple[int, ...]
    due_time: float


@dataclass
class _PendingTweet:
    users: list[int] = field(default_factory=list)
    first_seen: float = 0.0
    due_time: float = 0.0


class PostponedScheduler:
    """Buffers retweet events and emits batched propagation tasks.

    Usage: call :meth:`offer` for every retweet in time order; it returns
    the tasks that became due *at or before* that event's timestamp.  Call
    :meth:`flush` at end of stream for the remaining buffers.

    ``metrics`` (default: no-op) counts buffered events / δ postponements
    / released batches, tracks the pending-queue depth and histograms the
    batch sizes, the *simulated* postponement delays (simulated time is
    deterministic, so these survive in deterministic snapshots) and the
    number of tasks released together (``scheduler.release_width``) —
    the width the batched propagation path scores in one engine
    invocation.
    """

    def __init__(
        self,
        policy: DelayPolicy | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.policy = policy if policy is not None else DelayPolicy()
        self.metrics = metrics if metrics is not None else NULL
        self._pending: dict[int, _PendingTweet] = {}
        self._due: list[tuple[float, int]] = []  # heap of (due_time, tweet)

    @property
    def pending_count(self) -> int:
        """Number of tweets with a buffered, not-yet-due batch."""
        return len(self._pending)

    def offer(self, event: Retweet) -> list[PropagationTask]:
        """Buffer ``event``; return every task due by ``event.time``."""
        metrics = self.metrics
        metrics.counter("scheduler.events").inc()
        due = self._pop_due(event.time)
        entry = self._pending.get(event.tweet)
        if entry is None:
            entry = _PendingTweet(first_seen=event.time)
            self._pending[event.tweet] = entry
            entry.users.append(event.user)
            entry.due_time = event.time + self.policy.delay_for(0.0)
            metrics.counter("scheduler.postponements").inc()
            metrics.histogram("scheduler.delay_simsec").observe(
                entry.due_time - event.time
            )
            heapq.heappush(self._due, (entry.due_time, event.tweet))
        else:
            entry.users.append(event.user)
            # Rate observed since the batch opened, in retweets/minute.
            elapsed_minutes = max((event.time - entry.first_seen) / 60.0, 1e-9)
            rate = len(entry.users) / elapsed_minutes
            # A hot batch flushes once its rate-based delay has elapsed
            # since it opened — but never in the past: a due time is
            # clamped to the event that (re-)scheduled it.
            new_due = max(
                entry.first_seen + self.policy.delay_for(rate), event.time
            )
            if new_due < entry.due_time:
                entry.due_time = new_due
                metrics.counter("scheduler.reschedules").inc()
                heapq.heappush(self._due, (new_due, event.tweet))
        metrics.gauge("scheduler.queue_depth").set(len(self._pending))
        return due

    def flush(self, now: float | None = None) -> list[PropagationTask]:
        """Release every buffered batch (end-of-stream drain)."""
        tasks = [
            PropagationTask(
                tweet=tweet,
                users=tuple(entry.users),
                due_time=entry.due_time if now is None else min(entry.due_time, now),
            )
            for tweet, entry in sorted(self._pending.items())
        ]
        self._pending.clear()
        self._due.clear()
        self._record_released(tasks)
        self.metrics.gauge("scheduler.queue_depth").set(0)
        return tasks

    def _pop_due(self, now: float) -> list[PropagationTask]:
        tasks: list[PropagationTask] = []
        while self._due and self._due[0][0] <= now:
            due_time, tweet = heapq.heappop(self._due)
            entry = self._pending.get(tweet)
            # Skip stale heap entries (the tweet re-scheduled earlier or
            # was already flushed).
            if entry is None or entry.due_time != due_time:
                continue
            tasks.append(
                PropagationTask(
                    tweet=tweet, users=tuple(entry.users), due_time=due_time
                )
            )
            del self._pending[tweet]
        self._record_released(tasks)
        return tasks

    def _record_released(self, tasks: list[PropagationTask]) -> None:
        if not tasks:
            return
        metrics = self.metrics
        metrics.counter("scheduler.batches_released").inc(len(tasks))
        metrics.histogram("scheduler.release_width").observe(len(tasks))
        batch_sizes = metrics.histogram("scheduler.batch_size")
        for task in tasks:
            batch_sizes.observe(len(task.users))
