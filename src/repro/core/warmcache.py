"""Bounded per-tweet warm-state cache for incremental re-propagation.

Every time a tweet gains retweets, Algorithm 1 re-runs from the enlarged
seed set; warm-starting from the previous fixpoint (``initial=``) makes
that re-run touch only the newly pinned seeds' neighbourhoods.  The
recommender and the online service previously kept those fixpoints in an
unbounded dict — on a heavy stream that grows without limit, and state
for tweets past the relevance horizon is dead weight.

:class:`WarmStateCache` bounds the memory two ways:

* **LRU capacity** — at most ``capacity`` tweets retain warm state; the
  least recently propagated tweet is evicted first (a cold start from
  the seed set alone is always correct, just more work);
* **the 72-hour rule** (paper §3.1.2) — a tweet older than ``max_age``
  seconds is never propagated again, so its state is evicted as soon as
  the clock passes ``created_at + max_age`` (checked on access and swept
  opportunistically on insert).

The stored state is opaque to the cache: the reference engine caches the
fixpoint probability dict, the CSR engine caches its compiled
:class:`~repro.core.propagation_csr.CSRWarmState` arrays so a warm
re-propagation never rebuilds a Python dict.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable

from repro.obs import NULL, MetricsRegistry

__all__ = ["WarmStateCache", "DEFAULT_CAPACITY"]

#: Default LRU bound: enough for every tweet alive inside a 72h horizon
#: on the corpora this repo replays, small enough to stay O(MBs).
DEFAULT_CAPACITY = 4096

#: Expired-entry sweeps run once per this many puts (amortized O(1)).
SWEEP_INTERVAL = 256


class WarmStateCache:
    """LRU of per-tweet warm propagation state with age-based eviction.

    Parameters
    ----------
    capacity:
        Maximum number of tweets with retained state (must be >= 1).
    max_age:
        Relevance horizon in seconds (the paper's 72 hours); ``None``
        disables age eviction and leaves only the LRU bound.
    metrics:
        Observability registry (default: no-op).  Records hit/miss
        counters, eviction counters split by cause (``lru`` /
        ``expired`` / ``invalidated``) and a current-size gauge.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        max_age: float | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        if max_age is not None and max_age <= 0:
            raise ValueError(f"max_age must be positive, got {max_age}")
        self.capacity = capacity
        self.max_age = max_age
        self.metrics = metrics if metrics is not None else NULL
        #: Lifetime hit/miss totals, mirrored as ``warmcache.hits`` /
        #: ``warmcache.misses`` counters — kept as plain attributes too so
        #: :class:`~repro.service.engine.ServiceStats` can read them even
        #: when several components share one registry.
        self.hits = 0
        self.misses = 0
        #: tweet id -> (created_at | None, state)
        self._entries: OrderedDict[int, tuple[float | None, Any]] = (
            OrderedDict()
        )
        self._puts = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, tweet: int) -> bool:
        return tweet in self._entries

    def _expired(self, created_at: float | None, now: float | None) -> bool:
        return (
            self.max_age is not None
            and created_at is not None
            and now is not None
            and now - created_at > self.max_age
        )

    def get(self, tweet: int, now: float | None = None) -> Any | None:
        """Warm state for ``tweet``, or None on miss.

        A hit refreshes the entry's LRU position.  When ``now`` is given
        and the tweet's stored ``created_at`` is past the horizon, the
        entry is evicted and the lookup misses — the caller is about to
        skip the propagation anyway (the 72h rule).
        """
        entry = self._entries.get(tweet)
        if entry is None:
            self.misses += 1
            self.metrics.counter("warmcache.misses").inc()
            return None
        created_at, state = entry
        if self._expired(created_at, now):
            del self._entries[tweet]
            self.misses += 1
            self.metrics.counter("warmcache.evictions[expired]").inc()
            self.metrics.counter("warmcache.misses").inc()
            self.metrics.gauge("warmcache.size").set(len(self._entries))
            return None
        self._entries.move_to_end(tweet)
        self.hits += 1
        self.metrics.counter("warmcache.hits").inc()
        return state

    def put(
        self,
        tweet: int,
        state: Any,
        created_at: float | None = None,
        now: float | None = None,
    ) -> None:
        """Store ``state`` for ``tweet`` (most-recently-used position).

        ``created_at`` is the tweet's creation time for the 72h rule
        (``None`` = never age-evicted).  Passing ``now`` additionally
        sweeps already-expired entries every ``SWEEP_INTERVAL`` puts —
        opportunistic cleanup, amortized O(1), that keeps a quiet cache
        from holding a dead horizon's state.
        """
        if self._expired(created_at, now):
            self.pop(tweet)
            return
        self._entries[tweet] = (created_at, state)
        self._entries.move_to_end(tweet)
        self._puts += 1
        if now is not None and self._puts % SWEEP_INTERVAL == 0:
            self.sweep(now)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.metrics.counter("warmcache.evictions[lru]").inc()
        self.metrics.gauge("warmcache.size").set(len(self._entries))

    def pop(self, tweet: int) -> bool:
        """Drop ``tweet``'s state (e.g. its propagation was age-skipped).

        Returns True when an entry was actually evicted.
        """
        if self._entries.pop(tweet, None) is not None:
            self.metrics.counter("warmcache.evictions[invalidated]").inc()
            self.metrics.gauge("warmcache.size").set(len(self._entries))
            return True
        return False

    def tweets(self) -> tuple[int, ...]:
        """Cached tweet ids, least-recently-used first (a snapshot)."""
        return tuple(self._entries)

    def invalidate_tweets(self, tweets: Iterable[int]) -> int:
        """Drop the named tweets' state; returns the count evicted.

        The delta maintenance path calls this with the tweets whose
        cached fixpoints involve affected users — a scoped alternative
        to :meth:`clear` when a rebuild only re-weighed part of the
        graph.  Unknown tweets are ignored.
        """
        dropped = 0
        for tweet in tweets:
            if self._entries.pop(tweet, None) is not None:
                dropped += 1
        if dropped:
            self.metrics.counter("warmcache.evictions[invalidated]").inc(
                dropped
            )
            self.metrics.gauge("warmcache.size").set(len(self._entries))
        return dropped

    def sweep(self, now: float) -> int:
        """Evict every entry past the horizon; returns the count evicted."""
        if self.max_age is None:
            return 0
        expired = [
            tweet
            for tweet, (created_at, _) in self._entries.items()
            if created_at is not None and now - created_at > self.max_age
        ]
        for tweet in expired:
            del self._entries[tweet]
        if expired:
            self.metrics.counter("warmcache.evictions[expired]").inc(
                len(expired)
            )
            self.metrics.gauge("warmcache.size").set(len(self._entries))
        return len(expired)

    def clear(self) -> None:
        """Drop all state (SimGraph rebuilt: compiled indices changed)."""
        if self._entries:
            self.metrics.counter("warmcache.evictions[invalidated]").inc(
                len(self._entries)
            )
        self._entries.clear()
        self.metrics.gauge("warmcache.size").set(0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WarmStateCache(size={len(self._entries)}, "
            f"capacity={self.capacity}, max_age={self.max_age})"
        )
