"""Vectorized sparse similarity backend (CSR incidence formulation).

The reference implementation of Def. 3.1 walks Python dicts one user at a
time; at scale the same computation is a sparse matrix product.  The
user x tweet retweet incidence is materialized as a CSR matrix ``B`` (one
row per user, unit entries), and every tweet column carries the complex
weight ``w(i) + 1j`` with ``w(i) = 1/log(1 + m(i))``.  One product

.. math::  G = B \\, (B \\cdot \\mathrm{diag}(w + 1j))^T

then yields, for every user pair sharing at least one tweet, the Def. 3.1
numerator in its real part and the intersection size ``|L_u \\cap L_v|`` in
its imaginary part — a single matmul keeps both quantities on exactly the
same sparsity pattern, so no index alignment between two products is ever
needed.  Union sizes follow from the profile-size vector, and a whole
batch of ``similarities_from`` rows reduces to a few array operations.

:func:`simgraph_edges` builds on this for SimGraph construction: the
k-hop candidate sets of *all* sources come from boolean powers of the
exploration graph's adjacency matrix, and sources are scored in chunks —
optionally fanned out across worker processes — against the shared
:class:`SimilarityMatrix`.

The backend is locked to the reference implementation by
``tests/test_backend_differential.py``: identical SimGraph edge sets,
similarities within 1e-12.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Mapping

import numpy as np
from scipy import sparse

from repro.core.profiles import RetweetProfiles
from repro.graph.digraph import DiGraph
from repro.obs import NULL, MetricsRegistry

__all__ = [
    "SimilarityMatrix",
    "reachability_matrix",
    "simgraph_edges",
    "DEFAULT_CHUNK_SIZE",
]

#: Sources scored per sparse product during a chunked build.  Large enough
#: to amortize matmul overhead, small enough to bound the dense-ish chunk
#: Gram matrix on overlap-heavy corpora.
DEFAULT_CHUNK_SIZE = 512


class SimilarityMatrix:
    """Sparse-matrix view of a :class:`RetweetProfiles` snapshot.

    Rows (and similarity columns) index the *universe*: every user with a
    profile plus any ``extra_users`` (typically the exploration graph's
    nodes, so candidate masks and similarity rows share one column space).
    Tweet weights use the profiles' global popularity, so a restricted
    universe never distorts ``m(i)``.
    """

    def __init__(
        self, profiles: RetweetProfiles, extra_users: Iterable[int] = ()
    ):
        universe = set(profiles.users())
        universe.update(extra_users)
        self._users: list[int] = sorted(universe)
        self._users_arr = np.asarray(self._users, dtype=np.int64)
        self._index: dict[int, int] = {u: i for i, u in enumerate(self._users)}
        tweets = sorted(profiles.tweets())
        tweet_index = {t: j for j, t in enumerate(tweets)}
        indptr = np.zeros(len(self._users) + 1, dtype=np.int64)
        cols: list[int] = []
        for i, user in enumerate(self._users):
            cols.extend(tweet_index[t] for t in sorted(profiles.profile(user)))
            indptr[i + 1] = len(cols)
        indices = np.asarray(cols, dtype=np.int64)
        self._B = sparse.csr_matrix(
            (np.ones(len(indices)), indices, indptr),
            shape=(len(self._users), len(tweets)),
        )
        weights = np.array(
            [profiles.tweet_weight(t) for t in tweets], dtype=np.float64
        )
        # Complex-weighted incidence: one matmul returns numerator (real)
        # and overlap count (imaginary) on a single sparsity pattern.
        self._Bc = (self._B @ sparse.diags(weights + 1j)).tocsr()
        self._sizes = np.diff(self._B.indptr)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def user_count(self) -> int:
        """Number of users in the universe (rows of the incidence)."""
        return len(self._users)

    @property
    def index(self) -> Mapping[int, int]:
        """user id -> row position (shared with candidate masks)."""
        return self._index

    def position(self, user: int) -> int:
        """Row position of ``user``; raises KeyError when absent."""
        return self._index[user]

    def user_at(self, position: int) -> int:
        """Inverse of :meth:`position`."""
        return self._users[position]

    def users_at(self, positions: np.ndarray) -> list[int]:
        """Vectorized :meth:`user_at` (returns plain Python ints)."""
        return self._users_arr[positions].tolist()

    def __contains__(self, user: int) -> bool:
        return user in self._index

    # ------------------------------------------------------------------
    # Similarity
    # ------------------------------------------------------------------
    def similarity_rows(self, users: Iterable[int]) -> sparse.csr_matrix:
        """Def. 3.1 scores of ``users`` against the whole universe.

        Returns a ``len(users) x user_count`` CSR matrix whose row ``r``
        holds every non-zero ``sim(users[r], v)`` (self-similarity
        removed).  The batched equivalent of ``similarities_from``.
        """
        row_idx = np.asarray(
            [self._index[u] for u in users], dtype=np.int64
        )
        n = len(self._users)
        if row_idx.size == 0:
            return sparse.csr_matrix((0, n))
        gram = self.gram_rows(row_idx)
        local, sims = self.sims_from_gram(gram, row_idx)
        cols = gram.indices
        keep = cols != row_idx[local]
        return sparse.csr_matrix(
            (sims[keep], (local[keep], cols[keep])),
            shape=(row_idx.size, n),
        )

    def gram_rows(self, row_idx: np.ndarray) -> sparse.csr_matrix:
        """Complex Gram rows: numerator (real) + overlap count (imag).

        Entry ``(r, v)`` is ``sum_{i in L_u ∩ L_v} w(i) + 1j |L_u ∩ L_v|``
        for ``u`` at universe position ``row_idx[r]`` — the raw material
        both :meth:`similarity_rows` and the chunked build consume.
        """
        return (self._B[row_idx] @ self._Bc.T).tocsr()

    def sims_from_gram(
        self, gram: sparse.csr_matrix, row_idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Turn (masked) Gram entries into Def. 3.1 scores.

        Returns ``(local_rows, sims)`` aligned with ``gram``'s nonzeros.
        Structural nonzeros always carry >= 1 shared tweet, so the union
        size is positive and the numerator strictly so.
        """
        counts = np.diff(gram.indptr)
        local = np.repeat(np.arange(row_idx.size, dtype=np.int64), counts)
        union = (
            self._sizes[row_idx[local]]
            + self._sizes[gram.indices]
            - gram.data.imag
        )
        return local, gram.data.real / union

    def similarity_submatrix(
        self, rows: Iterable[int], cols: Iterable[int]
    ) -> sparse.csr_matrix:
        """Def. 3.1 scores restricted to ``rows x cols`` — the
        *dirty-submatrix* product of delta maintenance.

        Entry ``(r, c)`` is ``sim(rows[r], cols[c])`` (0 when no tweet
        is shared; self-pairs removed).  The product touches only the
        requested rows and columns of the incidence, so rescoring an
        affected region of ``k`` users against its fringe costs
        ``O(k)`` sparse rows instead of the full user-squared Gram.
        """
        row_idx = np.asarray([self._index[u] for u in rows], dtype=np.int64)
        col_idx = np.asarray([self._index[u] for u in cols], dtype=np.int64)
        if row_idx.size == 0 or col_idx.size == 0:
            return sparse.csr_matrix((row_idx.size, col_idx.size))
        gram = (self._B[row_idx] @ self._Bc[col_idx].T).tocsr()
        counts = np.diff(gram.indptr)
        local = np.repeat(np.arange(row_idx.size, dtype=np.int64), counts)
        union = (
            self._sizes[row_idx[local]]
            + self._sizes[col_idx[gram.indices]]
            - gram.data.imag
        )
        sims = gram.data.real / union
        keep = row_idx[local] != col_idx[gram.indices]
        return sparse.csr_matrix(
            (sims[keep], (local[keep], gram.indices[keep])),
            shape=(row_idx.size, col_idx.size),
        )

    def similarities_from(
        self, u: int, candidates: Iterable[int] | None = None
    ) -> dict[int, float]:
        """Drop-in equivalent of :func:`repro.core.similarity.similarities_from`."""
        if u not in self._index:
            return {}
        row = self.similarity_rows([u])
        candidate_set = None if candidates is None else set(candidates)
        scores: dict[int, float] = {}
        for col, value in zip(row.indices, row.data):
            v = self._users[col]
            if candidate_set is not None and v not in candidate_set:
                continue
            scores[v] = float(value)
        return scores


def reachability_matrix(
    graph: DiGraph, hops: int, index: Mapping[int, int], size: int
) -> sparse.csr_matrix:
    """0/1 CSR of "within ``hops`` successor-steps" for every graph node.

    Row ``index[u]`` marks exactly ``k_hop_neighborhood(graph, u, hops)``
    (source excluded) in the shared universe column space — the candidate
    masks of the whole SimGraph build from ``hops - 1`` boolean sparse
    matmuls instead of one BFS per user.
    """
    rows: list[int] = []
    cols: list[int] = []
    for u in graph.nodes():
        i = index[u]
        for v in graph.successors(u):
            rows.append(i)
            cols.append(index[v])
    adjacency = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(size, size)
    )
    reach = adjacency.copy()
    frontier = adjacency
    for _ in range(hops - 1):
        frontier = (frontier @ adjacency).tocsr()
        if frontier.nnz == 0:
            break
        frontier.data[:] = 1.0
        reach = (reach + frontier).tocsr()
        reach.data[:] = 1.0
    coo = reach.tocoo()
    off_diagonal = coo.row != coo.col
    return sparse.csr_matrix(
        (coo.data[off_diagonal], (coo.row[off_diagonal], coo.col[off_diagonal])),
        shape=(size, size),
    )


def simgraph_edges(
    exploration_graph: DiGraph,
    profiles: RetweetProfiles,
    sources: Iterable[int],
    tau: float,
    hops: int = 2,
    max_influencers: int | None = None,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    metrics: MetricsRegistry | None = None,
) -> list[tuple[int, dict[int, float]]]:
    """Vectorized equivalent of the per-user reference build loop.

    Returns ``(source, {influencer: sim})`` pairs for every source that
    gains at least one edge — exactly the edges the reference
    ``SimGraphBuilder`` would create.  ``workers > 1`` fans chunks out to
    a process pool (serial fallback when the platform refuses to fork).

    ``metrics`` records candidate-mask assembly and per-chunk scoring
    timings, chunk/pair counters and the worker fan-out.  Registries are
    process-local: on the pool path, per-chunk scoring internals are not
    aggregated back from the workers — only the dispatch is measured.
    """
    metrics = metrics if metrics is not None else NULL
    eligible = [
        u
        for u in sources
        if u in exploration_graph and profiles.has_profile(u)
    ]
    if not eligible:
        return []
    with metrics.span("simgraph.candidate_masks"):
        matrix = SimilarityMatrix(profiles, extra_users=exploration_graph.nodes())
        reach = reachability_matrix(
            exploration_graph, hops, matrix.index, matrix.user_count
        )
    state = (matrix, reach, tau, max_influencers)
    chunks = [
        eligible[start : start + chunk_size]
        for start in range(0, len(eligible), chunk_size)
    ]
    metrics.counter("simgraph.chunks").inc(len(chunks))
    if workers > 1 and len(chunks) > 1:
        metrics.gauge("simgraph.build_workers").set(min(workers, len(chunks)))
        with metrics.span("simgraph.chunk_fanout"):
            chunk_results = _map_parallel(state, chunks, workers)
    else:
        metrics.gauge("simgraph.build_workers").set(1)
        chunk_timings = metrics.histogram("simgraph.chunk_seconds", timing=True)
        chunk_results = []
        with metrics.span("simgraph.score_chunks"):
            for chunk in chunks:
                started = time.perf_counter()
                chunk_results.append(_chunk_edges(state, chunk, metrics))
                chunk_timings.observe(time.perf_counter() - started)
    return [pair for result in chunk_results for pair in result]


def _chunk_edges(
    state, chunk: list[int], metrics: MetricsRegistry = NULL
) -> list[tuple[int, dict[int, float]]]:
    """Score one chunk of sources and threshold/cap their edges.

    The candidate mask is applied to the *complex Gram* rows before any
    score is computed, so similarities are only ever evaluated for the
    (source, k-hop candidate) pairs the reference build would score.  The
    mask's diagonal is empty, which also removes self-similarity entries.
    """
    matrix, reach, tau, max_influencers = state
    row_idx = np.asarray(
        [matrix.position(u) for u in chunk], dtype=np.int64
    )
    masked = matrix.gram_rows(row_idx).multiply(reach[row_idx]).tocsr()
    metrics.counter("simgraph.pairs_scored").inc(int(masked.nnz))
    _, sims = matrix.sims_from_gram(masked, row_idx)
    indptr, cols = masked.indptr, masked.indices
    edges: list[tuple[int, dict[int, float]]] = []
    for j, u in enumerate(chunk):
        row = slice(indptr[j], indptr[j + 1])
        row_sims = sims[row]
        row_cols = cols[row]
        keep = row_sims >= tau
        if not keep.all():
            row_sims = row_sims[keep]
            row_cols = row_cols[keep]
        if row_sims.size == 0:
            continue
        if max_influencers is not None and row_sims.size > max_influencers:
            # Retain the max_influencers largest (score, user id) pairs —
            # the exact tie-break of utils.topk.TopK on the reference path.
            strongest = np.lexsort((row_cols, row_sims))[-max_influencers:]
            row_sims = row_sims[strongest]
            row_cols = row_cols[strongest]
        edges.append(
            (u, dict(zip(matrix.users_at(row_cols), row_sims.tolist())))
        )
    return edges


#: Per-process build state: on fork platforms it is published here *before*
#: the pool starts, so children inherit it by copy-on-write and each chunk
#: submission ships only its user-id list; on spawn platforms the pool
#: initializer installs a pickled copy instead.
_POOL_STATE = None


def _init_pool(state) -> None:
    global _POOL_STATE
    _POOL_STATE = state


def _pool_chunk(chunk: list[int]) -> list[tuple[int, dict[int, float]]]:
    return _chunk_edges(_POOL_STATE, chunk)


def _map_parallel(state, chunks, workers: int):
    global _POOL_STATE
    import multiprocessing

    try:
        try:
            context = multiprocessing.get_context("fork")
            _POOL_STATE = state
            initializer, initargs = None, ()
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
            initializer, initargs = _init_pool, (state,)
        with ProcessPoolExecutor(
            max_workers=min(workers, len(chunks)),
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            return list(pool.map(_pool_chunk, chunks))
    except (OSError, PermissionError, RuntimeError, ValueError):
        # Sandboxes and restricted runtimes may refuse to start worker
        # processes; the serial chunked path computes identical edges.
        return [_chunk_edges(state, chunk) for chunk in chunks]
    finally:
        _POOL_STATE = None
