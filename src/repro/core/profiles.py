"""Retweet profiles: the interest signal behind every similarity score.

A user's *profile* ``L_u`` is the set of tweets they retweeted (paper
Def. 3.1); a tweet's *popularity* ``m(i)`` is its distinct-retweeter count.
:class:`RetweetProfiles` maintains both maps plus the inverted index
(tweet -> retweeters) that makes similarity computation output-sensitive,
and supports incremental updates so the §6.3 maintenance strategies can
refresh weights without a rebuild.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.data.models import Retweet

__all__ = ["RetweetProfiles"]


class RetweetProfiles:
    """User -> retweeted-tweets map with the inverted tweet -> users index."""

    def __init__(self, retweets: Iterable[Retweet] = ()):
        self._profiles: dict[int, set[int]] = {}
        self._retweeters: dict[int, set[int]] = {}
        for retweet in retweets:
            self.add(retweet.user, retweet.tweet)

    def add(self, user: int, tweet: int) -> None:
        """Record that ``user`` retweeted ``tweet`` (idempotent)."""
        self._profiles.setdefault(user, set()).add(tweet)
        self._retweeters.setdefault(tweet, set()).add(user)

    def extend(self, retweets: Iterable[Retweet]) -> None:
        """Record a batch of retweet actions."""
        for retweet in retweets:
            self.add(retweet.user, retweet.tweet)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def profile(self, user: int) -> set[int]:
        """L_u — the set of tweets ``user`` retweeted (empty when unknown)."""
        return self._profiles.get(user, set())

    def profile_size(self, user: int) -> int:
        """|L_u| without copying the set."""
        return len(self._profiles.get(user, ()))

    def has_profile(self, user: int) -> bool:
        """True when ``user`` retweeted at least one tweet."""
        return user in self._profiles

    def users(self) -> Iterable[int]:
        """Every user with a non-empty profile."""
        return self._profiles.keys()

    def tweets(self) -> Iterable[int]:
        """Every tweet retweeted at least once."""
        return self._retweeters.keys()

    def popularity(self, tweet: int) -> int:
        """m(i) — number of distinct users who retweeted ``tweet``."""
        return len(self._retweeters.get(tweet, ()))

    def retweeters(self, tweet: int) -> set[int]:
        """Distinct retweeters of ``tweet`` (live view, do not mutate)."""
        return self._retweeters.get(tweet, set())

    def tweet_weight(self, tweet: int) -> float:
        """The Def. 3.1 contribution of one common tweet: 1/log(1+m(i)).

        Rare co-retweets weigh more than popular ones (Breese et al.'s
        inverse-popularity correction).  Natural log, as is conventional.
        """
        m = self.popularity(tweet)
        if m == 0:
            return 0.0
        return 1.0 / math.log1p(m)

    @property
    def user_count(self) -> int:
        """Number of users with at least one retweet."""
        return len(self._profiles)

    @property
    def tweet_count(self) -> int:
        """Number of tweets retweeted at least once."""
        return len(self._retweeters)
