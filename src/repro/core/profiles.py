"""Retweet profiles: the interest signal behind every similarity score.

A user's *profile* ``L_u`` is the set of tweets they retweeted (paper
Def. 3.1); a tweet's *popularity* ``m(i)`` is its distinct-retweeter count.
:class:`RetweetProfiles` maintains both maps plus the inverted index
(tweet -> retweeters) that makes similarity computation output-sensitive,
and supports incremental updates so the §6.3 maintenance strategies can
refresh weights without a rebuild.

Two storage paths back the same query API:

* the **dict path** (default constructor / :meth:`RetweetProfiles.add`)
  keeps ``dict[int, set[int]]`` maps — ideal for the incremental stream
  the delta engine consumes;
* the **columnar path** (:meth:`RetweetProfiles.from_arrays`) freezes a
  bulk-loaded corpus into sorted CSR arrays (user -> tweets and the
  tweet -> users transpose): ``profile_size``/``popularity``/
  ``tweet_weight`` are O(log n) indptr lookups with no per-pair Python
  objects, which is what lets a paper-scale corpus fit in RAM.
  Incremental ``add`` still works on such an instance — new pairs land
  in a dict *overlay* on top of the immutable base, so dirty tracking
  and the delta maintenance engine behave identically on both paths.

It additionally tracks a *dirty set* since the last :meth:`mark_clean`
checkpoint: users whose profile gained a tweet and tweets whose
popularity ``m(i)`` — hence their ``1/log(1 + m(i))`` weight — changed.
A pair ``sim(u, v)`` can only change when ``u`` or ``v`` is a dirty user
or both retweeted a dirty tweet, so the dirty sets are exactly what the
delta maintenance engine (:mod:`repro.core.delta`) needs to bound the
region of the SimGraph it rescores.

Query results (:meth:`profile`, :meth:`retweeters`) are **immutable
snapshots** (``frozenset``): mutating a returned value can never corrupt
the underlying profiles, for known and unknown keys alike.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

import numpy as np

from repro.data.models import Retweet

__all__ = ["RetweetProfiles"]

_EMPTY_ROW = np.empty(0, dtype=np.int64)
_EMPTY_SET: frozenset[int] = frozenset()


class _CSRIndex:
    """One direction of the frozen pair set: sorted keys + CSR rows.

    ``keys`` is sorted and unique; row ``i`` of ``items`` (the slice
    ``indptr[i]:indptr[i+1]``) holds the sorted partner ids of
    ``keys[i]``.  Lookup is a binary search — no per-key dict entry, so
    a million-user index costs three flat arrays.
    """

    __slots__ = ("keys", "indptr", "items")

    def __init__(self, keys: np.ndarray, indptr: np.ndarray, items: np.ndarray):
        self.keys = keys
        self.indptr = indptr
        self.items = items

    @classmethod
    def from_pairs(cls, keys: np.ndarray, values: np.ndarray) -> "_CSRIndex":
        """Build from already-deduplicated pairs sorted by (key, value)."""
        unique, counts = np.unique(keys, return_counts=True)
        indptr = np.zeros(len(unique) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(unique, indptr, values)

    def position(self, key: int) -> int:
        """Row of ``key`` or -1 when absent."""
        i = int(np.searchsorted(self.keys, key))
        if i < len(self.keys) and int(self.keys[i]) == key:
            return i
        return -1

    def row(self, key: int) -> np.ndarray:
        i = self.position(key)
        if i < 0:
            return _EMPTY_ROW
        return self.items[self.indptr[i] : self.indptr[i + 1]]

    def row_size(self, key: int) -> int:
        i = self.position(key)
        if i < 0:
            return 0
        return int(self.indptr[i + 1] - self.indptr[i])

    def contains_pair(self, key: int, value: int) -> bool:
        row = self.row(key)
        j = int(np.searchsorted(row, value))
        return j < len(row) and int(row[j]) == value


class RetweetProfiles:
    """User -> retweeted-tweets map with the inverted tweet -> users index."""

    def __init__(self, retweets: Iterable[Retweet] = ()):
        #: Dict storage.  On the columnar path these hold only the
        #: *overlay* — pairs added after :meth:`from_arrays` froze the
        #: base — and every overlay set is disjoint from its base row.
        self._profiles: dict[int, set[int]] = {}
        self._retweeters: dict[int, set[int]] = {}
        self._by_user: _CSRIndex | None = None
        self._by_tweet: _CSRIndex | None = None
        #: Users/tweets present in the overlay but not the base (keeps
        #: ``user_count``/``tweet_count`` O(1) on the columnar path).
        self._extra_users = 0
        self._extra_tweets = 0
        self._dirty_users: set[int] = set()
        self._dirty_tweets: set[int] = set()
        for retweet in retweets:
            self.add(retweet.user, retweet.tweet)

    @classmethod
    def from_arrays(
        cls,
        users: np.ndarray,
        tweets: np.ndarray,
    ) -> "RetweetProfiles":
        """Freeze a bulk corpus of ``(user, tweet)`` retweet pairs.

        ``users``/``tweets`` are parallel integer arrays — the raw
        retweet log, duplicates allowed (a repeat retweet changes
        neither ``L_u`` nor ``m(i)``, exactly like :meth:`add`).  The
        result answers every query off flat CSR arrays; subsequent
        :meth:`add` calls layer a dict overlay on top and feed the
        dirty sets as usual.  The frozen base is *clean*: only overlay
        additions dirty users/tweets.
        """
        users = np.ascontiguousarray(users, dtype=np.int64)
        tweets = np.ascontiguousarray(tweets, dtype=np.int64)
        if users.shape != tweets.shape:
            raise ValueError(
                f"users ({users.shape}) and tweets ({tweets.shape}) "
                "must be parallel arrays"
            )
        instance = cls()
        if len(users) == 0:
            return instance
        order = np.lexsort((tweets, users))
        u_sorted = users[order]
        t_sorted = tweets[order]
        fresh = np.empty(len(u_sorted), dtype=bool)
        fresh[0] = True
        np.logical_or(
            u_sorted[1:] != u_sorted[:-1],
            t_sorted[1:] != t_sorted[:-1],
            out=fresh[1:],
        )
        u_sorted = u_sorted[fresh]
        t_sorted = t_sorted[fresh]
        instance._by_user = _CSRIndex.from_pairs(u_sorted, t_sorted)
        transpose = np.lexsort((u_sorted, t_sorted))
        instance._by_tweet = _CSRIndex.from_pairs(
            t_sorted[transpose], u_sorted[transpose]
        )
        return instance

    def add(self, user: int, tweet: int) -> None:
        """Record that ``user`` retweeted ``tweet`` (idempotent).

        Only a genuinely new (user, tweet) pair dirties the user and the
        tweet: a repeated retweet changes neither ``L_u`` nor ``m(i)``,
        so it must not enlarge the maintenance region.
        """
        if self._by_user is not None and self._by_user.contains_pair(
            user, tweet
        ):
            return
        profile = self._profiles.get(user)
        if profile is None:
            profile = self._profiles.setdefault(user, set())
            if self._by_user is not None and self._by_user.position(user) < 0:
                self._extra_users += 1
        elif tweet in profile:
            return
        profile.add(tweet)
        retweeters = self._retweeters.get(tweet)
        if retweeters is None:
            retweeters = self._retweeters.setdefault(tweet, set())
            if (
                self._by_tweet is not None
                and self._by_tweet.position(tweet) < 0
            ):
                self._extra_tweets += 1
        retweeters.add(user)
        self._dirty_users.add(user)
        self._dirty_tweets.add(tweet)

    def extend(self, retweets: Iterable[Retweet]) -> None:
        """Record a batch of retweet actions."""
        for retweet in retweets:
            self.add(retweet.user, retweet.tweet)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def profile(self, user: int) -> frozenset[int]:
        """L_u — the tweets ``user`` retweeted (empty when unknown).

        Returns an immutable snapshot: callers can keep or combine it
        freely, and mutating a *copy* (``set(...)``) never touches the
        stored profile.
        """
        overlay = self._profiles.get(user)
        if self._by_user is None:
            return frozenset(overlay) if overlay else _EMPTY_SET
        base = self._by_user.row(user)
        if overlay:
            return frozenset(base.tolist()).union(overlay)
        if len(base) == 0:
            return _EMPTY_SET
        return frozenset(base.tolist())

    def profile_array(self, user: int) -> np.ndarray:
        """L_u as a sorted int64 array (flat-array consumers).

        Zero-copy on the columnar path when no overlay entry exists for
        ``user``; otherwise a fresh sorted array.
        """
        overlay = self._profiles.get(user)
        base = (
            self._by_user.row(user) if self._by_user is not None else _EMPTY_ROW
        )
        if not overlay:
            return base
        merged = np.fromiter(overlay, dtype=np.int64, count=len(overlay))
        if len(base):
            merged = np.concatenate([base, merged])
        merged.sort()
        return merged

    def profile_size(self, user: int) -> int:
        """|L_u| without copying the set."""
        size = len(self._profiles.get(user, ()))
        if self._by_user is not None:
            size += self._by_user.row_size(user)
        return size

    def has_profile(self, user: int) -> bool:
        """True when ``user`` retweeted at least one tweet."""
        if user in self._profiles:
            return True
        return self._by_user is not None and self._by_user.position(user) >= 0

    def users(self) -> Iterator[int]:
        """Every user with a non-empty profile."""
        if self._by_user is None:
            return iter(self._profiles.keys())
        return self._chain_keys(self._by_user, self._profiles)

    def tweets(self) -> Iterator[int]:
        """Every tweet retweeted at least once."""
        if self._by_tweet is None:
            return iter(self._retweeters.keys())
        return self._chain_keys(self._by_tweet, self._retweeters)

    @staticmethod
    def _chain_keys(base: _CSRIndex, overlay: dict) -> Iterator[int]:
        yield from base.keys.tolist()
        if overlay:
            base_keys = base.keys
            for key in overlay:
                i = int(np.searchsorted(base_keys, key))
                if i >= len(base_keys) or int(base_keys[i]) != key:
                    yield key

    def popularity(self, tweet: int) -> int:
        """m(i) — number of distinct users who retweeted ``tweet``."""
        count = len(self._retweeters.get(tweet, ()))
        if self._by_tweet is not None:
            count += self._by_tweet.row_size(tweet)
        return count

    def retweeters(self, tweet: int) -> frozenset[int]:
        """Distinct retweeters of ``tweet`` (immutable snapshot).

        Like :meth:`profile`, the return value is a ``frozenset`` —
        safe to hold, never aliased to internal state.
        """
        overlay = self._retweeters.get(tweet)
        if self._by_tweet is None:
            return frozenset(overlay) if overlay else _EMPTY_SET
        base = self._by_tweet.row(tweet)
        if overlay:
            return frozenset(base.tolist()).union(overlay)
        if len(base) == 0:
            return _EMPTY_SET
        return frozenset(base.tolist())

    def retweeters_array(self, tweet: int) -> np.ndarray:
        """Distinct retweeters as a sorted int64 array."""
        overlay = self._retweeters.get(tweet)
        base = (
            self._by_tweet.row(tweet)
            if self._by_tweet is not None
            else _EMPTY_ROW
        )
        if not overlay:
            return base
        merged = np.fromiter(overlay, dtype=np.int64, count=len(overlay))
        if len(base):
            merged = np.concatenate([base, merged])
        merged.sort()
        return merged

    def tweet_weight(self, tweet: int) -> float:
        """The Def. 3.1 contribution of one common tweet: 1/log(1+m(i)).

        Rare co-retweets weigh more than popular ones (Breese et al.'s
        inverse-popularity correction).  Natural log, as is conventional.
        """
        m = self.popularity(tweet)
        if m == 0:
            return 0.0
        return 1.0 / math.log1p(m)

    # ------------------------------------------------------------------
    # Dirty tracking (delta maintenance, §6.3 at service scale)
    # ------------------------------------------------------------------
    @property
    def dirty_users(self) -> frozenset[int]:
        """Users whose profile gained a tweet since :meth:`mark_clean`."""
        return frozenset(self._dirty_users)

    @property
    def dirty_tweets(self) -> frozenset[int]:
        """Tweets whose popularity m(i) changed since :meth:`mark_clean`.

        Their ``1/log(1 + m(i))`` weight changed, so every pair of their
        co-retweeters may have a stale similarity numerator.
        """
        return frozenset(self._dirty_tweets)

    @property
    def has_dirty(self) -> bool:
        """True when any profile or tweet weight changed since the checkpoint."""
        return bool(self._dirty_users) or bool(self._dirty_tweets)

    def mark_clean(self) -> None:
        """Checkpoint: the current state is what the SimGraph was built from.

        Callers invoke this right after a (re)build; subsequent ``add``
        calls accumulate the dirty sets the next delta maintenance run
        consumes.
        """
        self._dirty_users.clear()
        self._dirty_tweets.clear()

    @property
    def user_count(self) -> int:
        """Number of users with at least one retweet."""
        if self._by_user is None:
            return len(self._profiles)
        return len(self._by_user.keys) + self._extra_users

    @property
    def tweet_count(self) -> int:
        """Number of tweets retweeted at least once."""
        if self._by_tweet is None:
            return len(self._retweeters)
        return len(self._by_tweet.keys) + self._extra_tweets
