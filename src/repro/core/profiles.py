"""Retweet profiles: the interest signal behind every similarity score.

A user's *profile* ``L_u`` is the set of tweets they retweeted (paper
Def. 3.1); a tweet's *popularity* ``m(i)`` is its distinct-retweeter count.
:class:`RetweetProfiles` maintains both maps plus the inverted index
(tweet -> retweeters) that makes similarity computation output-sensitive,
and supports incremental updates so the §6.3 maintenance strategies can
refresh weights without a rebuild.

It additionally tracks a *dirty set* since the last :meth:`mark_clean`
checkpoint: users whose profile gained a tweet and tweets whose
popularity ``m(i)`` — hence their ``1/log(1 + m(i))`` weight — changed.
A pair ``sim(u, v)`` can only change when ``u`` or ``v`` is a dirty user
or both retweeted a dirty tweet, so the dirty sets are exactly what the
delta maintenance engine (:mod:`repro.core.delta`) needs to bound the
region of the SimGraph it rescores.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.data.models import Retweet

__all__ = ["RetweetProfiles"]


class RetweetProfiles:
    """User -> retweeted-tweets map with the inverted tweet -> users index."""

    def __init__(self, retweets: Iterable[Retweet] = ()):
        self._profiles: dict[int, set[int]] = {}
        self._retweeters: dict[int, set[int]] = {}
        self._dirty_users: set[int] = set()
        self._dirty_tweets: set[int] = set()
        for retweet in retweets:
            self.add(retweet.user, retweet.tweet)

    def add(self, user: int, tweet: int) -> None:
        """Record that ``user`` retweeted ``tweet`` (idempotent).

        Only a genuinely new (user, tweet) pair dirties the user and the
        tweet: a repeated retweet changes neither ``L_u`` nor ``m(i)``,
        so it must not enlarge the maintenance region.
        """
        profile = self._profiles.setdefault(user, set())
        if tweet in profile:
            return
        profile.add(tweet)
        self._retweeters.setdefault(tweet, set()).add(user)
        self._dirty_users.add(user)
        self._dirty_tweets.add(tweet)

    def extend(self, retweets: Iterable[Retweet]) -> None:
        """Record a batch of retweet actions."""
        for retweet in retweets:
            self.add(retweet.user, retweet.tweet)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def profile(self, user: int) -> set[int]:
        """L_u — the set of tweets ``user`` retweeted (empty when unknown)."""
        return self._profiles.get(user, set())

    def profile_size(self, user: int) -> int:
        """|L_u| without copying the set."""
        return len(self._profiles.get(user, ()))

    def has_profile(self, user: int) -> bool:
        """True when ``user`` retweeted at least one tweet."""
        return user in self._profiles

    def users(self) -> Iterable[int]:
        """Every user with a non-empty profile."""
        return self._profiles.keys()

    def tweets(self) -> Iterable[int]:
        """Every tweet retweeted at least once."""
        return self._retweeters.keys()

    def popularity(self, tweet: int) -> int:
        """m(i) — number of distinct users who retweeted ``tweet``."""
        return len(self._retweeters.get(tweet, ()))

    def retweeters(self, tweet: int) -> set[int]:
        """Distinct retweeters of ``tweet`` (live view, do not mutate)."""
        return self._retweeters.get(tweet, set())

    def tweet_weight(self, tweet: int) -> float:
        """The Def. 3.1 contribution of one common tweet: 1/log(1+m(i)).

        Rare co-retweets weigh more than popular ones (Breese et al.'s
        inverse-popularity correction).  Natural log, as is conventional.
        """
        m = self.popularity(tweet)
        if m == 0:
            return 0.0
        return 1.0 / math.log1p(m)

    # ------------------------------------------------------------------
    # Dirty tracking (delta maintenance, §6.3 at service scale)
    # ------------------------------------------------------------------
    @property
    def dirty_users(self) -> frozenset[int]:
        """Users whose profile gained a tweet since :meth:`mark_clean`."""
        return frozenset(self._dirty_users)

    @property
    def dirty_tweets(self) -> frozenset[int]:
        """Tweets whose popularity m(i) changed since :meth:`mark_clean`.

        Their ``1/log(1 + m(i))`` weight changed, so every pair of their
        co-retweeters may have a stale similarity numerator.
        """
        return frozenset(self._dirty_tweets)

    @property
    def has_dirty(self) -> bool:
        """True when any profile or tweet weight changed since the checkpoint."""
        return bool(self._dirty_users) or bool(self._dirty_tweets)

    def mark_clean(self) -> None:
        """Checkpoint: the current state is what the SimGraph was built from.

        Callers invoke this right after a (re)build; subsequent ``add``
        calls accumulate the dirty sets the next delta maintenance run
        consumes.
        """
        self._dirty_users.clear()
        self._dirty_tweets.clear()

    @property
    def user_count(self) -> int:
        """Number of users with at least one retweet."""
        return len(self._profiles)

    @property
    def tweet_count(self) -> int:
        """Number of tweets retweeted at least once."""
        return len(self._retweeters)
