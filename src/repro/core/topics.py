"""Topic-merged profiles (paper §7, future work).

The paper's first future-work item: *"our similarity is based on common
retweets between users and can be improved by creating 'topic tweets' by
merging similar tweets.  This will make users likely to be similar in the
similarity graph and therefore enhance results for small users."*

Two mergers are provided:

* :func:`merge_by_label` — uses explicit topic labels when the corpus has
  them (the synthetic generator stamps each tweet with its latent topic;
  a production system would get these from entity recognition, which is
  what the paper proposes);
* :func:`merge_by_coretweeters` — unsupervised: tweets whose retweeter
  sets overlap strongly (Jaccard above a threshold) are merged through a
  union-find, approximating "the same story shared twice".

Either way, :func:`topic_profiles` re-expresses retweet profiles over the
merged items; the resulting :class:`~repro.core.profiles.RetweetProfiles`
plugs straight into :class:`~repro.core.simgraph.SimGraphBuilder`, so the
whole SimGraph/propagation stack runs unchanged on topic granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.profiles import RetweetProfiles
from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet

__all__ = [
    "TopicAssignment",
    "merge_by_label",
    "merge_by_coretweeters",
    "topic_profiles",
]


@dataclass(frozen=True)
class TopicAssignment:
    """tweet id -> merged item ("topic tweet") id."""

    topic_of: dict[int, int]

    @property
    def topic_count(self) -> int:
        """Number of distinct merged items."""
        return len(set(self.topic_of.values()))

    def members(self, topic: int) -> set[int]:
        """Tweets merged into ``topic``."""
        return {t for t, label in self.topic_of.items() if label == topic}

    def compression(self) -> float:
        """Merged items per tweet (1.0 = nothing merged)."""
        if not self.topic_of:
            return 1.0
        return self.topic_count / len(self.topic_of)


def merge_by_label(dataset: TwitterDataset) -> TopicAssignment:
    """Merge tweets sharing an explicit topic label.

    Tweets with an unknown topic (-1) each stay their own item.
    """
    topic_of: dict[int, int] = {}
    # Labelled topics map to compact negative-free ids above the tweet id
    # space so unlabelled tweets (mapped to their own id) never collide.
    base = (max(dataset.tweets) + 1) if dataset.tweets else 0
    for tweet in dataset.tweets.values():
        if tweet.topic < 0:
            topic_of[tweet.id] = tweet.id
        else:
            topic_of[tweet.id] = base + tweet.topic
    return TopicAssignment(topic_of=topic_of)


class _UnionFind:
    """Path-compressed union-find over int keys."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self._parent.setdefault(x, x)
        if parent != x:
            parent = self.find(parent)
            self._parent[x] = parent
        return parent

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic: smaller root wins.
            if rb < ra:
                ra, rb = rb, ra
            self._parent[rb] = ra


def merge_by_coretweeters(
    dataset: TwitterDataset,
    min_jaccard: float = 0.5,
    min_retweeters: int = 2,
) -> TopicAssignment:
    """Merge tweets whose retweeter sets overlap strongly.

    Candidate pairs are generated through the inverted index (only tweets
    sharing at least one retweeter are compared), so the scan is
    output-sensitive like the similarity computation itself.
    """
    if not 0.0 < min_jaccard <= 1.0:
        raise ValueError(f"min_jaccard must be in (0, 1], got {min_jaccard}")
    retweeters = {
        tweet_id: dataset.retweeters(tweet_id)
        for tweet_id in dataset.tweets
        if dataset.popularity(tweet_id) >= min_retweeters
    }
    by_user: dict[int, list[int]] = {}
    for tweet_id, users in retweeters.items():
        for user in users:
            by_user.setdefault(user, []).append(tweet_id)
    union = _UnionFind()
    compared: set[tuple[int, int]] = set()
    for tweets in by_user.values():
        ordered = sorted(tweets)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                if (a, b) in compared:
                    continue
                compared.add((a, b))
                users_a, users_b = retweeters[a], retweeters[b]
                inter = len(users_a & users_b)
                jaccard = inter / (len(users_a) + len(users_b) - inter)
                if jaccard >= min_jaccard:
                    union.union(a, b)
    topic_of = {
        tweet_id: (union.find(tweet_id) if tweet_id in retweeters else tweet_id)
        for tweet_id in dataset.tweets
    }
    return TopicAssignment(topic_of=topic_of)


def topic_profiles(
    retweets: Iterable[Retweet], assignment: TopicAssignment
) -> RetweetProfiles:
    """Retweet profiles over merged items instead of raw tweet ids.

    The returned object is a plain :class:`RetweetProfiles`, so every
    similarity / SimGraph API accepts it; "popularity" becomes the number
    of distinct users engaged with the *topic*, which is exactly the
    denominator Def. 3.1 wants once items are topics.
    """
    profiles = RetweetProfiles()
    for retweet in retweets:
        topic = assignment.topic_of.get(retweet.tweet, retweet.tweet)
        profiles.add(retweet.user, topic)
    return profiles
