"""Delta-driven SimGraph maintenance (paper §6.3 at service scale).

The §6.3 strategies in :mod:`repro.core.update` all rescore similarity
for *every* user on every maintenance run, even when only a handful of
retweets arrived in the window.  This module bounds the work to the
pairs that can actually change.

Definition 3.1 makes the dependency structure explicit::

    sim(u, v) = sum_{i in L_u ∩ L_v} 1/log(1 + m(i))  /  |L_u ∪ L_v|

so ``sim(u, v)`` moves only when

* ``L_u`` or ``L_v`` changed — ``u`` or ``v`` is a *dirty user*; or
* ``m(i)`` changed for some shared tweet ``i`` — and then both ``u``
  and ``v`` are retweeters of that *dirty tweet*.

Hence the **core** of the affected region is ``dirty users ∪
retweeters(dirty tweets)`` (plus any sources whose exploration
neighbourhood changed, e.g. new follow edges): every changed pair has at
least one endpoint there, and pairs between two non-core users are
bit-for-bit unchanged.  Core users get their whole out-row rebuilt.  A
non-core user ``u`` can still gain, lose or re-weigh edges *toward*
core users — but only for candidates in its exploration neighbourhood,
so the **fringe** is the ``hops``-hop in-neighbourhood of the core, and
each fringe row is patched in place on exactly its affected candidates.
Everything else is copied through untouched.

Fringe pair scores are computed from the core side (``sim`` is
symmetric), so the whole run costs one inverted-index walk and two
bounded BFS per *core* user instead of one walk and one BFS per *graph*
user — the crossfold-beats-from-scratch bet of Figure 16, taken to its
limit.  Walking the other side of a pair can reorder the float
accumulation, so patched weights may differ from a from-scratch build
by last-ulp round-off (the differential suite pins them within 1e-12;
edge sets are identical).

On the ``vectorized`` backend the fringe scores come from a
*dirty-submatrix* sparse product
(:meth:`~repro.core.simmatrix.SimilarityMatrix.similarity_submatrix`):
``|core| x |fringe|`` instead of the full user-squared Gram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.profiles import RetweetProfiles
from repro.core.similarity import similarities_from
from repro.core.simgraph import SimGraph, SimGraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.traversal import k_hop_neighborhood
from repro.obs import NULL, MetricsRegistry
from repro.utils.topk import top_k_items

__all__ = ["DeltaPlan", "DeltaReport", "affected_region", "apply_delta"]


@dataclass(frozen=True)
class DeltaPlan:
    """The affected region of one maintenance run.

    Attributes
    ----------
    core:
        Dirty users ∪ retweeters of weight-changed tweets ∪ extra
        sources (users whose exploration neighbourhood changed).  Their
        out-rows are rebuilt from scratch.
    fringe:
        Users outside the core that can reach a core user within the
        exploration radius — the only other rows that can change.
    needed:
        core user -> the fringe users that need its score; the exact
        (fringe, core) pairs patched, stored core-side because both the
        restricted walks and the fringe surgery consume them per core
        user.
    dirty_users / dirty_tweets:
        The raw profile-level dirt the plan was derived from.
    """

    core: frozenset[int]
    fringe: frozenset[int]
    needed: dict[int, set[int]]
    dirty_users: frozenset[int]
    dirty_tweets: frozenset[int]

    @property
    def candidates(self) -> dict[int, set[int]]:
        """fringe user -> the core users patched on its row.

        The fringe-side orientation of :attr:`needed`, derived on
        demand — the hot maintenance path only ever consumes the
        core-side map.
        """
        out: dict[int, set[int]] = {}
        for w, users in self.needed.items():
            for u in users:
                out.setdefault(u, set()).add(w)
        return out

    @property
    def affected(self) -> frozenset[int]:
        """Everyone whose row is rebuilt or patched."""
        return self.core | self.fringe

    @property
    def is_empty(self) -> bool:
        """True when maintenance is a no-op (nothing changed)."""
        return not self.core


@dataclass(frozen=True)
class DeltaReport:
    """What one :func:`apply_delta` run actually did.

    ``changed_users`` are the rows whose edge set or weights really
    moved (a superset check may rescore a pair back to its old value);
    ``topology_changed`` is True when any row gained or lost an edge —
    the signal that compiled CSR state cannot be weight-patched and
    warm propagation caches cannot be scoped-invalidated.
    """

    noop: bool
    core_size: int
    fringe_size: int
    rows_recomputed: int
    rows_patched: int
    pairs_rescored: int
    changed_users: frozenset[int]
    affected_users: frozenset[int]
    topology_changed: bool


def affected_region(
    profiles: RetweetProfiles,
    exploration_graph: DiGraph,
    extra_sources: Iterable[int] = (),
    hops: int = 2,
) -> DeltaPlan:
    """Compute the region a delta maintenance run must rescore.

    ``extra_sources`` are users whose *candidate set* changed even
    though their profile did not — the service passes the sources of
    new follow edges (and their in-neighbours) here.  ``hops`` must
    match the builder's exploration radius.
    """
    dirty_users = profiles.dirty_users
    dirty_tweets = profiles.dirty_tweets
    core: set[int] = set(dirty_users)
    core.update(extra_sources)
    for tweet in dirty_tweets:
        core.update(profiles.retweeters(tweet))
    needed: dict[int, set[int]] = {}
    preds = exploration_graph.predecessors
    for w in core:
        if w not in exploration_graph:
            continue
        # u reaches w within `hops` successor-steps iff w is in N_hops(u):
        # expand the predecessor direction from w, frontier by frontier
        # (C-level set unions beat a distance-tracking BFS here).
        seen = {w}
        frontier: Iterable[int] = (w,)
        for _ in range(hops):
            grown = set()
            for x in frontier:
                grown.update(preds(x))
            grown -= seen
            if not grown:
                break
            seen |= grown
            frontier = grown
        reaching = seen - core
        if not reaching:
            continue
        needed[w] = reaching
    fringe = set().union(*needed.values()) if needed else set()
    return DeltaPlan(
        core=frozenset(core),
        fringe=frozenset(fringe),
        needed=needed,
        dirty_users=dirty_users,
        dirty_tweets=dirty_tweets,
    )


def _reference_core_state(
    core: list[int],
    exploration_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
    needed: dict[int, set[int]],
) -> tuple[dict[int, dict[int, float]], dict[int, dict[int, float]], int]:
    """Core rows + symmetric score maps via one index walk per core user.

    Each walk is restricted to the user's k-hop neighbourhood plus the
    fringe users that need its score (``needed[w]``, the reverse of the
    plan's candidate map).  The candidate filter skips pairs without
    reordering the per-pair tweet accumulation, so the thresholded rows
    reproduce ``builder.edges_for_user`` bit-for-bit while the same
    walk yields every ``sim(w, ·)`` the fringe patches consume.
    """
    rows: dict[int, dict[int, float]] = {}
    sym: dict[int, dict[int, float]] = {}
    pairs = 0
    for w in core:
        if w not in exploration_graph or not profiles.has_profile(w):
            continue
        reach = k_hop_neighborhood(exploration_graph, w, builder.hops)
        wanted = needed.get(w)
        scores = similarities_from(
            profiles, w, candidates=reach | wanted if wanted else reach
        )
        sym[w] = scores
        pairs += len(scores)
        kept = {
            x: s for x, s in scores.items() if x in reach and s >= builder.tau
        }
        if (
            builder.max_influencers is not None
            and len(kept) > builder.max_influencers
        ):
            kept = dict(top_k_items(kept, builder.max_influencers))
        rows[w] = kept
    return rows, sym, pairs


def _vectorized_core_state(
    core: list[int],
    fringe: list[int],
    exploration_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
) -> tuple[dict[int, dict[int, float]], dict[int, dict[int, float]], int]:
    """Core rows and fringe scores from one shared incidence matrix.

    Core rows reuse the chunked scorer of the full vectorized build
    (:func:`~repro.core.simmatrix._chunk_edges`) against a candidate
    mask assembled from per-core-user BFS — O(core) rows instead of the
    full build's whole-graph reachability matmuls.  Fringe scores come
    from the dirty-submatrix product (|core| x |fringe| instead of the
    user-squared Gram).
    """
    from scipy import sparse

    import numpy as np

    from repro.core.simmatrix import (
        DEFAULT_CHUNK_SIZE,
        SimilarityMatrix,
        _chunk_edges,
    )

    matrix = SimilarityMatrix(
        profiles, extra_users=exploration_graph.nodes()
    )
    eligible = [
        u
        for u in core
        if u in exploration_graph and profiles.has_profile(u)
    ]
    rows: dict[int, dict[int, float]] = {}
    pairs = 0
    if eligible:
        mask_rows: list[int] = []
        mask_cols: list[int] = []
        for u in eligible:
            i = matrix.position(u)
            for v in k_hop_neighborhood(exploration_graph, u, builder.hops):
                mask_rows.append(i)
                mask_cols.append(matrix.position(v))
        reach = sparse.csr_matrix(
            (np.ones(len(mask_rows)), (mask_rows, mask_cols)),
            shape=(matrix.user_count, matrix.user_count),
        )
        state = (matrix, reach, builder.tau, builder.max_influencers)
        for start in range(0, len(eligible), DEFAULT_CHUNK_SIZE):
            chunk = eligible[start : start + DEFAULT_CHUNK_SIZE]
            for u, kept in _chunk_edges(state, chunk):
                rows[u] = kept
        pairs = sum(len(row) for row in rows.values())
    sym: dict[int, dict[int, float]] = {}
    if fringe and eligible:
        sub = matrix.similarity_submatrix(eligible, fringe)
        pairs += int(sub.nnz)
        indptr, indices, data = sub.indptr, sub.indices, sub.data
        for r, w in enumerate(eligible):
            lo, hi = indptr[r], indptr[r + 1]
            if lo == hi:
                continue
            sym[w] = {
                fringe[c]: float(s)
                for c, s in zip(indices[lo:hi], data[lo:hi])
            }
    return rows, sym, pairs


def apply_delta(
    old: SimGraph,
    exploration_graph: DiGraph,
    profiles: RetweetProfiles,
    builder: SimGraphBuilder,
    plan: DeltaPlan | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[SimGraph, DeltaReport]:
    """Scoped maintenance: rescore only the affected region of ``old``.

    Returns ``(refreshed, report)``.  With an empty delta the *same*
    graph object is returned and the report is a no-op.  The refreshed
    graph's edges are identical to ``builder.build(exploration_graph,
    profiles)`` — a full from-scratch rebuild — with weights equal up
    to last-ulp float round-off on patched fringe pairs (see module
    docstring); the differential suite pins both properties.

    With ``max_influencers`` set, a single rescored candidate can evict
    or admit *other* edges of a fringe row, so partial patching is
    unsound — fringe rows are promoted to full recomputation instead.
    """
    metrics = metrics if metrics is not None else builder.metrics
    if plan is None:
        plan = affected_region(profiles, exploration_graph, hops=builder.hops)
    metrics.counter("maintenance.dirty_users").inc(len(plan.dirty_users))
    metrics.counter("maintenance.dirty_tweets").inc(len(plan.dirty_tweets))
    if plan.is_empty:
        report = DeltaReport(
            noop=True, core_size=0, fringe_size=0, rows_recomputed=0,
            rows_patched=0, pairs_rescored=0, changed_users=frozenset(),
            affected_users=frozenset(), topology_changed=False,
        )
        return old, report

    core = set(plan.core)
    needed = plan.needed
    fringe = plan.fringe
    if builder.max_influencers is not None and plan.fringe:
        core |= plan.fringe
        needed = {}
        fringe = frozenset()
    core_sorted = sorted(core)
    fringe_sorted = sorted(fringe)
    metrics.counter("maintenance.affected_users").inc(
        len(core) + len(fringe)
    )

    tau = builder.tau
    with metrics.span("maintenance.delta"):
        if builder.backend == "vectorized":
            rows, sym, pairs_rescored = _vectorized_core_state(
                core_sorted, fringe_sorted, exploration_graph, profiles,
                builder,
            )
        else:
            rows, sym, pairs_rescored = _reference_core_state(
                core_sorted, exploration_graph, profiles, builder, needed
            )

        # Start from a clone of the old graph (unaffected pairs are
        # bit-identical under from-scratch, so their rows stay) and
        # apply only the changes: whole-row swaps for core users,
        # per-candidate surgery for fringe rows.
        changed: set[int] = set()
        topology_changed = False
        rows_patched = len(fringe_sorted)
        maybe_isolated: set[int] = set()
        result = old.graph.copy()
        old_graph = old.graph
        for u in core_sorted:
            row = rows.get(u, {})
            old_row = old_graph.out_row(u)
            if row == old_row:
                continue
            changed.add(u)
            if row.keys() != old_row.keys():
                topology_changed = True
                # Only nodes that *lost* an edge can end up isolated.
                maybe_isolated.update(old_row.keys() - row.keys())
                if not row:
                    maybe_isolated.add(u)
            if u in result or row:
                result.set_row(u, row)
        # Fringe surgery runs core-side: for each core user w, the only
        # (fringe u, w) pairs that can need work either score non-zero
        # now (u appears in w's walk) or carried an edge before — both
        # found by C-level set intersection, skipping the no-op majority
        # of candidate pairs.  For a fixed w every fringe row is touched
        # at most once, so the inner order is immaterial: surviving
        # edges keep their positions and new edges append in
        # ascending-w outer order.
        get_weight = result.get_weight
        update_weight = result.update_weight
        mark_changed = changed.add
        for w in core_sorted:
            wanted = needed.get(w)
            if not wanted:
                continue
            scores = sym.get(w) or {}
            attention = scores.keys() & wanted
            if w in old_graph:
                attention |= wanted.intersection(old_graph.predecessors(w))
            for u in attention:
                score = scores.get(u, 0.0)
                old_weight = get_weight(u, w)
                if score >= tau:
                    if old_weight is None:
                        result.add_edge(u, w, weight=score)
                        mark_changed(u)
                        topology_changed = True
                    elif old_weight != score:
                        update_weight(u, w, score)
                        mark_changed(u)
                elif old_weight is not None:
                    result.remove_edge(u, w)
                    mark_changed(u)
                    topology_changed = True
                    maybe_isolated.update((u, w))
        # A from-scratch build holds exactly the endpoints of kept
        # edges; drop any node the surgery left with no edge at all.
        for node in sorted(maybe_isolated):
            if (
                node in result
                and result.out_degree(node) == 0
                and result.in_degree(node) == 0
            ):
                result.remove_node(node)

    metrics.counter("maintenance.rows_recomputed").inc(len(core))
    metrics.counter("maintenance.rows_patched").inc(rows_patched)
    metrics.counter("maintenance.pairs_rescored").inc(pairs_rescored)
    report = DeltaReport(
        noop=False,
        core_size=len(core),
        fringe_size=len(fringe),
        rows_recomputed=len(core),
        rows_patched=rows_patched,
        pairs_rescored=pairs_rescored,
        changed_users=frozenset(changed),
        affected_users=frozenset(core) | fringe,
        topology_changed=topology_changed,
    )
    return SimGraph(result, tau=old.tau), report
