"""Jitted propagation kernel: Algorithm 1 compiled to machine code.

:class:`NumbaPropagationEngine` is the third rung of the
``prop_backend`` ladder.  The ``csr`` engine already replaced the
reference engine's dict walks with numpy segment sums, but every
fixpoint round still pays interpreter overhead for the gathers,
masks and scatters.  This module lowers the *entire* frontier fixpoint
into one kernel over the flat arrays of a
:class:`~repro.core.csr.CSRSimGraph` — frontier expansion, in-order
segment sums, tolerance/β tests and the mute bookkeeping fused into a
single pass per round — and compiles it with numba's ``njit`` when
numba is importable.  A ``propagate_many`` batch runs the same
single-task kernel ``prange``-parallel across tasks, so the batched
path is bit-identical to the sequence of single calls (no shared
accumulator, hence no reduction-order drift; the 1e-12 caveat the
differential harness allows is never needed in practice).

Exactness contract
------------------
Per dirty user the kernel accumulates ``sum += w_i * p_i`` strictly
left-to-right over the CSR row — the same float sequence as the
reference engine's Python ``sum`` and the csr engine's in-order
``bincount`` — then divides by ``|F_u|``.  Rounds are Jacobi (all sums
computed before any value is written).  The differential suite pins all
three engines to bit-identical single-task results.

Top-k pruning (opt-in, :meth:`NumbaPropagationEngine.propagate_topk`)
---------------------------------------------------------------------
A user ``u``'s score can never exceed ``ub(u) = (Σ_{v∈F_u} sim(u,v)) /
|F_u|`` — Def. 4.2 with every ``p(v)`` replaced by its maximum 1.0; the
same mean-row-weight quantity the β/γ(t) threshold analysis bounds
update magnitudes with.  Because floating-point add/mul/divide are
monotone and all weights are ≤ 1, the bound holds for the *computed*
values bit-for-bit, and because values start at (or resume from a
previous fixpoint below) the fixpoint and only ever rise, the running
k-th largest member score in any round is a lower bound of the final
top-k cutoff.  The kernel may therefore skip recomputing a dirty user
``u`` when (a) ``u`` influences nobody (``out_degree == 0`` — nobody
ever reads ``p(u)``, so skipping cannot perturb any other score) and
(b) ``max(ub(u), p(u))`` is strictly below the running cutoff (so
``u`` provably cannot enter the final top-k).  Retained scores stay
exact, hence the returned top-k is the exact top-k.  Pruning is *off*
for plain :meth:`propagate` calls and for warm starts from arbitrary
mappings (where the monotone-resume argument does not apply); the
Hypothesis suite in ``tests/test_kernel_pruning.py`` checks the
no-false-prunes property against the reference engine.

Fallback
--------
numba is an optional dependency.  When it is absent the same kernel
functions run as pure Python (they are written in the njit-able
subset), which keeps every code path testable; ``prop_backend="numba"``
then resolves to the ``csr`` engine with a one-line warning and a
``prop.kernel.fallback`` counter bump, and ``"auto"`` silently picks
the fastest available rung.  Set ``REPRO_PROP_KERNEL=python`` to force
the pure-Python kernels (differential testing without numba) or
``REPRO_NO_NUMBA=1`` to pretend numba is not installed.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.csr import CSRSimGraph
from repro.core.propagation import PropagationResult
from repro.core.propagation_csr import CSRPropagationEngine, CSRWarmState
from repro.core.simgraph import SimGraph
from repro.core.thresholds import ThresholdPolicy
from repro.obs import NULL, MetricsRegistry

__all__ = [
    "NUMBA_AVAILABLE",
    "NumbaPropagationEngine",
    "describe_backends",
    "ensure_compiled",
    "get_impls",
    "kernel_mode",
    "resolve_prop_backend",
]

try:  # pragma: no cover - exercised via the CI numba leg
    if os.environ.get("REPRO_NO_NUMBA"):
        raise ImportError("numba disabled via REPRO_NO_NUMBA")
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - default in numba-less environments
    NUMBA_AVAILABLE = False

#: Set when a lazy jit compile fails at runtime (broken numba install);
#: the engine then degrades to the pure-Python kernels.
_JIT_BROKEN = False

_EMPTY_F64 = np.empty(0, dtype=np.float64)


# ----------------------------------------------------------------------
# Kernels — written in the njit-able subset so the exact same source
# runs compiled (numba present) or interpreted (fallback / tests).
# ----------------------------------------------------------------------
def _fixpoint(
    inf_indptr,
    inf_indices,
    inf_weights,
    out_indptr,
    out_indices,
    p,
    member,
    seed_mask,
    muted,
    frontier_init,
    beta,
    tolerance,
    max_iterations,
    prune_k,
    prune_floor,
    ubound,
    pruned_mark,
    round_sizes,
):
    """One task's damped frontier fixpoint over CSR arrays.

    Mutates ``p``/``member``/``muted``/``pruned_mark`` in place, records
    the per-round frontier size in ``round_sizes`` and returns
    ``(iterations, updates, pruned, converged)``.
    """
    n = p.shape[0]
    cur = np.empty(n, np.int64)
    nxt = np.empty(n, np.int64)
    dirty = np.empty(n, np.int64)
    dirty_mark = np.zeros(n, np.bool_)
    new_vals = np.empty(n, np.float64)
    heap_size = prune_k if prune_k > 0 else 1
    heap = np.empty(heap_size, np.float64)
    n_cur = 0
    for i in range(n):
        if frontier_init[i]:
            cur[n_cur] = i
            n_cur += 1
    use_prune = prune_k > 0 and ubound.shape[0] == n
    iterations = 0
    updates = 0
    pruned = 0
    converged = 1
    while n_cur > 0:
        if iterations >= max_iterations:
            converged = 0
            break
        iterations += 1
        round_sizes[iterations - 1] = n_cur
        # Frontier expansion: users influenced by anyone whose value
        # just moved (minus seeds, which stay pinned at 1.0).
        n_dirty = 0
        for i in range(n_cur):
            f = cur[i]
            for e in range(out_indptr[f], out_indptr[f + 1]):
                v = out_indices[e]
                if not seed_mask[v] and not dirty_mark[v]:
                    dirty_mark[v] = True
                    dirty[n_dirty] = v
                    n_dirty += 1
        if n_dirty == 0:
            break
        # Running top-k cutoff: k-th largest member non-seed value via a
        # size-k min-heap (values only rise, so this lower-bounds the
        # final cutoff).
        cutoff = -1.0
        if use_prune:
            count = 0
            for i in range(n):
                if member[i] and not seed_mask[i]:
                    v2 = p[i]
                    if count < prune_k:
                        heap[count] = v2
                        count += 1
                        if count == prune_k:
                            for s in range(prune_k // 2 - 1, -1, -1):
                                root = s
                                while True:
                                    child = 2 * root + 1
                                    if child >= prune_k:
                                        break
                                    if (
                                        child + 1 < prune_k
                                        and heap[child + 1] < heap[child]
                                    ):
                                        child += 1
                                    if heap[child] < heap[root]:
                                        tmp = heap[root]
                                        heap[root] = heap[child]
                                        heap[child] = tmp
                                        root = child
                                    else:
                                        break
                    elif v2 > heap[0]:
                        heap[0] = v2
                        root = 0
                        while True:
                            child = 2 * root + 1
                            if child >= prune_k:
                                break
                            if (
                                child + 1 < prune_k
                                and heap[child + 1] < heap[child]
                            ):
                                child += 1
                            if heap[child] < heap[root]:
                                tmp = heap[root]
                                heap[root] = heap[child]
                                heap[child] = tmp
                                root = child
                            else:
                                break
            if count >= prune_k:
                cutoff = heap[0]
            if cutoff < prune_floor:
                cutoff = prune_floor
        # Scoring pass (Jacobi: every sum reads the previous round's
        # values).  Each row accumulates strictly left-to-right — the
        # reference engine's float sequence, bit for bit.
        for j in range(n_dirty):
            d = dirty[j]
            dirty_mark[d] = False
            if cutoff > 0.0 and out_indptr[d + 1] == out_indptr[d]:
                ub = ubound[d]
                if p[d] > ub:
                    ub = p[d]
                if ub < cutoff:
                    # Sink user that provably cannot reach the top-k:
                    # nobody reads p(d), so skipping its update leaves
                    # every retained score exact.
                    new_vals[j] = -1.0
                    pruned_mark[d] = True
                    pruned += 1
                    continue
            lo = inf_indptr[d]
            hi = inf_indptr[d + 1]
            total = 0.0
            for e in range(lo, hi):
                total += inf_weights[e] * p[inf_indices[e]]
            new_vals[j] = total / (hi - lo)
        # Scatter pass: tolerance stop test, β/γ(t) damping, mute rule.
        n_nxt = 0
        for j in range(n_dirty):
            d = dirty[j]
            new_p = new_vals[j]
            if new_p < 0.0:
                continue
            delta = new_p - p[d]
            if delta < 0.0:
                delta = -delta
            if delta <= tolerance:
                continue
            p[d] = new_p
            member[d] = True
            updates += 1
            if delta >= beta:
                if not muted[d]:
                    nxt[n_nxt] = d
                    n_nxt += 1
            elif beta > 0.0:
                muted[d] = True
        tmp_buf = cur
        cur = nxt
        nxt = tmp_buf
        n_cur = n_nxt
    return iterations, updates, pruned, converged


def _fixpoint_many_py(
    inf_indptr,
    inf_indices,
    inf_weights,
    out_indptr,
    out_indices,
    p2,
    member2,
    seed_mask2,
    muted2,
    frontier2,
    betas,
    tolerance,
    max_iterations,
    prune_ks,
    prune_floors,
    ubound,
    pruned2,
    rounds2,
    stats2,
):
    """Batch fixpoint: each task runs the single-task kernel (Python)."""
    for t in range(p2.shape[0]):
        it, up, pr, cv = _fixpoint(
            inf_indptr,
            inf_indices,
            inf_weights,
            out_indptr,
            out_indices,
            p2[t],
            member2[t],
            seed_mask2[t],
            muted2[t],
            frontier2[t],
            betas[t],
            tolerance,
            max_iterations,
            prune_ks[t],
            prune_floors[t],
            ubound,
            pruned2[t],
            rounds2[t],
        )
        stats2[t, 0] = it
        stats2[t, 1] = up
        stats2[t, 2] = pr
        stats2[t, 3] = cv


def _row_values(indptr, indices, weights, p, rows, out):
    """Def. 4.2 score of each requested CSR row against dense ``p``.

    In-order sequential accumulation per row — the shard workers use
    this to replace their per-user dict walks bit-identically.
    """
    for i in range(rows.shape[0]):
        r = rows[i]
        lo = indptr[r]
        hi = indptr[r + 1]
        total = 0.0
        for e in range(lo, hi):
            total += weights[e] * p[indices[e]]
        if hi > lo:
            out[i] = total / (hi - lo)
        else:
            out[i] = 0.0


_PY_IMPLS = {
    "fixpoint": _fixpoint,
    "fixpoint_many": _fixpoint_many_py,
    "row_values": _row_values,
}

if NUMBA_AVAILABLE:  # pragma: no cover - exercised via the CI numba leg
    _fixpoint_jit = njit(nogil=True)(_fixpoint)
    _row_values_jit = njit(nogil=True)(_row_values)

    @njit(parallel=True, nogil=True)
    def _fixpoint_many_jit(
        inf_indptr,
        inf_indices,
        inf_weights,
        out_indptr,
        out_indices,
        p2,
        member2,
        seed_mask2,
        muted2,
        frontier2,
        betas,
        tolerance,
        max_iterations,
        prune_ks,
        prune_floors,
        ubound,
        pruned2,
        rounds2,
        stats2,
    ):
        # prange across tasks: rows are disjoint, every task runs the
        # sequential single-task kernel, so the batch is bit-identical
        # to the equivalent sequence of single calls.
        for t in prange(p2.shape[0]):
            it, up, pr, cv = _fixpoint_jit(
                inf_indptr,
                inf_indices,
                inf_weights,
                out_indptr,
                out_indices,
                p2[t],
                member2[t],
                seed_mask2[t],
                muted2[t],
                frontier2[t],
                betas[t],
                tolerance,
                max_iterations,
                prune_ks[t],
                prune_floors[t],
                ubound,
                pruned2[t],
                rounds2[t],
            )
            stats2[t, 0] = it
            stats2[t, 1] = up
            stats2[t, 2] = pr
            stats2[t, 3] = cv

    _JIT_IMPLS = {
        "fixpoint": _fixpoint_jit,
        "fixpoint_many": _fixpoint_many_jit,
        "row_values": _row_values_jit,
    }
else:
    _JIT_IMPLS = _PY_IMPLS


# ----------------------------------------------------------------------
# Availability / resolution
# ----------------------------------------------------------------------
def kernel_mode() -> str:
    """How the kernel can run right now: ``jit``, ``python`` or ``off``.

    ``REPRO_PROP_KERNEL=python`` forces the interpreted kernels even
    when numba is importable (differential testing); with numba absent
    the same value *enables* the kernel backend in interpreted form.
    ``REPRO_PROP_KERNEL=off`` disables the backend outright.
    """
    forced = os.environ.get("REPRO_PROP_KERNEL", "").strip().lower()
    if forced in ("python", "py"):
        return "python"
    if forced == "off":
        return "off"
    if NUMBA_AVAILABLE and not _JIT_BROKEN:
        return "jit"
    return "off"


def get_impls(jit: bool | None = None) -> tuple[dict, bool]:
    """Kernel implementations to use: ``(impls, is_jit)``.

    ``jit=None`` follows :func:`kernel_mode`; ``jit=True`` demands the
    compiled kernels (raises when numba is not importable); ``jit=False``
    selects the pure-Python kernels explicitly.
    """
    if jit is None:
        jit = kernel_mode() == "jit"
    if jit:
        if not NUMBA_AVAILABLE:
            raise RuntimeError(
                "numba is not importable; jitted kernels are unavailable "
                "(pass jit=False or install numba)"
            )
        return _JIT_IMPLS, True
    return _PY_IMPLS, False


def describe_backends() -> str:
    """Human-readable list of backends *actually* available right now."""
    mode = kernel_mode()
    if mode == "jit":
        numba_note = "numba (jit-compiled)"
    elif mode == "python":
        numba_note = "numba (pure-python kernels; numba not importable)"
    else:
        numba_note = (
            "numba (unavailable: numba not importable; resolves to csr)"
        )
    return ", ".join(
        ("reference", "csr", numba_note, "auto (picks fastest available)")
    )


def warn_kernel_fallback(
    metrics: MetricsRegistry = NULL, context: str = "propagation"
) -> None:
    """Record (counter + one-line warning) a numba→csr fallback."""
    metrics.counter("prop.kernel.fallback").inc()
    warnings.warn(
        f"prop_backend='numba' requested for {context} but numba is not "
        "importable; falling back to the numpy csr engine "
        "(set REPRO_PROP_KERNEL=python to run the interpreted kernels)",
        RuntimeWarning,
        stacklevel=3,
    )


def resolve_prop_backend(
    prop_backend: str, metrics: MetricsRegistry = NULL,
    context: str = "propagation",
) -> str:
    """Map ``auto``/``numba`` onto a concretely runnable backend name.

    ``auto`` silently picks ``numba`` when the kernel can run (jitted or
    forced-python) and ``csr`` otherwise; an explicit ``numba`` request
    that cannot be honoured falls back to ``csr`` with a warning and a
    ``prop.kernel.fallback`` counter bump.  Other names pass through.
    """
    if prop_backend == "auto":
        return "numba" if kernel_mode() != "off" else "csr"
    if prop_backend == "numba" and kernel_mode() == "off":
        warn_kernel_fallback(metrics, context)
        return "csr"
    return prop_backend


# ----------------------------------------------------------------------
# JIT warm-up
# ----------------------------------------------------------------------
_COMPILE_SECONDS: float | None = None


def _warm_kernels(impls: dict) -> None:
    """Run every kernel once on a 2-node toy graph (triggers compile)."""
    indptr = np.array([0, 1, 2], dtype=np.int64)
    indices = np.array([1, 0], dtype=np.int64)
    weights = np.array([0.5, 0.5], dtype=np.float64)
    p = np.array([1.0, 0.0], dtype=np.float64)
    member = np.zeros(2, dtype=bool)
    seed_mask = np.array([True, False])
    muted = np.zeros(2, dtype=bool)
    frontier = np.array([True, False])
    pruned = np.zeros(2, dtype=bool)
    rounds = np.zeros(4, dtype=np.int64)
    ubound = np.array([0.5, 0.5], dtype=np.float64)
    impls["fixpoint"](
        indptr, indices, weights, indptr, indices,
        p, member, seed_mask, muted, frontier,
        0.0, 1e-10, 4, 1, 0.0, ubound, pruned, rounds,
    )
    p2 = np.array([[1.0, 0.0]], dtype=np.float64)
    impls["fixpoint_many"](
        indptr, indices, weights, indptr, indices,
        p2, member[None, :].copy(), seed_mask[None, :].copy(),
        np.zeros((1, 2), dtype=bool), np.array([[True, False]]),
        np.zeros(1, dtype=np.float64), 1e-10, 4,
        np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.float64),
        _EMPTY_F64, np.zeros((1, 2), dtype=bool),
        np.zeros((1, 4), dtype=np.int64), np.zeros((1, 4), dtype=np.int64),
    )
    out = np.empty(1, dtype=np.float64)
    impls["row_values"](
        indptr, indices, weights, p, np.array([0], dtype=np.int64), out
    )


def ensure_compiled(metrics: MetricsRegistry = NULL) -> float:
    """Compile the jitted kernels now (idempotent) and report the cost.

    Returns the one-time compile wall time in seconds (0.0 when numba is
    absent or the kernels were already compiled by this process) and
    records it in the ``prop.kernel.compile_seconds`` timing gauge —
    stripped from deterministic snapshots like every wall-clock metric.
    A compile *failure* (broken numba install) flips the module to the
    pure-Python kernels instead of raising.
    """
    global _COMPILE_SECONDS, _JIT_BROKEN
    if not NUMBA_AVAILABLE or _JIT_BROKEN:
        return 0.0
    if _COMPILE_SECONDS is None:  # pragma: no cover - CI numba leg
        start = time.perf_counter()
        try:
            _warm_kernels(_JIT_IMPLS)
        except Exception as exc:
            _JIT_BROKEN = True
            warnings.warn(
                f"numba kernel compilation failed ({exc}); using the "
                "pure-python kernels",
                RuntimeWarning,
                stacklevel=2,
            )
            metrics.counter("prop.kernel.fallback").inc()
            return 0.0
        _COMPILE_SECONDS = time.perf_counter() - start
    metrics.gauge("prop.kernel.compile_seconds", timing=True).set(
        _COMPILE_SECONDS
    )
    return _COMPILE_SECONDS


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class NumbaPropagationEngine(CSRPropagationEngine):
    """Kernel-compiled drop-in for the csr/reference engines.

    Inherits the CSR compilation, warm-state encode/decode
    (:class:`~repro.core.propagation_csr.CSRWarmState`) and result
    construction from :class:`CSRPropagationEngine`; only the fixpoint
    itself runs in the kernel.  ``jit=None`` (default) compiles with
    numba when importable and falls back to the interpreted kernels
    otherwise — construction never fails for lack of numba.
    """

    def __init__(
        self,
        simgraph: SimGraph,
        threshold: ThresholdPolicy | None = None,
        tolerance: float = 1e-10,
        max_iterations: int = 200,
        metrics: MetricsRegistry | None = None,
        csr: CSRSimGraph | None = None,
        jit: bool | None = None,
    ):
        super().__init__(
            simgraph,
            threshold=threshold,
            tolerance=tolerance,
            max_iterations=max_iterations,
            metrics=metrics,
            csr=csr,
        )
        self._impls, self._jit = get_impls(jit)
        if self._jit:  # pragma: no cover - CI numba leg
            ensure_compiled(self.metrics)
            if _JIT_BROKEN:
                self._impls, self._jit = get_impls(False)
        self._ubound: np.ndarray | None = None
        self._ub_valid = False
        self._last_pruned: list[int] = []

    @property
    def jitted(self) -> bool:
        """Whether this engine runs the numba-compiled kernels."""
        return self._jit

    # ------------------------------------------------------------------
    # Pruning support
    # ------------------------------------------------------------------
    def upper_bounds(self) -> np.ndarray:
        """Static per-user score bound ``ub(u) = Σ sim(u,·) / |F_u|``.

        Computed with the same in-order row accumulation as the kernel,
        so ``p(u) <= ub(u)`` holds for the computed floats bit-for-bit
        (monotone float ops, every ``p <= 1``); rows without influencers
        get 0.  Cached per engine; valid as a bound only while every
        weight is ≤ 1 (checked — pruning disables itself otherwise).
        """
        if self._ubound is None:
            csr = self.csr
            n = csr.node_count
            rows = np.repeat(
                np.arange(n, dtype=np.int64), csr.inf_counts
            )
            totals = np.bincount(
                rows, weights=csr.inf_weights, minlength=n
            )
            ub = np.zeros(n, dtype=np.float64)
            nz = csr.inf_counts > 0
            ub[nz] = totals[nz] / csr.inf_counts[nz]
            self._ubound = ub
            self._ub_valid = bool(
                csr.inf_weights.size == 0
                or float(csr.inf_weights.max()) <= 1.0
            )
        return self._ubound

    def take_pruned(self) -> list[int]:
        """User ids pruned by the most recent :meth:`propagate_topk`."""
        return self._last_pruned

    def propagate_topk(
        self,
        seeds: Iterable[int],
        k: int,
        popularity: int | None = None,
        initial: Mapping[int, float] | CSRWarmState | None = None,
        min_score: float = 0.0,
    ) -> tuple[list[tuple[int, float]], PropagationResult]:
        """Exact top-k non-seed scores, pruning hopeless candidates.

        Returns ``(ranked, result)`` where ``ranked`` is the exact top-k
        ``(user, score)`` list (score-descending, user-ascending ties)
        among non-seeds with ``score >= min_score``.  Sink users whose
        upper bound provably cannot reach the running cutoff are never
        recomputed; their entries in ``result`` (and the stored warm
        state) may be stale-low, which is still a valid warm start —
        resumed values only rise toward the fixpoint.  Pruning is
        disabled for warm starts from arbitrary mappings (monotone
        resume is only guaranteed from engine-produced states).
        """
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        seed_list = [s for s in seeds if s is not None]
        with self.metrics.span("propagation"):
            result = self._propagate(
                seed_list, popularity, initial,
                prune_k=k, prune_floor=min_score,
            )
        seed_set = set(seed_list)
        ranked = sorted(
            (
                (user, score)
                for user, score in result.probabilities.items()
                if user not in seed_set and score >= min_score
            ),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:k], result

    def _prune_allowed(self, initial) -> bool:
        # Cold starts and engine-produced warm states resume below the
        # fixpoint (monotone), so the running cutoff is a sound lower
        # bound; an arbitrary mapping carries no such guarantee.
        return (
            initial is None
            or isinstance(initial, CSRWarmState)
            or not initial
        )

    # ------------------------------------------------------------------
    # Kernel-backed fixpoints
    # ------------------------------------------------------------------
    def _propagate(
        self, seeds, popularity, initial, prune_k=0, prune_floor=0.0
    ):
        metrics = self.metrics
        csr = self.csr
        (
            seed_set, seed_idx, off_seeds, beta, p, member, seed_mask,
            off_graph, frontier,
        ) = self._load_task(seeds, popularity, initial)
        n = csr.node_count
        muted = np.zeros(n, dtype=bool)
        pruned_mark = np.zeros(n, dtype=bool)
        frontier_init = np.zeros(n, dtype=bool)
        frontier_init[frontier] = True
        round_sizes = np.zeros(self.max_iterations, dtype=np.int64)
        use_prune = prune_k > 0 and self._prune_allowed(initial)
        if use_prune:
            ubound = self.upper_bounds()
            use_prune = self._ub_valid
        ubound = self.upper_bounds() if use_prune else _EMPTY_F64
        with metrics.span("solve"):
            iterations, updates, pruned, conv = self._impls["fixpoint"](
                csr.inf_indptr, csr.inf_indices, csr.inf_weights,
                csr.out_indptr, csr.out_indices,
                p, member, seed_mask, muted, frontier_init,
                float(beta), float(self.tolerance),
                int(self.max_iterations),
                int(prune_k) if use_prune else 0, float(prune_floor),
                ubound, pruned_mark, round_sizes,
            )
        iterations = int(iterations)
        updates = int(updates)
        pruned = int(pruned)
        converged = bool(conv)
        probabilities, state = self._finish_task(
            seed_idx, off_seeds, p, member, off_graph
        )
        self._last_state = state
        self._last_pruned = (
            csr.users[np.flatnonzero(pruned_mark)].tolist() if pruned else []
        )
        frontier_hist = metrics.histogram("propagation.frontier")
        for size in round_sizes[:iterations]:
            frontier_hist.observe(int(size))
        metrics.counter("propagation.runs").inc()
        metrics.counter("propagation.iterations").inc(iterations)
        metrics.counter("propagation.updates").inc(updates)
        metrics.counter("propagation.threshold_skips").inc(
            int(np.count_nonzero(muted))
        )
        if not converged:
            metrics.counter("propagation.non_converged").inc()
        metrics.histogram("propagation.seeds").observe(len(seed_set))
        metrics.histogram("propagation.touched").observe(len(probabilities))
        metrics.counter("prop.kernel.runs").inc()
        metrics.histogram("prop.kernel.rounds").observe(iterations)
        if pruned:
            metrics.counter("prop.kernel.pruned").inc(pruned)
        return PropagationResult(
            probabilities=probabilities,
            iterations=iterations,
            updates=updates,
            converged=converged,
        )

    def _propagate_many(self, seed_sets, popularities, initials):
        metrics = self.metrics
        csr = self.csr
        n = csr.node_count
        tasks = len(seed_sets)
        seed_set_l, seed_idx_l, off_seeds_l, off_graph_l = [], [], [], []
        betas = np.zeros(tasks, dtype=np.float64)
        p2 = np.zeros((tasks, n), dtype=np.float64)
        member2 = np.zeros((tasks, n), dtype=bool)
        seed_mask2 = np.zeros((tasks, n), dtype=bool)
        frontier2 = np.zeros((tasks, n), dtype=bool)
        for c in range(tasks):
            (
                seed_set, seed_idx, off_seeds, beta, p_c, member_c,
                seed_mask_c, off_graph, frontier_c,
            ) = self._load_task(seed_sets[c], popularities[c], initials[c])
            seed_set_l.append(seed_set)
            seed_idx_l.append(seed_idx)
            off_seeds_l.append(off_seeds)
            off_graph_l.append(off_graph)
            betas[c] = beta
            p2[c] = p_c
            member2[c] = member_c
            seed_mask2[c] = seed_mask_c
            frontier2[c, frontier_c] = True
        muted2 = np.zeros((tasks, n), dtype=bool)
        pruned2 = np.zeros((tasks, n), dtype=bool)
        rounds2 = np.zeros((tasks, self.max_iterations), dtype=np.int64)
        stats2 = np.zeros((tasks, 4), dtype=np.int64)
        with metrics.span("solve"):
            self._impls["fixpoint_many"](
                csr.inf_indptr, csr.inf_indices, csr.inf_weights,
                csr.out_indptr, csr.out_indices,
                p2, member2, seed_mask2, muted2, frontier2,
                betas, float(self.tolerance), int(self.max_iterations),
                np.zeros(tasks, dtype=np.int64),
                np.zeros(tasks, dtype=np.float64),
                _EMPTY_F64, pruned2, rounds2, stats2,
            )
        results = []
        states = []
        frontier_hist = metrics.histogram("propagation.frontier")
        seeds_hist = metrics.histogram("propagation.seeds")
        touched_hist = metrics.histogram("propagation.touched")
        rounds_hist = metrics.histogram("prop.kernel.rounds")
        for c in range(tasks):
            iterations = int(stats2[c, 0])
            probabilities, state = self._finish_task(
                seed_idx_l[c], off_seeds_l[c], p2[c], member2[c],
                off_graph_l[c],
            )
            results.append(
                PropagationResult(
                    probabilities=probabilities,
                    iterations=iterations,
                    updates=int(stats2[c, 1]),
                    converged=bool(stats2[c, 3]),
                )
            )
            states.append(state)
            for size in rounds2[c, :iterations]:
                frontier_hist.observe(int(size))
            seeds_hist.observe(len(seed_set_l[c]))
            touched_hist.observe(len(probabilities))
            rounds_hist.observe(iterations)
        metrics.counter("propagation.runs").inc(tasks)
        metrics.counter("propagation.iterations").inc(int(stats2[:, 0].sum()))
        metrics.counter("propagation.updates").inc(int(stats2[:, 1].sum()))
        metrics.counter("propagation.threshold_skips").inc(
            int(np.count_nonzero(muted2))
        )
        failed = tasks - int(np.count_nonzero(stats2[:, 3]))
        if failed:
            metrics.counter("propagation.non_converged").inc(failed)
        metrics.counter("prop.kernel.runs").inc(tasks)
        self._last_states = states
        return results
