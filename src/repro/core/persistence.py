"""SimGraph persistence.

Building the similarity graph is the expensive step (the paper's 311
ms/user adds up to 1.4 hours at crawl scale), so a deployed service wants
to snapshot it: :func:`save_simgraph` / :func:`load_simgraph` write a
compact JSONL edge dump with a metadata header that round-trips the graph
exactly, including τ and edge weights.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.simgraph import SimGraph
from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = ["save_simgraph", "load_simgraph"]

FORMAT_VERSION = 1


def save_simgraph(simgraph: SimGraph, path: str | Path) -> Path:
    """Write ``simgraph`` to ``path`` (single JSONL file).

    Line 1 is a metadata header; each further line is one edge
    ``[source, target, weight]``.  Isolated nodes are listed in the
    header so the round trip preserves the exact node set.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    isolated = [
        node
        for node in simgraph.graph.nodes()
        if simgraph.graph.out_degree(node) == 0
        and simgraph.graph.in_degree(node) == 0
    ]
    header = {
        "format": FORMAT_VERSION,
        "tau": simgraph.tau,
        "nodes": simgraph.node_count,
        "edges": simgraph.edge_count,
        "isolated": sorted(isolated),
    }
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps(header) + "\n")
        for u, v, w in simgraph.graph.edges():
            f.write(json.dumps([u, v, w]) + "\n")
    return path


def load_simgraph(path: str | Path) -> SimGraph:
    """Load a snapshot written by :func:`save_simgraph`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"{path} does not exist")
    graph = DiGraph()
    with open(path, encoding="utf-8") as f:
        header_line = f.readline().strip()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"{path}: invalid header") from exc
        if not isinstance(header, dict) or "tau" not in header:
            raise DatasetError(f"{path}: not a SimGraph snapshot")
        if header.get("format") != FORMAT_VERSION:
            raise DatasetError(
                f"{path}: unsupported format {header.get('format')!r}"
            )
        for node in header.get("isolated", ()):
            graph.add_node(node)
        for line_no, line in enumerate(f, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                u, v, w = json.loads(line)
            except (json.JSONDecodeError, ValueError) as exc:
                raise DatasetError(f"{path}:{line_no}: malformed edge") from exc
            graph.add_edge(u, v, weight=float(w))
    simgraph = SimGraph(graph, tau=float(header["tau"]))
    expected = (header.get("nodes"), header.get("edges"))
    actual = (simgraph.node_count, simgraph.edge_count)
    if expected != actual:
        raise DatasetError(
            f"{path}: header counts {expected} disagree with content {actual}"
        )
    return simgraph
