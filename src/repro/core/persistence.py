"""SimGraph persistence.

Building the similarity graph is the expensive step (the paper's 311
ms/user adds up to 1.4 hours at crawl scale), so a deployed service wants
to snapshot it.  Two formats round-trip a graph exactly, including τ and
edge weights:

* **format 1** — a compact JSONL edge dump with a metadata header: line 1
  is the header, each further line one ``[source, target, weight]`` edge.
  Human-greppable, fine for thousands of users.
* **format 2** — a binary columnar layout for paper-scale graphs: a
  JSON header line padded to a 4 KiB-multiple block, followed by the raw
  little-endian CSR sections (``users``, ``indptr``, ``indices``,
  ``weights``) at 64-byte-aligned offsets recorded in the header.  With
  ``load_simgraph(path, mmap=True)`` the sections are ``np.memmap``-ed
  zero-copy and wrapped in an :class:`~repro.core.csr.ArraySimGraph`
  — a million-edge graph is ready for the ``csr`` propagation backend
  in milliseconds, without ever materializing a dict adjacency.

Both save paths write to a ``.tmp`` sibling and ``os.replace`` it into
place, so a crash mid-write can never leave a truncated file under the
snapshot's name.  Both load paths validate weights (finite, strictly
positive — a corrupted snapshot must fail loudly, not propagate NaNs
into every downstream score) and cross-check the header counts.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import numpy as np

from repro.core.csr import ArraySimGraph, CSRSimGraph
from repro.core.simgraph import SimGraph
from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = ["save_simgraph", "load_simgraph"]

FORMAT_VERSION = 1
FORMAT_VERSION_V2 = 2

#: The v2 header line is space-padded to a multiple of this block size,
#: so array offsets are stable and page-aligned.
_HEADER_BLOCK = 4096
#: Array sections start at offsets aligned to this (cache-line friendly,
#: and satisfies any dtype's alignment requirement).
_SECTION_ALIGN = 64

#: v2 section order and dtypes (little-endian, fixed).
_V2_SECTIONS = (
    ("users", "<i8"),
    ("indptr", "<i8"),
    ("indices", "<i8"),
    ("weights", "<f8"),
)


def save_simgraph(
    simgraph: SimGraph, path: str | Path, format: int = FORMAT_VERSION
) -> Path:
    """Write ``simgraph`` to ``path`` atomically.

    ``format=1`` writes the JSONL edge dump; ``format=2`` writes the
    binary columnar layout (see module docstring).  Either way the data
    lands in a ``.tmp`` sibling first and is renamed over ``path`` only
    once fully flushed — a crash mid-write leaves the previous snapshot
    (or nothing) in place, never a truncated file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if format == FORMAT_VERSION:
        _save_v1(simgraph, path)
    elif format == FORMAT_VERSION_V2:
        _save_v2(simgraph, path)
    else:
        raise DatasetError(f"unknown snapshot format {format!r}")
    return path


def load_simgraph(path: str | Path, mmap: bool = False) -> SimGraph:
    """Load a snapshot written by :func:`save_simgraph` (either format).

    With ``mmap=True`` (format 2 only) the CSR sections are memory-mapped
    read-only and the returned graph is an
    :class:`~repro.core.csr.ArraySimGraph`: count/row queries and the
    ``csr`` propagation backend run straight off the mapped arrays, and
    the dict adjacency is only materialized if some legacy consumer asks
    for ``.graph``.  Weights are validated (finite, strictly positive)
    on every path; corrupted or truncated files raise
    :class:`~repro.exceptions.DatasetError`.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"{path} does not exist")
    with open(path, "rb") as f:
        header_line = f.readline()
    try:
        header = json.loads(header_line.decode("utf-8").strip())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DatasetError(f"{path}: invalid header") from exc
    if not isinstance(header, dict) or "tau" not in header:
        raise DatasetError(f"{path}: not a SimGraph snapshot")
    fmt = header.get("format")
    if fmt == FORMAT_VERSION:
        if mmap:
            raise DatasetError(
                f"{path}: mmap=True requires a format-2 binary snapshot "
                "(this file is format 1; re-save with format=2)"
            )
        return _load_v1(path, header)
    if fmt == FORMAT_VERSION_V2:
        return _load_v2(path, header, mmap=mmap)
    raise DatasetError(f"{path}: unsupported format {fmt!r}")


# ----------------------------------------------------------------------
# Atomic replacement
# ----------------------------------------------------------------------
def _replace_atomically(tmp: Path, path: Path) -> None:
    os.replace(tmp, path)


def _write_atomic(path: Path, writer, mode: str) -> None:
    """Run ``writer(handle)`` against ``<path>.tmp``, then rename over
    ``path``.  The tmp file is fsynced before the rename and removed on
    any failure, so readers only ever see complete snapshots."""
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, mode) as f:
            writer(f)
            f.flush()
            os.fsync(f.fileno())
        _replace_atomically(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


# ----------------------------------------------------------------------
# Format 1 — JSONL edge dump
# ----------------------------------------------------------------------
def _save_v1(simgraph: SimGraph, path: Path) -> None:
    isolated = [
        node
        for node in simgraph.graph.nodes()
        if simgraph.graph.out_degree(node) == 0
        and simgraph.graph.in_degree(node) == 0
    ]
    header = {
        "format": FORMAT_VERSION,
        "tau": simgraph.tau,
        "nodes": simgraph.node_count,
        "edges": simgraph.edge_count,
        "isolated": sorted(isolated),
    }

    def writer(f):
        f.write(json.dumps(header) + "\n")
        for u, v, w in simgraph.graph.edges():
            f.write(json.dumps([u, v, w]) + "\n")

    _write_atomic(path, writer, "w")


def _load_v1(path: Path, header: dict) -> SimGraph:
    graph = DiGraph()
    with open(path, encoding="utf-8") as f:
        f.readline()  # header, already parsed
        for node in header.get("isolated", ()):
            graph.add_node(node)
        for line_no, line in enumerate(f, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                u, v, w = json.loads(line)
            except (json.JSONDecodeError, ValueError) as exc:
                raise DatasetError(f"{path}:{line_no}: malformed edge") from exc
            weight = float(w)
            if not math.isfinite(weight) or weight <= 0.0:
                raise DatasetError(
                    f"{path}:{line_no}: invalid weight {w!r} "
                    "(must be finite and positive)"
                )
            graph.add_edge(u, v, weight=weight)
    simgraph = SimGraph(graph, tau=float(header["tau"]))
    expected = (header.get("nodes"), header.get("edges"))
    actual = (simgraph.node_count, simgraph.edge_count)
    if expected != actual:
        raise DatasetError(
            f"{path}: header counts {expected} disagree with content {actual}"
        )
    return simgraph


# ----------------------------------------------------------------------
# Format 2 — binary columnar CSR
# ----------------------------------------------------------------------
def _simgraph_arrays(
    simgraph: SimGraph,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The four CSR sections of ``simgraph``, in canonical dtypes."""
    if isinstance(simgraph, ArraySimGraph):
        users, indptr, indices, weights = simgraph.arrays()
    else:
        csr = CSRSimGraph.from_simgraph(simgraph)
        users, indptr, indices, weights = (
            csr.users, csr.inf_indptr, csr.inf_indices, csr.inf_weights,
        )
    return (
        np.ascontiguousarray(users, dtype="<i8"),
        np.ascontiguousarray(indptr, dtype="<i8"),
        np.ascontiguousarray(indices, dtype="<i8"),
        np.ascontiguousarray(weights, dtype="<f8"),
    )


def _save_v2(simgraph: SimGraph, path: Path) -> None:
    users, indptr, indices, weights = _simgraph_arrays(simgraph)
    arrays = {
        "users": users, "indptr": indptr, "indices": indices,
        "weights": weights,
    }
    sections: dict[str, dict] = {}
    offset = 0
    for name, dtype in _V2_SECTIONS:
        array = arrays[name]
        offset = -(-offset // _SECTION_ALIGN) * _SECTION_ALIGN
        sections[name] = {
            "dtype": dtype, "offset": offset, "length": len(array),
        }
        offset += array.nbytes
    header = {
        "format": FORMAT_VERSION_V2,
        "tau": simgraph.tau,
        "nodes": len(users),
        "edges": len(indices),
        "sections": sections,
        "data_start": 0,
    }
    # The header line is padded to a block multiple; its own length
    # depends on the data_start digits, so settle by iteration (the
    # second pass is already stable in practice).
    data_start = _HEADER_BLOCK
    while True:
        header["data_start"] = data_start
        encoded = json.dumps(header, sort_keys=True).encode("utf-8")
        needed = -(-(len(encoded) + 1) // _HEADER_BLOCK) * _HEADER_BLOCK
        if needed == data_start:
            break
        data_start = needed

    def writer(f):
        f.write(encoded)
        f.write(b" " * (data_start - len(encoded) - 1))
        f.write(b"\n")
        for name, _ in _V2_SECTIONS:
            section = sections[name]
            f.seek(data_start + section["offset"])
            f.write(arrays[name].tobytes())

    _write_atomic(path, writer, "wb")


def _load_v2(path: Path, header: dict, mmap: bool) -> ArraySimGraph:
    try:
        data_start = int(header["data_start"])
        sections = header["sections"]
        nodes = int(header["nodes"])
        edges = int(header["edges"])
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"{path}: malformed v2 header") from exc
    size = path.stat().st_size
    arrays: dict[str, np.ndarray] = {}
    for name, dtype in _V2_SECTIONS:
        try:
            section = sections[name]
            offset = data_start + int(section["offset"])
            length = int(section["length"])
            stored_dtype = section["dtype"]
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(f"{path}: malformed section {name!r}") from exc
        if stored_dtype != dtype:
            raise DatasetError(
                f"{path}: section {name!r} has dtype {stored_dtype!r}, "
                f"expected {dtype!r}"
            )
        end = offset + length * np.dtype(dtype).itemsize
        # Empty sections occupy no bytes (the writer never extends the
        # file for them), so only non-empty ones can be truncated.
        if length and end > size:
            raise DatasetError(
                f"{path}: truncated snapshot — section {name!r} ends at "
                f"byte {end} but the file holds {size}"
            )
        if mmap:
            arrays[name] = (
                np.memmap(path, dtype=dtype, mode="r",
                          offset=offset, shape=(length,))
                if length
                else np.empty(0, dtype=dtype)
            )
        else:
            with open(path, "rb") as f:
                f.seek(offset)
                arrays[name] = np.fromfile(f, dtype=dtype, count=length)
                if len(arrays[name]) != length:
                    raise DatasetError(
                        f"{path}: truncated snapshot — short read in "
                        f"section {name!r}"
                    )
    users, indptr = arrays["users"], arrays["indptr"]
    indices, weights = arrays["indices"], arrays["weights"]
    if len(users) != nodes or len(indices) != edges or len(weights) != edges:
        raise DatasetError(
            f"{path}: header counts ({nodes} nodes, {edges} edges) "
            "disagree with section lengths"
        )
    if len(indptr) != nodes + 1 or (nodes >= 0 and (
        len(indptr) == 0 or indptr[0] != 0 or indptr[-1] != edges
    )):
        raise DatasetError(f"{path}: corrupt indptr section")
    if np.any(np.diff(indptr) < 0):
        raise DatasetError(f"{path}: indptr is not monotone")
    if edges:
        if int(indices.min()) < 0 or int(indices.max()) >= nodes:
            raise DatasetError(f"{path}: edge target out of range")
        bad = np.flatnonzero(~np.isfinite(weights) | (weights <= 0.0))
        if bad.size:
            i = int(bad[0])
            raise DatasetError(
                f"{path}: invalid weight {weights[i]!r} at edge {i} "
                "(must be finite and positive)"
            )
    if nodes:
        # Our writers emit users strictly sorted, so uniqueness is one
        # O(n) diff; np.unique would sort-copy the whole (possibly
        # memory-mapped) section — hundreds of ms at a million nodes.
        diffs = np.diff(users)
        if np.any(diffs <= 0) and len(np.unique(users)) != nodes:
            raise DatasetError(f"{path}: duplicate node ids")
    return ArraySimGraph(users, indptr, indices, weights,
                         tau=float(header["tau"]))
