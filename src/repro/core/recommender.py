"""The end-to-end SimGraph recommender.

Glues the pieces of §4-§5 together behind the common
:class:`~repro.baselines.base.Recommender` interface:

* **fit** builds retweet profiles from the train split and constructs the
  SimGraph by 2-hop exploration of the follow graph (a pre-built SimGraph
  can be injected instead — that is how the §6.3 update strategies are
  evaluated);
* **on_event** buffers the retweet in the postponed scheduler (§5.4); when
  a tweet's batch becomes due, Algorithm 1 propagates from its current
  retweeters and every positive non-seed probability becomes a
  recommendation — every batch released together is scored by **one**
  engine invocation (the CSR backend advances them jointly);
* tweets older than the relevance horizon (72 hours, §3.1.2) are never
  propagated again; per-tweet warm state for the incremental path lives
  in a bounded :class:`~repro.core.warmcache.WarmStateCache` (LRU +
  horizon eviction) instead of an unbounded dict.
"""

from __future__ import annotations

from repro.baselines.base import Recommendation, Recommender
from repro.core.profiles import RetweetProfiles
from repro.core.propagation_csr import PROP_BACKENDS, make_propagation_engine
from repro.core.scheduler import DelayPolicy, PostponedScheduler, PropagationTask
from repro.core.simgraph import DEFAULT_TAU, SimGraph, SimGraphBuilder
from repro.core.thresholds import DynamicThreshold, ThresholdPolicy
from repro.core.warmcache import DEFAULT_CAPACITY, WarmStateCache
from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet
from repro.obs import NULL, MetricsRegistry

__all__ = ["SimGraphRecommender"]

HOUR = 3600.0


class SimGraphRecommender(Recommender):
    """Homophily-based propagation recommender (the paper's contribution).

    Parameters
    ----------
    tau:
        Similarity threshold of the SimGraph construction (Def. 4.1).
    threshold:
        Propagation-threshold policy; defaults to the dynamic γ(t).
    delay_policy:
        Postponement policy (§5.4); ``None`` (default) propagates on
        every retweet — Algorithm 1's trigger — which stays cheap thanks
        to warm-started incremental propagation.  Pass a
        :class:`DelayPolicy` to batch retweets per tweet instead.
    max_tweet_age:
        Relevance horizon in seconds; propagation is skipped for older
        tweets (the paper's 72-hour rule) and their warm state evicted.
    min_score:
        Probabilities below this floor are not emitted as recommendations.
    simgraph:
        Inject a pre-built similarity graph (skips construction in
        :meth:`fit`) — used by the incremental-update experiments.
    backend:
        SimGraph build backend: ``"reference"`` (pure-Python loop) or
        ``"vectorized"`` (sparse matmul; identical edges, faster builds).
    prop_backend:
        Propagation backend: ``"reference"`` (pure-Python frontier
        loop), ``"csr"`` (compiled numpy CSR arrays),
        ``"numba"`` (jitted kernel when numba is importable, falling
        back to ``csr`` otherwise) or ``"auto"`` (fastest available).
        All backends produce identical results — see
        :mod:`repro.core.propagation_csr` and
        :mod:`repro.core.propagation_kernel`.
    build_workers:
        Process count for the vectorized chunked build.
    warm_cache_size:
        LRU bound of the per-tweet warm-state cache (incremental
        re-propagation reuses the previous fixpoint; an evicted tweet
        simply cold-starts).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` shared with the
        builder, propagation engine, warm cache and scheduler; ``None``
        (default) keeps instrumentation free via the no-op registry.
    """

    name = "SimGraph"

    def __init__(
        self,
        tau: float = DEFAULT_TAU,
        threshold: ThresholdPolicy | None = None,
        delay_policy: DelayPolicy | None = None,
        max_tweet_age: float = 72 * HOUR,
        min_score: float = 1e-6,
        simgraph: SimGraph | None = None,
        backend: str = "reference",
        prop_backend: str = "reference",
        build_workers: int = 1,
        warm_cache_size: int = DEFAULT_CAPACITY,
        metrics: MetricsRegistry | None = None,
    ):
        if prop_backend not in PROP_BACKENDS:
            from repro.core.propagation_kernel import describe_backends

            raise ValueError(
                f"unknown propagation backend {prop_backend!r}; "
                f"available: {describe_backends()}"
            )
        self.tau = tau
        self.backend = backend
        self.prop_backend = prop_backend
        self.build_workers = build_workers
        self.warm_cache_size = warm_cache_size
        self.metrics = metrics if metrics is not None else NULL
        self.threshold = threshold if threshold is not None else DynamicThreshold()
        self.delay_policy = delay_policy
        self.max_tweet_age = max_tweet_age
        self.min_score = min_score
        self.simgraph = simgraph
        self._engine = None
        self._scheduler: PostponedScheduler | None = None
        self._profiles = RetweetProfiles()
        self._retweeters: dict[int, set[int]] = {}
        self._dataset: TwitterDataset | None = None
        self._targets: set[int] | None = None
        #: Per-tweet propagation fixpoints for incremental warm starts,
        #: bounded by LRU capacity and the relevance horizon.
        self._warm = WarmStateCache(
            capacity=warm_cache_size,
            max_age=max_tweet_age,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    # Recommender interface
    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: TwitterDataset,
        train: list[Retweet],
        target_users: set[int] | None = None,
    ) -> None:
        self._dataset = dataset
        self._targets = target_users
        self._profiles = RetweetProfiles(train)
        if self.simgraph is None:
            builder = SimGraphBuilder(
                tau=self.tau,
                backend=self.backend,
                workers=self.build_workers,
                metrics=self.metrics,
            )
            self.simgraph = builder.build(dataset.follow_graph, self._profiles)
        self._engine = make_propagation_engine(
            self.simgraph,
            prop_backend=self.prop_backend,
            threshold=self.threshold,
            metrics=self.metrics,
        )
        self._scheduler = (
            PostponedScheduler(self.delay_policy, metrics=self.metrics)
            if self.delay_policy
            else None
        )
        self._retweeters = {}
        for retweet in train:
            self._retweeters.setdefault(retweet.tweet, set()).add(retweet.user)
        self._warm.clear()

    def on_event(self, event: Retweet) -> list[Recommendation]:
        self._check_fitted()
        if self._scheduler is not None:
            recommendations = self._run_tasks(self._scheduler.offer(event))
            self._absorb(event)
            return recommendations
        task = PropagationTask(
            tweet=event.tweet, users=(event.user,), due_time=event.time
        )
        # Register the event before propagating so the seed set is
        # current (immediate mode has no batching window).
        self._absorb(event)
        return self._run_tasks([task])

    def finalize(self, end_time: float) -> list[Recommendation]:
        self._check_fitted()
        if self._scheduler is None:
            return []
        return self._run_tasks(self._scheduler.flush(now=end_time))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _absorb(self, event: Retweet) -> None:
        self._retweeters.setdefault(event.tweet, set()).add(event.user)

    def _run_tasks(
        self, tasks: list[PropagationTask]
    ) -> list[Recommendation]:
        """Score every released task in one batched engine invocation."""
        assert self._engine is not None and self._dataset is not None
        runnable: list[tuple[PropagationTask, float | None, set[int]]] = []
        for task in tasks:
            tweet = self._dataset.tweets.get(task.tweet)
            created_at = tweet.created_at if tweet is not None else None
            if created_at is not None and self.max_tweet_age is not None:
                if task.due_time - created_at > self.max_tweet_age:
                    self._warm.pop(task.tweet)
                    continue
            seeds = set(self._retweeters.get(task.tweet, set()))
            seeds.update(task.users)
            self._retweeters[task.tweet] = seeds
            runnable.append((task, created_at, seeds))
        if not runnable:
            return []
        results = self._engine.propagate_many(
            [seeds for _, _, seeds in runnable],
            popularities=[len(seeds) for _, _, seeds in runnable],
            initials=[
                self._warm.get(task.tweet, now=task.due_time)
                for task, _, _ in runnable
            ],
        )
        recommendations: list[Recommendation] = []
        for (task, created_at, seeds), result, state in zip(
            runnable, results, self._engine.take_states()
        ):
            self._warm.put(
                task.tweet, state, created_at=created_at, now=task.due_time
            )
            # Deterministic user order: the reference engine's dict is
            # in update order, the CSR engine's in compiled-index order —
            # sorting makes the emission stream backend-independent.
            for user, score in sorted(result.nonseed_scores(seeds).items()):
                if score < self.min_score:
                    continue
                if self._targets is not None and user not in self._targets:
                    continue
                recommendations.append(
                    Recommendation(
                        user=user, tweet=task.tweet, score=score,
                        time=task.due_time,
                    )
                )
        return recommendations

    def _check_fitted(self) -> None:
        if self._engine is None:
            raise RuntimeError("fit() must be called before processing events")
