"""Propagation threshold policies (paper §5.4).

A threshold decides whether a user's probability change is worth
propagating to their influencees at the next iteration:

* :class:`NoThreshold` — propagate every change (exact Algorithm 1);
* :class:`StaticThreshold` — the paper's β: a fixed minimum delta;
* :class:`DynamicThreshold` — the paper's γ(t) = m(t)^p / (k^p + m(t)^p),
  a Hill function of the tweet's popularity.  Fresh, barely-retweeted
  tweets get a near-zero threshold (deep propagation, they need the reach),
  while already-popular tweets get a high threshold (the network spreads
  them on its own, so computation can stop early).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["ThresholdPolicy", "NoThreshold", "StaticThreshold", "DynamicThreshold"]


@runtime_checkable
class ThresholdPolicy(Protocol):
    """Maps a tweet's current popularity to a propagation threshold."""

    def threshold_for(self, popularity: int) -> float:
        """Minimum |Δp| a user must exceed to keep propagating."""
        ...


class NoThreshold:
    """Always propagate (threshold 0) — the unoptimized algorithm."""

    def threshold_for(self, popularity: int) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NoThreshold()"


class StaticThreshold:
    """The paper's fixed β, independent of the tweet."""

    def __init__(self, beta: float):
        if beta < 0:
            raise ValueError(f"beta must be non-negative, got {beta}")
        self.beta = beta

    def threshold_for(self, popularity: int) -> float:
        return self.beta

    def __repr__(self) -> str:
        return f"StaticThreshold(beta={self.beta})"


class DynamicThreshold:
    """The paper's γ(t) = m(t)^p / (k^p + m(t)^p).

    ``k`` is the popularity at which the threshold reaches 1/2 and ``p``
    controls the steepness; both must be positive (paper §5.4).  ``scale``
    multiplies the [0, 1] Hill value into the probability-delta domain —
    a threshold of literally 1.0 would stop all propagation, so the raw
    γ is interpreted as a *fraction* of ``scale``.
    """

    def __init__(self, k: float = 20.0, p: float = 2.0, scale: float = 0.05):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.k = k
        self.p = p
        self.scale = scale

    def gamma(self, popularity: int) -> float:
        """The raw Hill value γ(t) in [0, 1)."""
        if popularity <= 0:
            return 0.0
        m_p = float(popularity) ** self.p
        return m_p / (self.k**self.p + m_p)

    def threshold_for(self, popularity: int) -> float:
        return self.scale * self.gamma(popularity)

    def __repr__(self) -> str:
        return (
            f"DynamicThreshold(k={self.k}, p={self.p}, scale={self.scale})"
        )
