"""The paper's user-similarity measure (Definition 3.1).

.. math::

    sim(u, v) = \\frac{\\sum_{i \\in L_u \\cap L_v} 1/\\log(1 + m(i))}
                      {|L_u \\cup L_v|}

A Jaccard-style measure over retweet profiles where each common tweet is
down-weighted by its popularity: two users co-retweeting an obscure post
are more alike than two users co-retweeting a viral one.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.profiles import RetweetProfiles

__all__ = ["similarity", "similarities_from", "pairwise_similarities"]


def similarity(profiles: RetweetProfiles, u: int, v: int) -> float:
    """sim(u, v) per Def. 3.1; 0.0 when either profile is empty or u == v.

    The measure is symmetric and bounded: since every common tweet has
    ``m(i) >= 2`` (both u and v retweeted it), each weight is at most
    ``1/log(3) < 1`` and the union size dominates the intersection size,
    hence ``0 <= sim(u, v) < 1``.
    """
    if u == v:
        return 0.0
    lu = profiles.profile(u)
    lv = profiles.profile(v)
    if not lu or not lv:
        return 0.0
    if len(lv) < len(lu):
        lu, lv = lv, lu
    common = lu & lv
    if not common:
        return 0.0
    numerator = sum(profiles.tweet_weight(i) for i in common)
    union_size = len(lu) + len(lv) - len(common)
    return numerator / union_size


def similarities_from(
    profiles: RetweetProfiles,
    u: int,
    candidates: Iterable[int] | None = None,
) -> dict[int, float]:
    """All non-zero sim(u, v) scores, optionally restricted to ``candidates``.

    Output-sensitive: instead of scoring every candidate, it walks the
    inverted index of u's own retweets, accumulating the numerator only for
    users who actually share a tweet — the trick that makes the 2-hop
    SimGraph construction cheap (§6.3 reports 311ms/user at paper scale).
    """
    lu = profiles.profile(u)
    if not lu:
        return {}
    candidate_set = None if candidates is None else set(candidates)
    numerators: dict[int, float] = {}
    overlaps: dict[int, int] = {}
    for tweet in lu:
        weight = profiles.tweet_weight(tweet)
        for v in profiles.retweeters(tweet):
            if v == u:
                continue
            if candidate_set is not None and v not in candidate_set:
                continue
            numerators[v] = numerators.get(v, 0.0) + weight
            overlaps[v] = overlaps.get(v, 0) + 1
    size_u = len(lu)
    scores: dict[int, float] = {}
    for v, numerator in numerators.items():
        union_size = size_u + profiles.profile_size(v) - overlaps[v]
        scores[v] = numerator / union_size
    return scores


def pairwise_similarities(
    profiles: RetweetProfiles,
    users: Iterable[int] | None = None,
) -> dict[tuple[int, int], float]:
    """Every non-zero similarity pair among ``users`` (default: all).

    Returns ``{(u, v): score}`` with ``u < v`` — the full quadratic
    computation the CF baseline needs and that SimGraph avoids.  Each
    unordered pair is kept once, by filtering ``v > u`` on the walk's
    *output*: the candidate set is the shared pool, built once, instead
    of a fresh ``{v in pool : v > u}`` set per user — that per-user
    construction was itself O(|pool|²) and dominated the runtime on
    sparse corpora where the walks touch few pairs.
    """
    pool = set(profiles.users()) if users is None else set(users)
    restrict = None if users is None else pool
    scores: dict[tuple[int, int], float] = {}
    for u in sorted(pool):
        for v, score in similarities_from(
            profiles, u, candidates=restrict
        ).items():
            if v > u:
                scores[(u, v)] = score
    return scores
