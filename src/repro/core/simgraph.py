"""SimGraph construction (paper Definition 4.1).

For every user ``u``, explore the follow graph two hops out (``N2(u)``,
followees and followees-of-followees), score each reached user with the
Def. 3.1 similarity, and keep an edge ``u -> w`` whenever
``sim(u, w) >= tau``.  The result is a directed graph whose out-neighbours
``F_u`` are u's *influential users* — the only users the propagation model
ever consults, which is the paper's dimensionality reduction.

The builder takes the exploration graph as a parameter because the §6.3
*crossfold* update strategy re-runs the same 2-hop construction **on the
previous SimGraph** instead of the follow graph.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.profiles import RetweetProfiles
from repro.core.similarity import similarities_from
from repro.core.simmatrix import DEFAULT_CHUNK_SIZE, simgraph_edges
from repro.graph.digraph import DiGraph
from repro.graph.metrics import GraphSummary, summarize_graph
from repro.graph.traversal import k_hop_neighborhood
from repro.obs import NULL, MetricsRegistry
from repro.utils.topk import top_k_items

__all__ = ["SimGraph", "SimGraphBuilder", "BACKENDS", "DEFAULT_TAU"]

#: Available similarity/build backends: ``reference`` is the pure-Python
#: per-user loop; ``vectorized`` computes the same edges via scipy sparse
#: products (see :mod:`repro.core.simmatrix`).  The differential suite
#: pins the two to identical outputs.
BACKENDS = ("reference", "vectorized")

#: Default similarity threshold. The paper's Table 2 reports mean scores in
#: the 0.002-0.006 range with SimGraph keeping ~5.9 out-edges per user; a
#: low threshold keeps informative edges while pruning noise pairs.
DEFAULT_TAU = 0.001


class SimGraph:
    """The similarity graph: nodes are users, edge u -> w weighs sim(u, w).

    ``F_u`` (:meth:`influencers`) is the out-neighbourhood of ``u``.
    """

    def __init__(self, graph: DiGraph, tau: float):
        self.graph = graph
        self.tau = tau

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of users present in the similarity graph."""
        return self.graph.node_count

    @property
    def edge_count(self) -> int:
        """Number of similarity edges."""
        return self.graph.edge_count

    def __contains__(self, user: int) -> bool:
        return user in self.graph

    def users(self) -> Iterable[int]:
        """All users present in the graph."""
        return self.graph.nodes()

    def influencers(self, user: int) -> tuple[tuple[int, float], ...]:
        """F_u with similarity weights: the users who influence ``user``.

        Returned as a tuple snapshot: callers (the propagation engines
        iterate these in hot loops) can never mutate graph state through
        the return value.
        """
        if user not in self.graph:
            return ()
        return tuple(self.graph.out_edges(user))

    def influencer_count(self, user: int) -> int:
        """|F_u|."""
        if user not in self.graph:
            return 0
        return self.graph.out_degree(user)

    def row(self, user: int) -> dict[int, float]:
        """F_u as a fresh ``{influencer: similarity}`` dict.

        Preserves the graph's edge insertion order (which the CSR
        compiler relies on) and is safe to mutate — the delta
        maintenance engine copies unaffected rows and patches fringe
        rows through this accessor.  Empty when ``user`` is absent.
        """
        if user not in self.graph:
            return {}
        return dict(self.graph.out_edges(user))

    def influenced(self, user: int) -> tuple[int, ...]:
        """Users that ``user`` influences (in-neighbours), as a snapshot."""
        if user not in self.graph:
            return ()
        return tuple(self.graph.predecessors(user))

    def similarity(self, u: int, v: int) -> float:
        """Stored edge weight sim(u, v); 0.0 when no edge exists."""
        if self.graph.has_edge(u, v):
            return self.graph.weight(u, v)
        return 0.0

    # ------------------------------------------------------------------
    # Reporting (paper Table 4 / Figure 5)
    # ------------------------------------------------------------------
    def mean_similarity(self) -> float:
        """Average edge weight (Table 4's "Mean Similarity Score")."""
        weights = [w for _, _, w in self.graph.edges()]
        if not weights:
            return 0.0
        return float(np.mean(weights))

    def summary(self, sample_size: int = 200, seed: int = 0) -> GraphSummary:
        """Structural summary (degrees, diameter, path lengths)."""
        return summarize_graph(self.graph, sample_size=sample_size, seed=seed)

    def table4_rows(self, sample_size: int = 200, seed: int = 0) -> list[tuple[str, object]]:
        """The rows of the paper's Table 4."""
        graph_summary = self.summary(sample_size=sample_size, seed=seed)
        return [
            ("Nb of nodes", self.node_count),
            ("Nb of edges", self.edge_count),
            ("Mean Similarity Score", round(self.mean_similarity(), 4)),
            ("Mean out-degree", round(graph_summary.mean_out_degree, 2)),
            ("Diameter", graph_summary.diameter),
            ("Mean smallest path", round(graph_summary.mean_path_length, 2)),
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimGraph(nodes={self.node_count}, edges={self.edge_count}, "
            f"tau={self.tau})"
        )


class SimGraphBuilder:
    """Builds a :class:`SimGraph` by bounded exploration + thresholding.

    Parameters
    ----------
    tau:
        Minimum similarity for an edge to be created.
    hops:
        Exploration radius in the base graph (the paper uses 2).
    max_influencers:
        Optional cap on |F_u|: keep only the strongest ``max_influencers``
        out-edges per user.  The paper controls density through τ alone
        (their graph settles at out-degree 5.9); the cap is an extra
        precision/reach knob — low caps sharpen precision (best F1) at
        the cost of propagation reach.  ``None`` (default) disables it.
    backend:
        ``"reference"`` (default) runs the per-user BFS + inverted-index
        loop; ``"vectorized"`` computes the same edges through sparse
        matrix products (:mod:`repro.core.simmatrix`) in chunks — much
        faster on large corpora, guaranteed edge-identical by the
        differential test suite.
    workers:
        Process count for the vectorized chunked build (ignored by the
        reference backend); 1 keeps the build in-process.
    chunk_size:
        Sources scored per sparse product in the vectorized build.
    metrics:
        Observability registry (default: no-op :data:`repro.obs.NULL`).
        A real registry records the ``simgraph.build`` span, pairs
        scored / edges kept counters, an out-degree histogram and — on
        the vectorized path — chunk timings and worker fan-out.
    """

    def __init__(
        self,
        tau: float = DEFAULT_TAU,
        hops: int = 2,
        max_influencers: int | None = None,
        backend: str = "reference",
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        metrics: MetricsRegistry | None = None,
    ):
        if tau < 0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        if hops < 1:
            raise ValueError(f"hops must be at least 1, got {hops}")
        if max_influencers is not None and max_influencers < 1:
            raise ValueError(
                f"max_influencers must be positive, got {max_influencers}"
            )
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; available: {', '.join(BACKENDS)}"
            )
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
        self.tau = tau
        self.hops = hops
        self.max_influencers = max_influencers
        self.backend = backend
        self.workers = workers
        self.chunk_size = chunk_size
        self.metrics = metrics if metrics is not None else NULL

    def build(
        self,
        exploration_graph: DiGraph,
        profiles: RetweetProfiles,
        users: Iterable[int] | None = None,
    ) -> SimGraph:
        """Construct the similarity graph.

        ``exploration_graph`` is walked ``hops`` levels from each user to
        collect candidates (pass the follow graph for the standard
        construction, a previous SimGraph's graph for *crossfold*);
        ``users`` optionally restricts the sources explored.

        Users without retweets never gain edges — they are the cold-start
        population absent from the paper's Table 4 graph.
        """
        metrics = self.metrics
        sources = list(users) if users is not None else list(exploration_graph.nodes())
        with metrics.span("simgraph.build"):
            metrics.counter("simgraph.sources").inc(len(sources))
            if self.backend == "vectorized":
                pairs: Iterable[tuple[int, dict[int, float]]] = simgraph_edges(
                    exploration_graph,
                    profiles,
                    sources,
                    tau=self.tau,
                    hops=self.hops,
                    max_influencers=self.max_influencers,
                    workers=self.workers,
                    chunk_size=self.chunk_size,
                    metrics=metrics,
                )
            else:
                pairs = (
                    (u, self.edges_for_user(u, exploration_graph, profiles))
                    for u in sources
                )
            result = DiGraph()
            edges_kept = metrics.counter("simgraph.edges_kept")
            out_degree = metrics.histogram("simgraph.out_degree")
            for u, kept in pairs:
                edges_kept.inc(len(kept))
                out_degree.observe(len(kept))
                for w, score in kept.items():
                    result.add_edge(u, w, weight=score)
        return SimGraph(result, tau=self.tau)

    def edges_for_user(
        self,
        user: int,
        exploration_graph: DiGraph,
        profiles: RetweetProfiles,
    ) -> dict[int, float]:
        """The would-be out-edges of one user (used by :meth:`build`)."""
        if user not in exploration_graph or not profiles.has_profile(user):
            return {}
        candidates = k_hop_neighborhood(exploration_graph, user, self.hops)
        self.metrics.counter("simgraph.pairs_scored").inc(len(candidates))
        scores = similarities_from(profiles, user, candidates=candidates)
        kept = {w: s for w, s in scores.items() if s >= self.tau}
        if self.max_influencers is not None and len(kept) > self.max_influencers:
            strongest = top_k_items(kept, self.max_influencers)
            kept = dict(strongest)
        return kept
