"""Cold-start handling (paper §4.1).

About half the users of the paper's crawl never co-retweet anything and
therefore have no SimGraph edges.  The paper sketches the fix: *"we could
consider an approach similar to the one used in GraphJet using the
neighborhood's computed recommendation of cold start nodes to partially
solve this issue."*

:class:`ColdStartAugmenter` implements that sketch: a cold user inherits
the recommendations computed for the accounts they **follow** (their
followees are the only signal a silent user provides), each followee's
scores averaged into a borrowed ranking.  Wrapping a fitted
:class:`~repro.core.recommender.SimGraphRecommender`, it forwards warm
output untouched and appends borrowed recommendations for the requested
cold users.
"""

from __future__ import annotations

from repro.baselines.base import Recommendation
from repro.core.recommender import SimGraphRecommender
from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet

__all__ = ["ColdStartAugmenter"]


class ColdStartAugmenter:
    """Borrow followees' recommendations for SimGraph-less users.

    Parameters
    ----------
    recommender:
        A fitted SimGraph recommender (its SimGraph defines who is cold).
    dataset:
        Supplies the follow graph used for borrowing.
    cold_users:
        The users to serve by neighbourhood aggregation.  Users that do
        have SimGraph edges are ignored (they are served directly).
    damping:
        Multiplier applied to borrowed scores — a borrowed signal is
        weaker than a direct one.
    """

    def __init__(
        self,
        recommender: SimGraphRecommender,
        dataset: TwitterDataset,
        cold_users: set[int] | None = None,
        damping: float = 0.5,
    ):
        if recommender.simgraph is None:
            raise ValueError("recommender must be fitted before wrapping")
        if not 0.0 < damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        self.recommender = recommender
        self.dataset = dataset
        self.damping = damping
        if cold_users is None:
            cold_users = {
                user
                for user in dataset.users
                if recommender.simgraph.influencer_count(user) == 0
            }
        self.cold_users = {
            user
            for user in cold_users
            if recommender.simgraph.influencer_count(user) == 0
        }
        # followee -> cold followers interested in their recommendations.
        self._borrowers: dict[int, list[int]] = {}
        for user in self.cold_users:
            for followee in dataset.followees(user):
                self._borrowers.setdefault(followee, []).append(user)

    def is_cold(self, user: int) -> bool:
        """True when ``user`` is served by neighbourhood aggregation."""
        return user in self.cold_users

    def on_event(self, event: Retweet) -> list[Recommendation]:
        """Process one retweet; return direct plus borrowed recommendations.

        Borrowed recommendations average the scores a cold user's
        followees received for the same tweet (damped), and never
        recommend a tweet the cold user's own event just shared.
        """
        direct = self.recommender.on_event(event)
        if not self._borrowers:
            return direct
        # Collect per-followee scores for this tweet.
        borrowed_scores: dict[int, list[float]] = {}
        for rec in direct:
            for borrower in self._borrowers.get(rec.user, ()):
                if borrower == event.user:
                    continue
                borrowed_scores.setdefault(borrower, []).append(rec.score)
        borrowed = [
            Recommendation(
                user=user,
                tweet=event.tweet,
                score=self.damping * sum(scores) / len(scores),
                time=event.time,
            )
            for user, scores in borrowed_scores.items()
        ]
        return direct + borrowed

    def coverage(self) -> float:
        """Fraction of cold users with at least one followee to borrow from."""
        if not self.cold_users:
            return 1.0
        reachable = {
            user
            for followee, users in self._borrowers.items()
            for user in users
        }
        return len(reachable) / len(self.cold_users)
