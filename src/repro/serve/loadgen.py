"""Open-loop load generation against the serving front-end.

The harness ROADMAP item 1 asks for: replay a synthetic stream at a
configurable events/sec (steady or bursty — the burst shape follows the
retweet-cascade dynamics of ten Thij et al., where trending windows
concentrate traffic on a small hot set of tweets), record per-request
latency through the ``serve.*`` histograms, and report exact p50/p95/p99,
achieved throughput and shed/degraded fractions.

**Open-loop** means arrivals are scheduled by the clock, not by response
completion: an overloaded server keeps receiving events at the offered
rate, which is exactly the regime where the admission ladder must hold
p99 for admitted requests instead of letting the queue grow without
bound.  The closed-loop counterpart (:func:`measure_capacity`) offers
the whole stream at once and measures drain throughput — the saturation
point the bench JSON records and the
:class:`~repro.eval.budget.CapacityModel` calibrates from.

Everything here is wall-clock by construction; the deterministic
differential suites use :func:`repro.serve.server.serve_stream` instead.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.obs import MetricsRegistry
from repro.serve.server import (
    AsyncRecommendationServer,
    RetweetRequest,
    ServeConfig,
    ServeResponse,
    serve_stream,
)
from repro.service import RecommendationService, ServiceConfig

__all__ = [
    "LoadProfile",
    "PrimedService",
    "RunReport",
    "prime_service",
    "synth_requests",
    "run_load",
    "measure_capacity",
]


@dataclass(frozen=True)
class LoadProfile:
    """Arrival-rate shape of one open-loop run.

    ``rate`` is the steady baseline (events/sec).  A bursty profile
    additionally spends ``burst_length`` seconds at ``burst_rate`` every
    ``burst_every`` seconds (burst windows open at t=0, burst_every,
    ...).  Arrival times are deterministic: the schedule integrates the
    instantaneous rate, no randomness involved.
    """

    rate: float
    burst_rate: float | None = None
    burst_every: float = 10.0
    burst_length: float = 2.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst_rate is not None and self.burst_rate <= self.rate:
            raise ValueError("burst_rate must exceed the baseline rate")
        if self.burst_every <= 0 or self.burst_length <= 0:
            raise ValueError("burst_every and burst_length must be positive")
        if self.burst_length >= self.burst_every:
            raise ValueError("burst_length must be shorter than burst_every")

    @classmethod
    def steady(cls, rate: float) -> "LoadProfile":
        return cls(rate=rate)

    @classmethod
    def bursty(
        cls,
        rate: float,
        burst_rate: float,
        burst_every: float = 10.0,
        burst_length: float = 2.0,
    ) -> "LoadProfile":
        return cls(
            rate=rate,
            burst_rate=burst_rate,
            burst_every=burst_every,
            burst_length=burst_length,
        )

    @property
    def name(self) -> str:
        return "steady" if self.burst_rate is None else "burst"

    def is_burst(self, t: float) -> bool:
        """Is wall-offset ``t`` inside a burst window?"""
        if self.burst_rate is None:
            return False
        return (t % self.burst_every) < self.burst_length

    def rate_at(self, t: float) -> float:
        return self.burst_rate if self.is_burst(t) else self.rate

    def arrival_times(self, n: int) -> list[float]:
        """Deterministic offsets (seconds from run start) of ``n`` events."""
        times: list[float] = []
        t = 0.0
        for _ in range(n):
            times.append(t)
            t += 1.0 / self.rate_at(t)
        return times

    def mean_rate(self, n: int) -> float:
        """Average offered rate over an ``n``-event schedule."""
        times = self.arrival_times(n)
        if n < 2 or times[-1] <= 0:
            return self.rate
        return (n - 1) / times[-1]


@dataclass
class PrimedService:
    """A service warmed up for load generation, plus its pick pools."""

    service: RecommendationService
    users: list[int]
    live_tweets: list[int]
    #: Simulated timestamp the request stream starts at.
    t0: float


def prime_service(
    config: ServiceConfig | None = None,
    n_users: int = 400,
    live_tweets: int = 120,
    seed: int = 7,
    metrics: MetricsRegistry | None = None,
    prime_warm: bool = True,
) -> PrimedService:
    """Build a service with realistic history and live tweets to stress.

    A synthetic corpus (:func:`repro.synth.generate_dataset`) supplies
    the follow graph and retweet history; history is absorbed without
    propagation (bulk warm-up), the SimGraph is built once, and
    ``live_tweets`` fresh tweets are posted.  With ``prime_warm`` each
    live tweet also receives one full retweet so the warm-state cache
    holds a fixpoint per tweet — the state degraded answers serve from.
    """
    from repro.synth import SynthConfig, generate_dataset

    dataset = generate_dataset(SynthConfig(n_users=n_users, seed=seed))
    service = RecommendationService(config=config, metrics=metrics)
    users = sorted(dataset.users)
    for user in users:
        service.add_user(user)
    for follower, followee, _ in dataset.follow_graph.edges():
        service.add_follow(follower, followee)
    for event in dataset.retweets():
        service.absorb_retweet(event.user, event.tweet)
    service.rebuild("from scratch")
    rng = np.random.default_rng(seed)
    next_tweet = max(dataset.tweets, default=0) + 1
    t0 = 0.0
    live: list[int] = []
    for i in range(live_tweets):
        tweet = next_tweet + i
        author = int(rng.choice(users))
        service.post_tweet(tweet_id=tweet, author=author, at=t0)
        live.append(tweet)
    if prime_warm:
        at = t0
        for tweet in live:
            at += 1e-3
            user = int(rng.choice(users))
            service.retweet(user=user, tweet=tweet, at=at)
        service.flush(at)
        t0 = at
    return PrimedService(service=service, users=users, live_tweets=live, t0=t0)


def synth_requests(
    primed: PrimedService,
    n_events: int,
    seed: int = 7,
    sim_dt: float = 1.0,
    burst_flags: list[bool] | None = None,
    hot_fraction: float = 0.1,
    popularity_skew: float = 1.0,
) -> list[RetweetRequest]:
    """A cascade-shaped retweet stream over the primed live tweets.

    Tweet picks are popularity-weighted (zipf with exponent
    ``popularity_skew`` over the live pool; 0 means uniform); events
    flagged as burst traffic (``burst_flags``, typically
    ``profile.is_burst`` over the arrival schedule) concentrate on the
    hottest ``hot_fraction`` of the pool — the trending-cascade shape.
    Simulated timestamps advance ``sim_dt`` per event, decoupled from
    the wall-clock dispatch rate.
    """
    if n_events < 1:
        raise ValueError(f"n_events must be at least 1, got {n_events}")
    if not 0 < hot_fraction <= 1:
        raise ValueError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    if popularity_skew < 0:
        raise ValueError(
            f"popularity_skew must be non-negative, got {popularity_skew}"
        )
    rng = np.random.default_rng(seed)
    pool = np.array(primed.live_tweets)
    weights = 1.0 / np.arange(1, len(pool) + 1) ** popularity_skew
    weights /= weights.sum()
    hot = pool[: max(1, int(len(pool) * hot_fraction))]
    requests: list[RetweetRequest] = []
    at = primed.t0
    for i in range(n_events):
        at += sim_dt
        burst = bool(burst_flags[i]) if burst_flags is not None else False
        if burst:
            tweet = int(rng.choice(hot))
        else:
            tweet = int(rng.choice(pool, p=weights))
        user = int(rng.choice(primed.users))
        requests.append(RetweetRequest(user=user, tweet=tweet, at=at))
    return requests


@dataclass
class RunReport:
    """Outcome of one load-generation run (exact, from raw samples).

    The same latencies also land in the ``serve.latency_seconds[...]``
    obs histograms (log-binned estimates); this report keeps the raw
    samples so the BENCH gates compare exact numpy percentiles against
    the SLO.
    """

    offered_rate: float
    duration_s: float
    responses: int
    dropped: int
    statuses: dict[str, int] = field(default_factory=dict)
    served_from: dict[str, int] = field(default_factory=dict)
    latencies: dict[str, list[float]] = field(default_factory=dict)

    @property
    def achieved_eps(self) -> float:
        """Completed responses per wall second."""
        return self.responses / self.duration_s if self.duration_s > 0 else 0.0

    def fraction(self, status: str) -> float:
        return self.statuses.get(status, 0) / self.responses if self.responses else 0.0

    def percentiles(self, status: str = "ok") -> dict[str, float]:
        """Exact p50/p95/p99 (seconds) of one status class."""
        samples = self.latencies.get(status, [])
        if not samples:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        arr = np.asarray(samples)
        return {
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
        }

    def to_dict(self) -> dict:
        """JSON-ready summary (raw samples reduced to percentiles)."""
        return {
            "offered_rate": self.offered_rate,
            "duration_s": self.duration_s,
            "responses": self.responses,
            "dropped": self.dropped,
            "achieved_eps": self.achieved_eps,
            "statuses": dict(sorted(self.statuses.items())),
            "served_from": dict(sorted(self.served_from.items())),
            "fractions": {
                status: self.fraction(status)
                for status in sorted(self.statuses)
            },
            "latency": {
                status: self.percentiles(status)
                for status in sorted(self.latencies)
            },
        }


async def run_open_loop(
    server: AsyncRecommendationServer,
    requests: list,
    arrival_times: list[float],
    offered_rate: float,
) -> RunReport:
    """Dispatch ``requests`` at their scheduled offsets; gather outcomes.

    The server must already be started.  Submission is synchronous per
    arrival (admission happens at the scheduled instant), so an
    overloaded server sees the true offered rate.
    """
    if len(requests) != len(arrival_times):
        raise ValueError("requests and arrival_times must align")
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    futures = []
    for request, offset in zip(requests, arrival_times):
        delay = (t0 + offset) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        futures.append(server.submit_nowait(request))
    outcomes = await asyncio.gather(*futures, return_exceptions=True)
    duration = loop.time() - t0
    report = RunReport(
        offered_rate=offered_rate,
        duration_s=duration,
        responses=0,
        dropped=0,
    )
    for outcome in outcomes:
        if isinstance(outcome, BaseException):
            report.dropped += 1
            continue
        report.responses += 1
        report.statuses[outcome.status] = (
            report.statuses.get(outcome.status, 0) + 1
        )
        report.served_from[outcome.served_from] = (
            report.served_from.get(outcome.served_from, 0) + 1
        )
        report.latencies.setdefault(outcome.status, []).append(
            outcome.latency_s
        )
    return report


def run_load(
    service,
    requests: list,
    profile: LoadProfile,
    config: ServeConfig | None = None,
    metrics: MetricsRegistry | None = None,
) -> RunReport:
    """Boot a server over ``service`` and replay ``requests`` open-loop."""
    schedule = profile.arrival_times(len(requests))

    async def run() -> RunReport:
        server = AsyncRecommendationServer(service, config, metrics)
        async with server:
            return await run_open_loop(
                server, requests, schedule, offered_rate=profile.mean_rate(len(requests))
            )

    return asyncio.run(run())


def measure_capacity(
    service,
    requests: list,
    config: ServeConfig | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[float, list[ServeResponse]]:
    """Closed-loop saturation throughput (events/sec) of one worker.

    Offers the whole stream at once with admission disabled (the queue
    is sized to the stream) and measures wall-clock drain time — the
    saturation point: above it an open-loop queue grows without bound.
    """
    serve_config = config if config is not None else ServeConfig()
    if (
        serve_config.rate is not None
        or serve_config.shed_depth <= len(requests)
        or serve_config.admission().resolved_degrade_depth <= len(requests)
    ):
        serve_config = replace(
            serve_config,
            rate=None,
            shed_depth=len(requests) + 1,
            degrade_depth=len(requests) + 1,
        )
    started = time.perf_counter()
    responses = serve_stream(service, requests, serve_config, metrics)
    elapsed = time.perf_counter() - started
    return (len(requests) / elapsed if elapsed > 0 else 0.0, responses)
