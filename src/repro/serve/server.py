"""The asyncio serving front-end over the online recommendation service.

``AsyncRecommendationServer`` turns :class:`~repro.service.engine.
RecommendationService` (or any backend with the same ingestion surface,
e.g. the sharded coordinator) into something a traffic stream can hit
concurrently:

* **micro-batching** — requests are admitted synchronously into one
  ordered queue; a dispatcher coroutine drains it into batches of up to
  ``max_batch`` requests, lingering at most ``max_linger`` seconds for
  stragglers, and executes each batch on a single worker thread.  Inside
  a batch, consecutive full-service retweets collapse into one
  :meth:`~repro.service.engine.RecommendationService.ingest_batch` call
  and consecutive score requests into one ``score_batch`` call, so the
  batched propagation kernel is amortized across in-flight requests
  instead of dispatched per request;
* **admission control** — every propagation-bearing request passes the
  :class:`~repro.serve.admission.AdmissionController` ladder *before*
  enqueueing: over-budget requests are degraded to warm-cache-only
  answers (still ordered through the queue — the service clock must stay
  monotone) or shed outright (immediate refusal, no state change).
  Posts are control plane: always admitted, never shed (a dropped post
  would poison every later retweet of that tweet);
* **observability** — per-request latency spans land in ``serve.*``
  histograms of the shared :class:`~repro.obs.MetricsRegistry`;
  degraded/shed outcomes are explicit in both the response object and
  the ``serve.admission[...]`` / ``serve.degraded_misses`` counters.

Determinism: :func:`serve_stream` drives a whole request list through
the server with every request admitted (in order) before the dispatcher
starts, so batch composition — and therefore every service-side effect —
is a pure function of the stream and the config.  At low load (no
degradation) the responses are identical to calling the service
directly, which the differential suite pins.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro.baselines.base import Recommendation
from repro.eval.budget import CapacityModel
from repro.exceptions import ConfigError, DatasetError
from repro.obs import MetricsRegistry
from repro.serve.admission import AdmissionConfig, AdmissionController

__all__ = [
    "PostRequest",
    "RetweetRequest",
    "ScoreRequest",
    "ServeConfig",
    "ServeResponse",
    "AsyncRecommendationServer",
    "serve_stream",
]


@dataclass(frozen=True)
class PostRequest:
    """Register an original tweet (control plane; never shed)."""

    tweet: int
    author: int
    at: float


@dataclass(frozen=True)
class RetweetRequest:
    """Ingest a retweet and return the notifications it released."""

    user: int
    tweet: int
    at: float


@dataclass(frozen=True)
class ScoreRequest:
    """Timeline-style query: score live tweets for delivery ranking."""

    tweets: tuple[int, ...]


@dataclass(frozen=True)
class ServeConfig:
    """Front-end knobs: batching shape, admission ladder, SLO target."""

    #: Largest request batch one dispatcher round executes.
    max_batch: int = 32
    #: Seconds the dispatcher lingers for stragglers once a batch opened.
    max_linger: float = 0.002
    #: Token-bucket refill (events/sec); None disables rate limiting.
    rate: float | None = None
    #: Token-bucket burst allowance.
    burst: float = 64.0
    #: Queue depth past which requests are refused outright.
    shed_depth: int = 1024
    #: Queue depth past which requests degrade to warm-cache answers
    #: (None: half of ``shed_depth``).
    degrade_depth: int | None = None
    #: Advisory p99 latency target in seconds, recorded alongside the
    #: measured percentiles (the bench gates against it).
    slo_p99: float = 0.25

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be at least 1, got {self.max_batch}")
        if self.max_linger < 0:
            raise ConfigError(
                f"max_linger must be non-negative, got {self.max_linger}"
            )
        if self.slo_p99 <= 0:
            raise ConfigError(f"slo_p99 must be positive, got {self.slo_p99}")
        # Ladder validation is delegated to AdmissionConfig.
        self.admission()

    def admission(self) -> AdmissionConfig:
        return AdmissionConfig(
            rate=self.rate,
            burst=self.burst,
            shed_depth=self.shed_depth,
            degrade_depth=self.degrade_depth,
        )

    @classmethod
    def from_capacity(
        cls, model: CapacityModel, slo_p99: float = 0.25, **overrides
    ) -> "ServeConfig":
        """Calibrate admission from a measured capacity model."""
        degrade = model.queue_depth_for_latency(slo_p99)
        return cls(
            rate=model.events_per_second,
            degrade_depth=degrade,
            shed_depth=2 * degrade,
            slo_p99=slo_p99,
            **overrides,
        )


@dataclass
class ServeResponse:
    """Outcome of one request.

    ``status`` is the admission rung that actually answered: ``"ok"``
    (full service), ``"degraded"`` (warm-cache-only answer; explicit —
    a client can tell a cheap answer from a fresh one) or ``"shed"``
    (refused, nothing happened).  ``served_from`` narrows the source:
    ``propagation``, ``warm-cache``, ``none`` (shed, a degraded cache
    miss, or a post acknowledgement).
    """

    status: str
    served_from: str = "none"
    notifications: list[Recommendation] = field(default_factory=list)
    scores: dict[int, dict[int, float] | None] | None = None
    latency_s: float = 0.0


class _Pending:
    __slots__ = ("request", "mode", "future", "enqueued_at")

    def __init__(self, request, mode, future, enqueued_at):
        self.request = request
        self.mode = mode
        self.future = future
        self.enqueued_at = enqueued_at


class AsyncRecommendationServer:
    """In-process asyncio front-end (module docstring).

    ``service`` is usually a
    :class:`~repro.service.engine.RecommendationService`; any object with
    ``post_tweet``/``retweet`` works (the sharded coordinator qualifies).
    Capabilities are feature-detected: without ``ingest_batch`` full
    retweet runs fall back to per-event dispatch, and without
    ``warm_answer`` the degraded rung escalates to shed (counted in
    ``serve.degrade_unsupported``).
    """

    def __init__(
        self,
        service,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.service = service
        self.config = config if config is not None else ServeConfig()
        if metrics is not None:
            self.metrics = metrics
        else:
            owned = getattr(service, "metrics", None)
            self.metrics = owned if isinstance(owned, MetricsRegistry) else (
                MetricsRegistry()
            )
        self._admission = AdmissionController(
            self.config.admission(), metrics=self.metrics
        )
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue()
        self._dispatcher: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._can_batch = hasattr(service, "ingest_batch")
        self._can_degrade = hasattr(service, "warm_answer")
        #: Tweet ids announced by admitted PostRequests whose execution
        #: may still be queued — valid targets for later retweets.
        self._announced: set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Boot the dispatcher loop and its single worker thread."""
        if self._dispatcher is not None:
            raise ConfigError("server already started")
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Drain the queue, then stop the dispatcher and worker."""
        if self._dispatcher is None:
            return
        await self._queue.join()
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        self._dispatcher = None
        assert self._executor is not None
        self._executor.shutdown(wait=True)
        self._executor = None

    async def __aenter__(self) -> "AsyncRecommendationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_nowait(self, request) -> asyncio.Future:
        """Admit + enqueue one request; returns its response future.

        Admission, validation and enqueueing happen synchronously (no
        await), so calling this in arrival order preserves the service's
        monotone-clock invariant regardless of how callers interleave.
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        future: asyncio.Future = loop.create_future()
        self.metrics.counter("serve.requests").inc()
        try:
            mode = self._admit(request, now)
        except Exception as exc:  # invalid request: refuse pre-queue
            future.set_exception(exc)
            return future
        if mode == "shed":
            self.metrics.counter("serve.shed").inc()
            future.set_result(ServeResponse(status="shed"))
            return future
        self._queue.put_nowait(_Pending(request, mode, future, now))
        self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
        return future

    async def submit(self, request) -> ServeResponse:
        """Submit one request and await its response."""
        return await self.submit_nowait(request)

    def _admit(self, request, now: float) -> str:
        if isinstance(request, PostRequest):
            # Control plane: post_tweet is O(1) and later retweets
            # depend on it, so it never enters the ladder.
            self._announced.add(request.tweet)
            return "full"
        if isinstance(request, RetweetRequest):
            known = getattr(self.service, "tweets", None)
            if (
                known is not None
                and request.tweet not in known
                and request.tweet not in self._announced
            ):
                raise DatasetError(f"unknown tweet id {request.tweet}")
        elif isinstance(request, ScoreRequest):
            known = getattr(self.service, "tweets", None)
            if known is not None:
                missing = [
                    t for t in request.tweets
                    if t not in known and t not in self._announced
                ]
                if missing:
                    raise DatasetError(f"unknown tweet ids {missing}")
        else:
            raise ConfigError(f"unknown request type {type(request).__name__}")
        decision = self._admission.admit(now, self._queue.qsize())
        if decision == "degraded" and not self._can_degrade:
            self.metrics.counter("serve.degrade_unsupported").inc()
            decision = "shed"
        return decision

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            deadline = loop.time() + self.config.max_linger
            while len(batch) < self.config.max_batch:
                if not self._queue.empty():
                    batch.append(self._queue.get_nowait())
                    continue
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            await self._execute_batch(batch, loop)

    async def _execute_batch(self, batch: list[_Pending], loop) -> None:
        self.metrics.counter("serve.batches").inc()
        self.metrics.histogram("serve.batch_size").observe(len(batch))
        assert self._executor is not None
        try:
            # The blocking service work runs on the worker thread so the
            # event loop keeps admitting (and shedding) while a batch is
            # in flight — that's what makes backpressure observable.
            outcomes = await loop.run_in_executor(
                self._executor, self._run_batch, [p for p in batch]
            )
        except BaseException as exc:  # pragma: no cover - defensive
            outcomes = [("error", exc)] * len(batch)
        latency_hist = self.metrics.histogram(
            "serve.latency_seconds", timing=True
        )
        for pending, (kind, payload) in zip(batch, outcomes):
            latency = loop.time() - pending.enqueued_at
            if kind == "error":
                if not pending.future.done():
                    pending.future.set_exception(payload)
            else:
                payload.latency_s = latency
                latency_hist.observe(latency)
                self.metrics.histogram(
                    f"serve.latency_seconds[{payload.status}]", timing=True
                ).observe(latency)
                if not pending.future.done():
                    pending.future.set_result(payload)
            self._queue.task_done()
        self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())

    # ------------------------------------------------------------------
    # Batch execution (worker thread)
    # ------------------------------------------------------------------
    def _run_batch(self, batch: list[_Pending]) -> list[tuple[str, object]]:
        """Execute one ordered batch; per-request outcome tuples.

        Consecutive requests of the same kind and rung collapse into one
        service call; order across runs is the arrival order, so the
        service clock stays monotone and results match the sequential
        semantics exactly.
        """
        outcomes: list[tuple[str, object]] = []
        i = 0
        while i < len(batch):
            pending = batch[i]
            request = pending.request
            if isinstance(request, RetweetRequest) and pending.mode == "full":
                run = [pending]
                while (
                    i + len(run) < len(batch)
                    and isinstance(batch[i + len(run)].request, RetweetRequest)
                    and batch[i + len(run)].mode == "full"
                ):
                    run.append(batch[i + len(run)])
                outcomes.extend(self._run_retweets(run))
                i += len(run)
            elif isinstance(request, ScoreRequest) and pending.mode == "full":
                run = [pending]
                while (
                    i + len(run) < len(batch)
                    and isinstance(batch[i + len(run)].request, ScoreRequest)
                    and batch[i + len(run)].mode == "full"
                ):
                    run.append(batch[i + len(run)])
                outcomes.extend(self._run_scores(run))
                i += len(run)
            else:
                outcomes.append(self._run_single(pending))
                i += 1
        return outcomes

    def _run_retweets(self, run: list[_Pending]) -> list[tuple[str, object]]:
        if self._can_batch and len(run) > 1:
            try:
                per_event = self.service.ingest_batch(
                    [(p.request.user, p.request.tweet, p.request.at) for p in run]
                )
            except Exception as exc:
                return [("error", exc)] * len(run)
            return [
                (
                    "ok",
                    ServeResponse(
                        status="ok",
                        served_from="propagation",
                        notifications=notifications,
                    ),
                )
                for notifications in per_event
            ]
        outcomes = []
        for p in run:
            try:
                notifications = self.service.retweet(
                    p.request.user, p.request.tweet, p.request.at
                )
            except Exception as exc:
                outcomes.append(("error", exc))
                continue
            outcomes.append(
                (
                    "ok",
                    ServeResponse(
                        status="ok",
                        served_from="propagation",
                        notifications=notifications,
                    ),
                )
            )
        return outcomes

    def _run_scores(self, run: list[_Pending]) -> list[tuple[str, object]]:
        score_batch = getattr(self.service, "score_batch", None)
        if score_batch is None:
            exc = ConfigError(
                f"{type(self.service).__name__} does not support score requests"
            )
            return [("error", exc)] * len(run)
        wanted: list[int] = []
        seen: set[int] = set()
        for p in run:
            for tweet in p.request.tweets:
                if tweet not in seen:
                    seen.add(tweet)
                    wanted.append(tweet)
        try:
            scored = score_batch(wanted)
        except Exception as exc:
            return [("error", exc)] * len(run)
        return [
            (
                "ok",
                ServeResponse(
                    status="ok",
                    served_from="propagation",
                    scores={t: scored[t] for t in p.request.tweets},
                ),
            )
            for p in run
        ]

    def _run_single(self, pending: _Pending) -> tuple[str, object]:
        request = pending.request
        try:
            if isinstance(request, PostRequest):
                self.service.post_tweet(
                    tweet_id=request.tweet, author=request.author, at=request.at
                )
                return ("ok", ServeResponse(status="ok"))
            if isinstance(request, RetweetRequest):  # degraded rung
                answer = self.service.warm_answer(
                    request.user, request.tweet, request.at
                )
                if answer is None:
                    self.metrics.counter("serve.degraded_misses").inc()
                    return (
                        "ok",
                        ServeResponse(status="degraded", served_from="none"),
                    )
                return (
                    "ok",
                    ServeResponse(
                        status="degraded",
                        served_from="warm-cache",
                        notifications=answer,
                    ),
                )
            # Degraded score request: warm-cache views only.
            warm_scores = getattr(self.service, "warm_scores", None)
            if warm_scores is None:
                raise ConfigError(
                    f"{type(self.service).__name__} cannot degrade score "
                    "requests"
                )
            scores = warm_scores(request.tweets)
            misses = sum(1 for v in scores.values() if v is None)
            if misses:
                self.metrics.counter("serve.degraded_misses").inc(misses)
            return (
                "ok",
                ServeResponse(
                    status="degraded",
                    served_from="warm-cache" if misses < len(scores) else "none",
                    scores=scores,
                ),
            )
        except Exception as exc:
            return ("error", exc)


def serve_stream(
    service,
    requests: Sequence[object],
    config: ServeConfig | None = None,
    metrics: MetricsRegistry | None = None,
    return_exceptions: bool = False,
) -> list[ServeResponse]:
    """Drive an ordered request stream through the server, deterministically.

    Every request is admitted (in order) before the dispatcher starts,
    so batches always fill to ``max_batch`` and their composition — and
    every service-side effect — is a pure function of the stream and the
    config.  This is the driver the differential and byte-stability
    suites use; the open-loop load generator
    (:mod:`repro.serve.loadgen`) is its wall-clock counterpart.

    Note the queue holds the whole stream up front: size ``shed_depth``
    accordingly if shedding is not the point of the test.
    """

    async def run() -> list[ServeResponse]:
        server = AsyncRecommendationServer(service, config, metrics)
        futures = [server.submit_nowait(request) for request in requests]
        async with server:
            return await asyncio.gather(
                *futures, return_exceptions=return_exceptions
            )

    return asyncio.run(run())
