"""Admission control for the serving front-end.

The server cannot queue unboundedly: SimGraph propagation is fast but
not free, and an open-loop arrival stream above the worker's capacity
grows latency without limit.  Admission is a three-rung ladder, decided
synchronously at submit time:

* **full** — tokens available and the queue shallow: the request takes
  the normal micro-batched propagation path;
* **degraded** — the token bucket is empty or the queue is past the
  degrade threshold: the event is still ingested (profiles stay
  correct), but it is answered from the warm-state cache only
  (:meth:`~repro.service.engine.RecommendationService.warm_answer`) —
  no propagation work;
* **shed** — the queue is past the hard limit: the request is refused
  immediately, with no service state change at all.

The token bucket's refill rate and the queue thresholds calibrate from
the :class:`~repro.eval.budget.CapacityModel` (measured seconds/event ×
utilization headroom → sustainable events/sec; SLO seconds ÷
seconds/event → tolerable backlog), so the limiter and the paper's
timing numbers speak the same unit.

Every decision is a pure function of (clock, queue depth, bucket
state): with ``rate=None`` and generous depths the ladder is inert and
the server is deterministic, which is how the differential and
byte-stability suites run it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.budget import CapacityModel
from repro.obs import NULL, MetricsRegistry

__all__ = ["TokenBucket", "AdmissionConfig", "AdmissionController", "DECISIONS"]

#: The ladder, best rung first.
DECISIONS = ("full", "degraded", "shed")


class TokenBucket:
    """A deterministic token bucket (time injected, never read).

    Refills continuously at ``rate`` tokens/sec up to ``burst``; each
    admitted request takes one token.  ``rate=None`` disables the bucket
    (always admits).  The caller supplies ``now`` on every call, so the
    bucket is exactly reproducible from an event-time sequence — the
    bursty-boundary budget tests replay simulated timestamps through it.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last")

    def __init__(self, rate: float | None, burst: float = 1.0):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be at least 1, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last: float | None = None

    @property
    def tokens(self) -> float:
        """Tokens available as of the last refill."""
        return self._tokens

    def try_take(self, now: float) -> bool:
        """Take one token at time ``now``; False when the bucket is dry.

        ``now`` may be any monotone clock (wall seconds, simulated
        seconds) as long as it is consistent across calls; going
        backwards simply refills nothing.
        """
        if self.rate is None:
            return True
        if self._last is not None and now > self._last:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of one :class:`AdmissionController`.

    ``rate=None`` disables the token bucket; ``degrade_depth=None``
    defaults to half the shed depth.
    """

    rate: float | None = None
    burst: float = 64.0
    shed_depth: int = 1024
    degrade_depth: int | None = None

    def __post_init__(self) -> None:
        if self.shed_depth < 1:
            raise ValueError(
                f"shed_depth must be at least 1, got {self.shed_depth}"
            )
        if self.degrade_depth is not None and not (
            0 < self.degrade_depth <= self.shed_depth
        ):
            raise ValueError(
                f"degrade_depth must be in (0, shed_depth], got "
                f"{self.degrade_depth}"
            )

    @property
    def resolved_degrade_depth(self) -> int:
        return (
            self.degrade_depth
            if self.degrade_depth is not None
            else max(1, self.shed_depth // 2)
        )


class AdmissionController:
    """The full → degraded → shed ladder (module docstring)."""

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config if config is not None else AdmissionConfig()
        self.metrics = metrics if metrics is not None else NULL
        self.bucket = TokenBucket(self.config.rate, burst=self.config.burst)

    @classmethod
    def from_capacity(
        cls,
        model: CapacityModel,
        slo_seconds: float,
        burst: float = 64.0,
        metrics: MetricsRegistry | None = None,
    ) -> "AdmissionController":
        """Calibrate the ladder from a measured capacity model.

        The token bucket refills at the model's sustainable rate; the
        degrade threshold is the backlog whose drain time still fits
        ``slo_seconds``; the shed limit is twice that (past it, even a
        degraded answer would queue too long behind full requests).
        """
        degrade = model.queue_depth_for_latency(slo_seconds)
        return cls(
            AdmissionConfig(
                rate=model.events_per_second,
                burst=burst,
                degrade_depth=degrade,
                shed_depth=2 * degrade,
            ),
            metrics=metrics,
        )

    def admit(self, now: float, queue_depth: int) -> str:
        """Decide one request's rung; records ``serve.admission[...]``."""
        if queue_depth >= self.config.shed_depth:
            decision = "shed"
        elif queue_depth >= self.config.resolved_degrade_depth:
            decision = "degraded"
        elif not self.bucket.try_take(now):
            decision = "degraded"
        else:
            decision = "full"
        self.metrics.counter(f"serve.admission[{decision}]").inc()
        return decision
