"""Asyncio serving front-end: micro-batching, admission control, load
generation.

:class:`AsyncRecommendationServer` coalesces concurrent retweet /
timeline-score requests into single batched service calls
(``ingest_batch`` / ``score_batch``) and sheds or degrades over-budget
traffic via an :class:`AdmissionController` calibrated from the
:class:`~repro.eval.budget.CapacityModel`.  :mod:`repro.serve.loadgen`
replays synthetic streams against it open-loop and reports exact
latency percentiles.
"""

from repro.serve.admission import (
    DECISIONS,
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.serve.loadgen import (
    LoadProfile,
    PrimedService,
    RunReport,
    measure_capacity,
    prime_service,
    run_load,
    synth_requests,
)
from repro.serve.server import (
    AsyncRecommendationServer,
    PostRequest,
    RetweetRequest,
    ScoreRequest,
    ServeConfig,
    ServeResponse,
    serve_stream,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AsyncRecommendationServer",
    "DECISIONS",
    "LoadProfile",
    "PostRequest",
    "PrimedService",
    "RetweetRequest",
    "RunReport",
    "ScoreRequest",
    "ServeConfig",
    "ServeResponse",
    "TokenBucket",
    "measure_capacity",
    "prime_service",
    "run_load",
    "serve_stream",
    "synth_requests",
]
