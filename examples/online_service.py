"""Running the full online service (ingestion -> delivery -> maintenance).

Run:  python examples/online_service.py

Drives :class:`repro.service.RecommendationService` with a simulated
event stream: accounts and follows register first, then tweets and
retweets arrive in time order; the service batches propagation, enforces
a per-user daily notification budget, and refreshes its SimGraph
periodically with the crossfold strategy.
"""

from repro.service import RecommendationService, ServiceConfig
from repro.synth import SynthConfig, generate_dataset

DAY = 86400.0


def main() -> None:
    dataset = generate_dataset(SynthConfig(n_users=800, seed=11))
    config = ServiceConfig(
        daily_budget=10,
        rebuild_interval=10 * DAY,
        rebuild_strategy="crossfold",
        use_scheduler=True,
    )
    service = RecommendationService(config)

    for user_id in dataset.users:
        service.add_user(user_id)
    for follower, followee, _ in dataset.follow_graph.edges():
        service.add_follow(follower, followee)

    # Merge tweets and retweets into one chronological event stream.
    events: list[tuple[float, str, tuple]] = []
    for tweet in dataset.tweets.values():
        events.append((tweet.created_at, "tweet", (tweet.id, tweet.author)))
    for retweet in dataset.retweets():
        events.append((retweet.time, "retweet", (retweet.user, retweet.tweet)))
    events.sort(key=lambda e: e[0])

    delivered = 0
    sample_shown = 0
    for at, kind, payload in events:
        if kind == "tweet":
            tweet_id, author = payload
            service.post_tweet(tweet_id=tweet_id, author=author, at=at)
        else:
            user, tweet = payload
            notifications = service.retweet(user=user, tweet=tweet, at=at)
            delivered += len(notifications)
            if notifications and sample_shown < 5 and service.stats.rebuilds > 1:
                n = notifications[0]
                print(
                    f"t={at / DAY:5.1f}d  notify user {n.user}: "
                    f"tweet {n.tweet} (p={n.score:.4f})"
                )
                sample_shown += 1
    delivered += len(service.flush(now=events[-1][0]))

    stats = service.stats
    print(
        f"\nstream finished: {stats.events_ingested:,} retweets ingested, "
        f"{stats.propagations_run:,} propagations,"
        f"\n{stats.notifications_delivered:,} notifications delivered, "
        f"{stats.notifications_suppressed:,} suppressed by the daily budget,"
        f"\n{stats.rebuilds} SimGraph rebuilds "
        f"(last at day {stats.last_rebuild_at / DAY:.1f}); "
        f"final graph: {service.simgraph!r}"
    )


if __name__ == "__main__":
    main()
