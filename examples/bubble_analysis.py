"""Information bubbles and escape re-ranking (paper §7, future work).

Run:  python examples/bubble_analysis.py

Identifies bubbles in the SimGraph, measures how local the recommender's
output is, and shows the escape re-ranker trading raw score for
cross-bubble diversity.
"""

from repro import SimGraphRecommender, SynthConfig, generate_dataset
from repro.analysis import (
    BubbleEscapeReranker,
    identify_bubbles,
    recommendation_locality,
)
from repro.data import temporal_split
from repro.graph import modularity
from repro.utils.tables import render_table


def main() -> None:
    dataset = generate_dataset(SynthConfig(n_users=1200, seed=42))
    split = temporal_split(dataset)
    recommender = SimGraphRecommender()
    recommender.fit(dataset, split.train)
    simgraph = recommender.simgraph
    assert simgraph is not None

    bubbles = identify_bubbles(simgraph, seed=0)
    q = modularity(simgraph.graph, bubbles.labels)
    sizes = sorted(bubbles.sizes().values(), reverse=True)
    print(f"SimGraph: {simgraph.node_count} users, {simgraph.edge_count} edges")
    print(f"bubbles found: {bubbles.bubble_count} (modularity {q:.3f})")
    print(f"largest bubbles: {sizes[:8]}")

    # Collect recommendations over a slice of the test stream.
    recommendations = []
    audience: dict[int, set[int]] = {}
    for event in split.test[: len(split.test) // 2]:
        recommendations.extend(recommender.on_event(event))
        audience.setdefault(event.tweet, set()).add(event.user)

    locality = recommendation_locality(recommendations, bubbles, audience)
    print(
        f"\n{len(recommendations)} recommendations; "
        f"{locality:.0%} stay inside the user's own bubble"
    )

    rows = []
    for weight in (0.0, 0.3, 0.7, 1.0):
        reranker = BubbleEscapeReranker(bubbles, escape_weight=weight)
        reranked = reranker.rerank(recommendations, audience)
        top = reranked[: max(len(reranked) // 10, 1)]
        top_locality = recommendation_locality(top, bubbles, audience)
        rows.append([weight, round(top_locality, 3), len(top)])
    print()
    print(render_table(
        ["escape weight", "top-decile locality", "recs"], rows,
        title="Escape re-ranking: locality of the best-ranked slice",
    ))


if __name__ == "__main__":
    main()
