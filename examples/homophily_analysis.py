"""Reproduce the paper's §3 analysis (Tables 1-4) on a synthetic corpus.

Run:  python examples/homophily_analysis.py

Prints the dataset characterization (Table 1), the homophily-vs-distance
study (Table 2), the top-N rank/distance study (Table 3) and the SimGraph
characteristics (Table 4).
"""

from repro.analysis import characterize
from repro.synth import SynthConfig, generate_dataset
from repro.utils.tables import render_table


def main() -> None:
    config = SynthConfig(n_users=1200, seed=42)
    print(f"generating a {config.n_users}-user corpus...")
    dataset = generate_dataset(config)

    report = characterize(
        dataset, sample_size=120, min_retweets=5, path_sample_size=120
    )

    print()
    print(report.render_table1())
    print()
    print(report.render_table2())
    print()
    print(report.render_table3())
    print()
    print(report.render_table4())

    print()
    rows = sorted(report.simgraph_paths.items())
    print(render_table(
        ["distance", "nodes"], rows,
        title="SimGraph smallest paths (Figure 5)",
    ))

    survival = report.stats.lifetime_survival
    print(
        "\nTweet lifetime (Figure 4): "
        + ", ".join(f"{frac:.0%} dead before {cp:.0f}h"
                    for cp, frac in survival.items())
    )


if __name__ == "__main__":
    main()
