"""Incremental SimGraph maintenance (paper §6.3, Figure 16).

Run:  python examples/incremental_updates.py

Builds a SimGraph at the 90% mark, lets the 90-95% slice arrive, refreshes
the graph with each of the four strategies, and scores the final 5% —
showing that *crossfold* tracks a full rebuild at a fraction of the cost.
"""

import time

from repro import SimGraphRecommender, SynthConfig, generate_dataset
from repro.core import RetweetProfiles, SimGraphBuilder
from repro.core.update import STRATEGIES, apply_strategy
from repro.data import temporal_split
from repro.eval import evaluate_sweep, run_replay, select_target_users
from repro.utils.tables import render_table


def main() -> None:
    dataset = generate_dataset(SynthConfig(n_users=1200, seed=42))
    split = temporal_split(dataset)
    mid = split.slice_test(0.90, 0.95)
    last = split.slice_test(0.95, 1.0)
    targets = select_target_users(split.train, per_stratum=150, seed=0)
    print(f"{dataset!r}; {len(mid)} update actions, {len(last)} eval actions")

    builder = SimGraphBuilder(tau=0.001)
    profiles = RetweetProfiles(split.train)
    t0 = time.perf_counter()
    old = builder.build(dataset.follow_graph, profiles)
    build_cost = time.perf_counter() - t0
    print(f"initial SimGraph built in {build_cost:.2f}s: {old!r}")

    rows = []
    for name in STRATEGIES:
        t0 = time.perf_counter()
        graph = apply_strategy(
            name, old, dataset.follow_graph, split.train, mid, builder=builder
        )
        update_cost = time.perf_counter() - t0
        recommender = SimGraphRecommender(simgraph=graph)
        recommender.fit(dataset, split.train + mid, targets.all_users)
        result = run_replay(
            recommender, dataset, split.train + mid, last,
            targets.all_users, fitted=True,
        )
        metrics = evaluate_sweep(result, [30], dataset.popularity)[0]
        rows.append([
            name, graph.edge_count, metrics.hits,
            round(update_cost, 3),
        ])

    print()
    print(render_table(
        ["strategy", "edges", "hits@30", "update cost (s)"], rows,
        title="Update strategies on the last 5% (Figure 16)",
    ))


if __name__ == "__main__":
    main()
