"""Quickstart: generate a corpus, build a SimGraph, recommend a post.

Run:  python examples/quickstart.py
"""

from repro import SimGraphRecommender, SynthConfig, generate_dataset
from repro.data import temporal_split

def main() -> None:
    # 1. A synthetic Twitter-like corpus (see repro.synth for the knobs).
    config = SynthConfig(n_users=800, seed=11)
    dataset = generate_dataset(config)
    print(f"generated {dataset!r}")

    # 2. Chronological 90/10 split, as in the paper's evaluation protocol.
    split = temporal_split(dataset)
    print(f"train: {len(split.train)} actions, test: {len(split.test)}")

    # 3. Fit the SimGraph recommender: builds retweet profiles, explores
    #    the follow graph two hops out and keeps similarity edges >= tau.
    recommender = SimGraphRecommender(tau=0.001)
    recommender.fit(dataset, split.train)
    simgraph = recommender.simgraph
    assert simgraph is not None
    print(
        f"SimGraph: {simgraph.node_count} users, {simgraph.edge_count} "
        f"similarity edges (tau={simgraph.tau})"
    )

    # 4. Stream a few test retweets; each one triggers the propagation
    #    model and yields scored recommendations.
    shown = 0
    for event in split.test:
        recommendations = recommender.on_event(event)
        if not recommendations:
            continue
        top = sorted(recommendations, key=lambda r: -r.score)[:3]
        print(
            f"tweet {event.tweet} retweeted by user {event.user} -> "
            "recommend to: "
            + ", ".join(f"user {r.user} (p={r.score:.4f})" for r in top)
        )
        shown += 1
        if shown >= 5:
            break


if __name__ == "__main__":
    main()
