"""Replay-compare SimGraph against CF, Bayes and GraphJet (paper §6.2).

Run:  python examples/compare_recommenders.py

A scaled-down version of the paper's Figures 8 and 14: all four methods
replay the same chronological test stream for the same stratified user
sample, then hits and F1 are reported per daily top-k budget.
"""

from repro import (
    BayesRecommender,
    CollaborativeFilteringRecommender,
    GraphJetRecommender,
    SimGraphRecommender,
    SynthConfig,
    generate_dataset,
)
from repro.data import temporal_split
from repro.eval import (
    SweepReport,
    evaluate_sweep,
    run_replay,
    select_target_users,
)

K_VALUES = [10, 20, 30, 50, 100]


def main() -> None:
    dataset = generate_dataset(SynthConfig(n_users=1200, seed=42))
    split = temporal_split(dataset)
    targets = select_target_users(split.train, per_stratum=150, seed=0)
    print(
        f"{dataset!r}; strata {targets.counts()}; "
        f"{len(split.test)} test events"
    )

    methods = [
        SimGraphRecommender(),
        CollaborativeFilteringRecommender(),
        BayesRecommender(),
        GraphJetRecommender(),
    ]
    series = {}
    for method in methods:
        print(f"replaying {method.name}...")
        result = run_replay(
            method, dataset, split.train, split.test, targets.all_users
        )
        series[method.name] = evaluate_sweep(
            result, K_VALUES, dataset.popularity
        )

    report = SweepReport(K_VALUES, series)
    print()
    print(report.render("hits", "Number of hits (Figure 8)", precision=0))
    print()
    print(report.render("f1", "F1 score (Figure 14)", precision=5))
    print()
    print(report.render_overlap(
        "SimGraph", "Hits shared with SimGraph (Figure 13)"
    ))
    print()
    best = report.best_k("f1", "SimGraph")
    print(f"SimGraph F1 peaks at k = {best} daily recommendations")


if __name__ == "__main__":
    main()
