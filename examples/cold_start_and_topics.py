"""Cold-start borrowing (§4.1) and topic-merged profiles (§7).

Run:  python examples/cold_start_and_topics.py

Shows the two coverage extensions the paper sketches: users without
SimGraph edges served through their followees' recommendations, and
tweets merged into "topic tweets" so thin profiles overlap.
"""

from repro import SimGraphRecommender, SynthConfig, generate_dataset
from repro.core import (
    ColdStartAugmenter,
    RetweetProfiles,
    SimGraphBuilder,
    merge_by_label,
    topic_profiles,
)
from repro.data import temporal_split
from repro.utils.tables import render_table


def main() -> None:
    dataset = generate_dataset(SynthConfig(n_users=1200, seed=42))
    split = temporal_split(dataset)

    # ------------------------------------------------------------------
    # Cold start
    # ------------------------------------------------------------------
    recommender = SimGraphRecommender()
    recommender.fit(dataset, split.train)
    augmenter = ColdStartAugmenter(recommender, dataset)
    print(
        f"cold users (no SimGraph edges): {len(augmenter.cold_users)} "
        f"of {dataset.user_count}; "
        f"{augmenter.coverage():.0%} reachable through followees"
    )
    borrowed = 0
    for event in split.test[:300]:
        for rec in augmenter.on_event(event):
            if augmenter.is_cold(rec.user):
                borrowed += 1
    print(f"borrowed recommendations emitted on 300 events: {borrowed}")

    # ------------------------------------------------------------------
    # Topic merging
    # ------------------------------------------------------------------
    assignment = merge_by_label(dataset)
    raw_profiles = RetweetProfiles(split.train)
    merged_profiles = topic_profiles(split.train, assignment)
    builder = SimGraphBuilder(tau=0.001)
    raw_graph = builder.build(dataset.follow_graph, raw_profiles)
    merged_graph = builder.build(dataset.follow_graph, merged_profiles)

    def low_activity_edges(graph):
        """Mean out-degree among users with < 5 train retweets."""
        thin = [
            u for u in graph.users()
            if raw_profiles.profile_size(u) < 5
        ]
        if not thin:
            return 0.0
        return sum(graph.influencer_count(u) for u in thin) / len(thin)

    rows = [
        ["raw tweets", raw_graph.node_count, raw_graph.edge_count,
         round(low_activity_edges(raw_graph), 2)],
        ["topic tweets", merged_graph.node_count, merged_graph.edge_count,
         round(low_activity_edges(merged_graph), 2)],
    ]
    print()
    print(render_table(
        ["profiles", "nodes", "edges", "mean |F_u| of small users"], rows,
        title=(
            f"Topic merging ({assignment.topic_count} items from "
            f"{len(assignment.topic_of)} tweets)"
        ),
    ))
    print(
        "\nMerging tweets into topics multiplies the similarity edges of"
        "\nlow-activity users — the §7 enhancement for small users."
    )


if __name__ == "__main__":
    main()
