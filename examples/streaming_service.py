"""A simulated live recommendation service (paper §5.4 optimizations).

Run:  python examples/streaming_service.py

Feeds the test stream through a SimGraph recommender configured like a
production deployment: postponed computation batches retweets per tweet
(hot tweets flush in minutes, cold ones wait), the dynamic γ(t) threshold
cuts propagation cost for already-popular messages, and the 72-hour
relevance horizon retires stale content.  Reports throughput and the cost
savings against the unoptimized per-retweet configuration.
"""

import time

from repro import DynamicThreshold, SimGraphRecommender, SynthConfig, generate_dataset
from repro.core import DelayPolicy, NoThreshold
from repro.data import temporal_split


def run(recommender: SimGraphRecommender, dataset, split) -> tuple[int, float]:
    recommender.fit(dataset, split.train)
    t0 = time.perf_counter()
    emitted = 0
    for event in split.test:
        emitted += len(recommender.on_event(event))
    emitted += len(recommender.finalize(split.test[-1].time))
    return emitted, time.perf_counter() - t0


def main() -> None:
    dataset = generate_dataset(SynthConfig(n_users=1200, seed=42))
    split = temporal_split(dataset)
    print(f"{dataset!r}; streaming {len(split.test)} retweet events\n")

    production = SimGraphRecommender(
        threshold=DynamicThreshold(k=20.0, p=2.0, scale=0.05),
        delay_policy=DelayPolicy(scale=900.0, min_delay=60.0,
                                 max_delay=3600.0),
    )
    naive = SimGraphRecommender(threshold=NoThreshold(), delay_policy=None)

    for label, recommender in (("production", production), ("naive", naive)):
        emitted, elapsed = run(recommender, dataset, split)
        rate = len(split.test) / elapsed if elapsed else float("inf")
        print(
            f"{label:>10}: {emitted:7d} recommendations, "
            f"{elapsed:6.2f}s ({rate:,.0f} events/s)"
        )
    print(
        "\nThe production configuration batches retweets per tweet and"
        "\nstops propagating popular messages early — same recommendation"
        "\nsurface, a fraction of the propagation work."
    )


if __name__ == "__main__":
    main()
