"""Tests for the exception hierarchy and the Recommender interface."""

import pytest

from repro.baselines.base import Recommendation, Recommender
from repro.exceptions import (
    ConfigError,
    ConvergenceError,
    DatasetError,
    EvaluationError,
    GraphError,
    ReproError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ConfigError, ConvergenceError, DatasetError, EvaluationError,
         GraphError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)


class TestRecommendation:
    def test_frozen_value_object(self):
        rec = Recommendation(user=1, tweet=2, score=0.5, time=3.0)
        with pytest.raises(AttributeError):
            rec.score = 0.9  # type: ignore[misc]

    def test_equality(self):
        assert Recommendation(1, 2, 0.5, 3.0) == Recommendation(1, 2, 0.5, 3.0)


class TestRecommenderInterface:
    def test_abstract_methods_enforced(self):
        with pytest.raises(TypeError):
            Recommender()  # type: ignore[abstract]

    def test_default_finalize_empty(self):
        class Minimal(Recommender):
            def fit(self, dataset, train, target_users=None):
                pass

            def on_event(self, event):
                return []

        assert Minimal().finalize(0.0) == []

    def test_all_shipped_recommenders_conform(self):
        from repro.baselines import (
            BayesRecommender,
            CollaborativeFilteringRecommender,
            GraphJetRecommender,
        )
        from repro.core import SimGraphRecommender

        for cls in (
            BayesRecommender,
            CollaborativeFilteringRecommender,
            GraphJetRecommender,
            SimGraphRecommender,
        ):
            instance = cls()
            assert isinstance(instance, Recommender)
            assert instance.name != Recommender.name
