"""Tests for repro.baselines.graphjet."""

import pytest

from repro.baselines.graphjet import GraphJetRecommender
from repro.data.builders import DatasetBuilder
from repro.data.models import Retweet

HOUR = 3600.0


def engagement_world():
    """Users 0/1 co-engage tweets; tweet 2 is popular."""
    builder = DatasetBuilder().with_users(5)
    for tid in range(4):
        builder.tweet(author=4, at=0.0, tweet_id=tid)
    train = []
    pairs = [(0, 0), (1, 0), (0, 1), (1, 2), (2, 2), (3, 2)]
    for i, (user, tid) in enumerate(pairs):
        at = 10.0 + i
        builder.retweet(user=user, tweet=tid, at=at)
        train.append(Retweet(user, tid, at))
    return builder.build(), train


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs", [{"period": 0.0}, {"walks": 0}, {"walk_depth": 0}]
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GraphJetRecommender(**kwargs)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            GraphJetRecommender().on_event(Retweet(0, 0, 0.0))


class TestRandomWalks:
    def test_coengaged_tweets_recommended(self):
        dataset, train = engagement_world()
        rec = GraphJetRecommender(walks=200, seed=1)
        rec.fit(dataset, train)
        # User 0 engaged tweets 0 and 1; user 1 engaged 0 and 2.
        # Walks from user 0 must surface tweet 2 via user 1.
        results = dict(rec.recommend_for_user(0))
        assert 2 in results

    def test_own_tweets_excluded(self):
        dataset, train = engagement_world()
        rec = GraphJetRecommender(walks=200, seed=1)
        rec.fit(dataset, train)
        results = dict(rec.recommend_for_user(0))
        assert 0 not in results and 1 not in results

    def test_cold_user_gets_nothing(self):
        """The small-user limitation the paper observes in Fig. 9."""
        dataset, train = engagement_world()
        rec = GraphJetRecommender(walks=100, seed=1)
        rec.fit(dataset, train)
        assert rec.recommend_for_user(4) == []

    def test_popular_tweets_visited_more(self):
        # Build a star: many users engaged tweet 100; user 0 bridges.
        builder = DatasetBuilder().with_users(30)
        builder.tweet(author=29, at=0.0, tweet_id=100)
        builder.tweet(author=29, at=0.0, tweet_id=200)
        train = []
        t = 1.0
        for user in range(1, 25):
            builder.retweet(user=user, tweet=100, at=t)
            train.append(Retweet(user, 100, t))
            t += 1.0
        # Bridge: user 0 and user 1 share tweet 300; user 1 engaged both.
        builder.tweet(author=29, at=0.0, tweet_id=300)
        for user in (0, 1):
            builder.retweet(user=user, tweet=300, at=t)
            train.append(Retweet(user, 300, t))
            t += 1.0
        builder.retweet(user=2, tweet=200, at=t)
        train.append(Retweet(2, 200, t))
        rec = GraphJetRecommender(walks=400, walk_depth=4, seed=3)
        rec.fit(builder.build(), train)
        results = dict(rec.recommend_for_user(0))
        assert results.get(100, 0.0) > results.get(200, 0.0)


class TestPeriodicBatches:
    def test_batch_cadence(self):
        dataset, train = engagement_world()
        rec = GraphJetRecommender(period=5 * HOUR, walks=50, seed=1)
        rec.fit(dataset, train, target_users={0, 1})
        # First event triggers the first batch immediately.
        first = rec.on_event(Retweet(2, 1, 100.0))
        assert first
        # An event inside the same period triggers nothing.
        assert rec.on_event(Retweet(3, 1, 100.0 + HOUR)) == []
        # Crossing the period boundary triggers the next batch.
        later = rec.on_event(Retweet(0, 2, 100.0 + 6 * HOUR))
        assert later

    def test_batch_restricted_to_targets(self):
        dataset, train = engagement_world()
        rec = GraphJetRecommender(period=5 * HOUR, walks=50, seed=1)
        rec.fit(dataset, train, target_users={0})
        recs = rec.on_event(Retweet(2, 1, 100.0))
        assert {r.user for r in recs} <= {0}

    def test_finalize_runs_due_batch(self):
        dataset, train = engagement_world()
        rec = GraphJetRecommender(period=HOUR, walks=50, seed=1)
        rec.fit(dataset, train, target_users={0, 1})
        rec.on_event(Retweet(2, 1, 100.0))
        recs = rec.finalize(end_time=100.0 + 2 * HOUR)
        assert recs

    def test_finalize_before_fit_empty(self):
        assert GraphJetRecommender().finalize(0.0) == []

    def test_window_expiry_forgets_old_engagements(self):
        dataset, train = engagement_world()
        rec = GraphJetRecommender(window=HOUR, period=HOUR, walks=50, seed=1)
        rec.fit(dataset, train, target_users={0})
        # All train engagements are at t~10-15; an event a day later
        # expires them, leaving user 0 cold.
        recs = rec.on_event(Retweet(2, 1, 24 * HOUR))
        assert recs == []
