"""Tests for repro.eval.budget."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines.base import Recommendation
from repro.eval.budget import CapacityModel, DAY_SECONDS, apply_daily_budget
from repro.obs import MetricsRegistry


def rec(user, tweet, score, time):
    return Recommendation(user=user, tweet=tweet, score=score, time=time)


class TestValidation:
    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            apply_daily_budget([], 0, start_time=0.0)

    def test_bad_day_length_rejected(self):
        with pytest.raises(ValueError):
            apply_daily_budget([], 5, start_time=0.0, day_length=0.0)


class TestBudgetSemantics:
    def test_under_budget_all_delivered(self):
        candidates = [rec(1, t, 0.5, 10.0 * t) for t in range(3)]
        delivered = apply_daily_budget(candidates, 5, start_time=0.0)
        assert len(delivered) == 3

    def test_top_k_by_score_within_day(self):
        candidates = [
            rec(1, 0, 0.1, 100.0),
            rec(1, 1, 0.9, 200.0),
            rec(1, 2, 0.5, 300.0),
        ]
        delivered = apply_daily_budget(candidates, 2, start_time=0.0)
        assert {r.tweet for r in delivered} == {1, 2}

    def test_budget_is_per_user(self):
        candidates = [
            rec(1, 0, 0.9, 100.0),
            rec(1, 1, 0.8, 200.0),
            rec(2, 0, 0.1, 100.0),
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=0.0)
        users = sorted(r.user for r in delivered)
        assert users == [1, 2]

    def test_budget_resets_each_day(self):
        candidates = [
            rec(1, 0, 0.9, 100.0),
            rec(1, 1, 0.8, 100.0 + DAY_SECONDS),
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=0.0)
        assert len(delivered) == 2

    def test_day_boundary_from_start_time(self):
        start = 1000.0
        candidates = [
            rec(1, 0, 0.9, start + DAY_SECONDS - 1.0),
            rec(1, 1, 0.8, start + DAY_SECONDS + 1.0),
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=start)
        assert len(delivered) == 2  # the two land in different days

    def test_tie_broken_by_earlier_time(self):
        candidates = [
            rec(1, 5, 0.5, 300.0),
            rec(1, 6, 0.5, 100.0),
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=0.0)
        assert delivered[0].tweet == 6

    def test_output_sorted_chronologically(self):
        candidates = [
            rec(2, 0, 0.9, 500.0),
            rec(1, 1, 0.9, 100.0),
            rec(1, 2, 0.8, 300.0),
        ]
        delivered = apply_daily_budget(candidates, 5, start_time=0.0)
        times = [r.time for r in delivered]
        assert times == sorted(times)

    def test_empty_input(self):
        assert apply_daily_budget([], 3, start_time=0.0) == []


class TestDayBoundary:
    """Exact-boundary audit: days are half-open windows
    ``[start + d*L, start + (d+1)*L)``, so a recommendation stamped at
    *precisely* a day boundary (a midnight-timestamp retweet) belongs to
    the new day and draws on a fresh budget."""

    def test_exact_midnight_opens_the_new_day(self):
        start = 0.0
        candidates = [
            rec(1, 0, 0.9, start + DAY_SECONDS - 1e-3),  # last of day 0
            rec(1, 1, 0.8, start + DAY_SECONDS),  # first of day 1
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=start)
        assert {r.tweet for r in delivered} == {0, 1}

    def test_exact_midnight_competes_in_the_new_day(self):
        # The boundary rec must contend with day-1 candidates, not day-0.
        start = 0.0
        candidates = [
            rec(1, 0, 0.1, start + DAY_SECONDS),  # boundary, low score
            rec(1, 1, 0.9, start + DAY_SECONDS + 10.0),  # day 1, high
            rec(1, 2, 0.9, start + 10.0),  # day 0
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=start)
        assert {r.tweet for r in delivered} == {1, 2}

    def test_start_time_itself_is_day_zero(self):
        delivered = apply_daily_budget(
            [rec(1, 0, 0.9, 5000.0)], 1, start_time=5000.0
        )
        assert len(delivered) == 1

    def test_boundaries_shift_with_start_time(self):
        # With start=0.5*DAY, absolute midnight sits mid-window: both recs
        # share one budget day even though a calendar day flips between.
        start = 0.5 * DAY_SECONDS
        candidates = [
            rec(1, 0, 0.9, DAY_SECONDS - 1.0),
            rec(1, 1, 0.8, DAY_SECONDS + 1.0),
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=start)
        assert len(delivered) == 1

    def test_every_multiple_of_day_length_starts_a_new_window(self):
        start = 250.0
        candidates = [
            rec(1, d, 0.9, start + d * DAY_SECONDS) for d in range(5)
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=start)
        assert len(delivered) == 5  # one fresh budget per boundary

    def test_pre_start_candidates_use_consistent_windows(self):
        # Floor division keeps windows half-open below start_time too:
        # [-L, 0) is day -1, and exactly -L opens day -1, not day -2.
        start = 0.0
        candidates = [
            rec(1, 0, 0.9, -DAY_SECONDS),  # day -1 boundary
            rec(1, 1, 0.8, -1.0),  # still day -1
            rec(1, 2, 0.7, 0.0),  # day 0
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=start)
        assert {r.tweet for r in delivered} == {0, 2}

    def test_custom_day_length_boundary(self):
        start, length = 100.0, 3600.0
        candidates = [
            rec(1, 0, 0.9, start + length - 1e-6),
            rec(1, 1, 0.8, start + length),
        ]
        delivered = apply_daily_budget(
            candidates, 1, start_time=start, day_length=length
        )
        assert len(delivered) == 2


class TestCapacityModel:
    def test_events_per_second(self):
        # The paper's §6.3 framing: ~38 ms/message is a ~26 events/sec
        # worker; at 0.8 utilization the admissible rate is ~21/sec.
        model = CapacityModel(service_seconds_per_event=0.038)
        assert model.events_per_second == pytest.approx(0.8 / 0.038)
        full = CapacityModel(service_seconds_per_event=0.038, utilization=1.0)
        assert full.events_per_second == pytest.approx(26.3, abs=0.1)

    def test_queue_depth_for_latency(self):
        model = CapacityModel(service_seconds_per_event=0.01, utilization=1.0)
        assert model.queue_depth_for_latency(0.25) == 25
        # A budget under one service time still admits depth 1.
        assert model.queue_depth_for_latency(0.001) == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"service_seconds_per_event": 0.0},
            {"service_seconds_per_event": -1.0},
            {"service_seconds_per_event": 0.01, "utilization": 0.0},
            {"service_seconds_per_event": 0.01, "utilization": 1.5},
        ],
    )
    def test_invalid_model_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CapacityModel(**kwargs)

    def test_bad_latency_budget_rejected(self):
        model = CapacityModel(service_seconds_per_event=0.01)
        with pytest.raises(ValueError):
            model.queue_depth_for_latency(0.0)


class TestBurstyBoundaryArrivals:
    """Day-boundary budget accounting while the admission limiter is hot.

    A burst delivers events *exactly* on the half-open day boundary while
    the token bucket is already dry: the limiter decides per arrival
    (simulated clock, deterministic refill) and the daily budget then
    windows whatever was admitted.  The two mechanisms must compose
    without off-by-one drift at the boundary instant.
    """

    def run_burst(self, rate, burst_at, n_burst, k=2, score=0.5):
        from repro.serve import TokenBucket

        start = 0.0
        bucket = TokenBucket(rate=rate, burst=2.0)
        arrivals = [burst_at + 1e-3 * i for i in range(n_burst)]
        admitted = []
        for i, now in enumerate(arrivals):
            if bucket.try_take(now):
                admitted.append(rec(1, i, score, now))
        delivered = apply_daily_budget(admitted, k, start_time=start)
        return admitted, delivered

    def test_saturated_limiter_thins_the_boundary_burst(self):
        # 10 events land in a 9 ms window opening exactly at the day
        # boundary; at 1 token/sec the refill over 9 ms is negligible,
        # so only the 2-token burst allowance is admitted — and both
        # admitted events open the *new* day's budget (half-open
        # windows).
        admitted, delivered = self.run_burst(
            rate=1.0, burst_at=DAY_SECONDS, n_burst=10
        )
        assert len(admitted) == 2
        assert [r.tweet for r in admitted] == [0, 1]
        assert len(delivered) == 2
        assert all(int(r.time // DAY_SECONDS) == 1 for r in delivered)

    def test_boundary_event_never_counts_against_previous_day(self):
        from repro.serve import TokenBucket

        start = 0.0
        bucket = TokenBucket(rate=1000.0, burst=3.0)
        # Day 0 exhausts its k=2 budget; the boundary-instant event must
        # still deliver because it belongs to day 1.
        times = [DAY_SECONDS - 2.0, DAY_SECONDS - 1.0, DAY_SECONDS]
        admitted = [
            rec(1, i, 0.9, t)
            for i, t in enumerate(times)
            if bucket.try_take(t)
        ]
        assert len(admitted) == 3  # limiter refills between events
        delivered = apply_daily_budget(admitted, 2, start_time=start)
        assert [r.tweet for r in delivered] == [0, 1, 2]

    def test_dry_bucket_refills_across_the_boundary(self):
        from repro.serve import TokenBucket

        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.try_take(DAY_SECONDS - 1.0)  # drains the bucket
        assert not bucket.try_take(DAY_SECONDS - 0.9)  # still dry
        # Crossing the boundary is just elapsed time to the limiter:
        # 1.0s at 2 tokens/sec restores the (capped) single token.
        assert bucket.try_take(DAY_SECONDS)
        assert not bucket.try_take(DAY_SECONDS)

    def test_admitted_subset_obeys_budget_invariants(self):
        # Even when the limiter passes more than k boundary events, the
        # daily budget caps each day window independently.
        admitted, delivered = self.run_burst(
            rate=1000.0, burst_at=DAY_SECONDS, n_burst=8, k=3
        )
        assert len(admitted) > 3
        assert len(delivered) == 3
        assert all(int(r.time // DAY_SECONDS) == 1 for r in delivered)


class TestBudgetMetrics:
    def test_counters_and_span_recorded(self):
        registry = MetricsRegistry()
        candidates = [rec(1, t, 0.5, 10.0 * t) for t in range(4)]
        delivered = apply_daily_budget(
            candidates, 2, start_time=0.0, metrics=registry
        )
        snap = registry.snapshot()
        assert snap["counters"]["budget.candidates"] == 4
        assert snap["counters"]["budget.delivered"] == len(delivered)
        assert snap["counters"]["budget.rejections"] == 4 - len(delivered)
        assert [s["name"] for s in snap["spans"]] == ["budget"]


@given(
    candidates=st.lists(
        st.builds(
            Recommendation,
            user=st.integers(0, 5),
            tweet=st.integers(0, 40),
            score=st.floats(min_value=0.0, max_value=1.0),
            time=st.floats(min_value=0.0, max_value=10 * DAY_SECONDS),
        ),
        max_size=80,
        unique_by=lambda r: (r.user, r.tweet),
    ),
    k=st.integers(min_value=1, max_value=10),
)
def test_budget_invariants(candidates, k):
    """Property: never more than k per user-day; delivered is a subset;
    every delivered rec beats or ties every dropped rec of its user-day."""
    delivered = apply_daily_budget(candidates, k, start_time=0.0)
    assert len(delivered) <= len(candidates)
    key = {(r.user, r.tweet) for r in candidates}
    assert all((r.user, r.tweet) in key for r in delivered)
    per_day: dict[tuple[int, int], list[Recommendation]] = {}
    for r in delivered:
        day = int(r.time // DAY_SECONDS)
        per_day.setdefault((r.user, day), []).append(r)
    for recs in per_day.values():
        assert len(recs) <= k
    delivered_keys = {(r.user, r.tweet) for r in delivered}
    for candidate in candidates:
        if (candidate.user, candidate.tweet) in delivered_keys:
            continue
        day = int(candidate.time // DAY_SECONDS)
        winners = per_day.get((candidate.user, day), [])
        if len(winners) == k:
            # A dropped candidate can never out-score a kept one.
            assert min(w.score for w in winners) >= candidate.score
