"""Tests for repro.eval.budget."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines.base import Recommendation
from repro.eval.budget import DAY_SECONDS, apply_daily_budget
from repro.obs import MetricsRegistry


def rec(user, tweet, score, time):
    return Recommendation(user=user, tweet=tweet, score=score, time=time)


class TestValidation:
    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            apply_daily_budget([], 0, start_time=0.0)

    def test_bad_day_length_rejected(self):
        with pytest.raises(ValueError):
            apply_daily_budget([], 5, start_time=0.0, day_length=0.0)


class TestBudgetSemantics:
    def test_under_budget_all_delivered(self):
        candidates = [rec(1, t, 0.5, 10.0 * t) for t in range(3)]
        delivered = apply_daily_budget(candidates, 5, start_time=0.0)
        assert len(delivered) == 3

    def test_top_k_by_score_within_day(self):
        candidates = [
            rec(1, 0, 0.1, 100.0),
            rec(1, 1, 0.9, 200.0),
            rec(1, 2, 0.5, 300.0),
        ]
        delivered = apply_daily_budget(candidates, 2, start_time=0.0)
        assert {r.tweet for r in delivered} == {1, 2}

    def test_budget_is_per_user(self):
        candidates = [
            rec(1, 0, 0.9, 100.0),
            rec(1, 1, 0.8, 200.0),
            rec(2, 0, 0.1, 100.0),
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=0.0)
        users = sorted(r.user for r in delivered)
        assert users == [1, 2]

    def test_budget_resets_each_day(self):
        candidates = [
            rec(1, 0, 0.9, 100.0),
            rec(1, 1, 0.8, 100.0 + DAY_SECONDS),
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=0.0)
        assert len(delivered) == 2

    def test_day_boundary_from_start_time(self):
        start = 1000.0
        candidates = [
            rec(1, 0, 0.9, start + DAY_SECONDS - 1.0),
            rec(1, 1, 0.8, start + DAY_SECONDS + 1.0),
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=start)
        assert len(delivered) == 2  # the two land in different days

    def test_tie_broken_by_earlier_time(self):
        candidates = [
            rec(1, 5, 0.5, 300.0),
            rec(1, 6, 0.5, 100.0),
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=0.0)
        assert delivered[0].tweet == 6

    def test_output_sorted_chronologically(self):
        candidates = [
            rec(2, 0, 0.9, 500.0),
            rec(1, 1, 0.9, 100.0),
            rec(1, 2, 0.8, 300.0),
        ]
        delivered = apply_daily_budget(candidates, 5, start_time=0.0)
        times = [r.time for r in delivered]
        assert times == sorted(times)

    def test_empty_input(self):
        assert apply_daily_budget([], 3, start_time=0.0) == []


class TestDayBoundary:
    """Exact-boundary audit: days are half-open windows
    ``[start + d*L, start + (d+1)*L)``, so a recommendation stamped at
    *precisely* a day boundary (a midnight-timestamp retweet) belongs to
    the new day and draws on a fresh budget."""

    def test_exact_midnight_opens_the_new_day(self):
        start = 0.0
        candidates = [
            rec(1, 0, 0.9, start + DAY_SECONDS - 1e-3),  # last of day 0
            rec(1, 1, 0.8, start + DAY_SECONDS),  # first of day 1
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=start)
        assert {r.tweet for r in delivered} == {0, 1}

    def test_exact_midnight_competes_in_the_new_day(self):
        # The boundary rec must contend with day-1 candidates, not day-0.
        start = 0.0
        candidates = [
            rec(1, 0, 0.1, start + DAY_SECONDS),  # boundary, low score
            rec(1, 1, 0.9, start + DAY_SECONDS + 10.0),  # day 1, high
            rec(1, 2, 0.9, start + 10.0),  # day 0
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=start)
        assert {r.tweet for r in delivered} == {1, 2}

    def test_start_time_itself_is_day_zero(self):
        delivered = apply_daily_budget(
            [rec(1, 0, 0.9, 5000.0)], 1, start_time=5000.0
        )
        assert len(delivered) == 1

    def test_boundaries_shift_with_start_time(self):
        # With start=0.5*DAY, absolute midnight sits mid-window: both recs
        # share one budget day even though a calendar day flips between.
        start = 0.5 * DAY_SECONDS
        candidates = [
            rec(1, 0, 0.9, DAY_SECONDS - 1.0),
            rec(1, 1, 0.8, DAY_SECONDS + 1.0),
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=start)
        assert len(delivered) == 1

    def test_every_multiple_of_day_length_starts_a_new_window(self):
        start = 250.0
        candidates = [
            rec(1, d, 0.9, start + d * DAY_SECONDS) for d in range(5)
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=start)
        assert len(delivered) == 5  # one fresh budget per boundary

    def test_pre_start_candidates_use_consistent_windows(self):
        # Floor division keeps windows half-open below start_time too:
        # [-L, 0) is day -1, and exactly -L opens day -1, not day -2.
        start = 0.0
        candidates = [
            rec(1, 0, 0.9, -DAY_SECONDS),  # day -1 boundary
            rec(1, 1, 0.8, -1.0),  # still day -1
            rec(1, 2, 0.7, 0.0),  # day 0
        ]
        delivered = apply_daily_budget(candidates, 1, start_time=start)
        assert {r.tweet for r in delivered} == {0, 2}

    def test_custom_day_length_boundary(self):
        start, length = 100.0, 3600.0
        candidates = [
            rec(1, 0, 0.9, start + length - 1e-6),
            rec(1, 1, 0.8, start + length),
        ]
        delivered = apply_daily_budget(
            candidates, 1, start_time=start, day_length=length
        )
        assert len(delivered) == 2


class TestBudgetMetrics:
    def test_counters_and_span_recorded(self):
        registry = MetricsRegistry()
        candidates = [rec(1, t, 0.5, 10.0 * t) for t in range(4)]
        delivered = apply_daily_budget(
            candidates, 2, start_time=0.0, metrics=registry
        )
        snap = registry.snapshot()
        assert snap["counters"]["budget.candidates"] == 4
        assert snap["counters"]["budget.delivered"] == len(delivered)
        assert snap["counters"]["budget.rejections"] == 4 - len(delivered)
        assert [s["name"] for s in snap["spans"]] == ["budget"]


@given(
    candidates=st.lists(
        st.builds(
            Recommendation,
            user=st.integers(0, 5),
            tweet=st.integers(0, 40),
            score=st.floats(min_value=0.0, max_value=1.0),
            time=st.floats(min_value=0.0, max_value=10 * DAY_SECONDS),
        ),
        max_size=80,
        unique_by=lambda r: (r.user, r.tweet),
    ),
    k=st.integers(min_value=1, max_value=10),
)
def test_budget_invariants(candidates, k):
    """Property: never more than k per user-day; delivered is a subset;
    every delivered rec beats or ties every dropped rec of its user-day."""
    delivered = apply_daily_budget(candidates, k, start_time=0.0)
    assert len(delivered) <= len(candidates)
    key = {(r.user, r.tweet) for r in candidates}
    assert all((r.user, r.tweet) in key for r in delivered)
    per_day: dict[tuple[int, int], list[Recommendation]] = {}
    for r in delivered:
        day = int(r.time // DAY_SECONDS)
        per_day.setdefault((r.user, day), []).append(r)
    for recs in per_day.values():
        assert len(recs) <= k
    delivered_keys = {(r.user, r.tweet) for r in delivered}
    for candidate in candidates:
        if (candidate.user, candidate.tweet) in delivered_keys:
            continue
        day = int(candidate.time // DAY_SECONDS)
        winners = per_day.get((candidate.user, day), [])
        if len(winners) == k:
            # A dropped candidate can never out-score a kept one.
            assert min(w.score for w in winners) >= candidate.score
