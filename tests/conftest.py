"""Shared fixtures.

``paper_example`` reconstructs the similarity graph of the paper's
Figure 6 so tests can check Examples 4.3 and 5.1 to the digit.
``small_dataset`` is a session-scoped synthetic corpus small enough for
fast tests but large enough to exhibit the calibrated distributions.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.core.simgraph import SimGraph
from repro.data.builders import DatasetBuilder
from repro.graph.digraph import DiGraph
from repro.synth import SynthConfig, generate_dataset

# Hypothesis profiles: "ci" pins the search to a fixed seed with no
# deadline so the differential/property suites are bit-reproducible across
# runners (select with HYPOTHESIS_PROFILE=ci); "dev" only drops deadlines.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

# Node ids for the paper's Figure 6 example.
U, V, W, X, Y = 0, 1, 2, 3, 4


@pytest.fixture
def paper_example() -> SimGraph:
    """The Figure 6 similarity graph.

    Edges (u -> influential user, weight = similarity):
    u->v (0.3), u->w (0.5), w->x (0.5), w->y (0.1), v->y (0.4),
    x->y (0.8) — wired so Examples 4.3 and 5.1 hold:
    after x shares t1, p(w) = 0.25 and then p(u) = 0.0625.
    """
    graph = DiGraph()
    graph.add_edge(U, V, weight=0.3)
    graph.add_edge(U, W, weight=0.5)
    graph.add_edge(W, X, weight=0.5)
    graph.add_edge(W, Y, weight=0.1)
    graph.add_edge(V, Y, weight=0.4)
    graph.add_edge(X, Y, weight=0.8)
    return SimGraph(graph, tau=0.0)


@pytest.fixture
def tiny_dataset():
    """A hand-built five-user dataset with deterministic co-retweets.

    Follow edges: 0->1->2, 0->3, 4->1.  Tweets by user 1 (t0) and user 2
    (t1); users 0, 3 and 4 retweet t0; users 0 and 3 retweet t1.
    """
    return (
        DatasetBuilder()
        .with_users(5)
        .follow(0, 1)
        .follow(1, 2)
        .follow(0, 3)
        .follow(4, 1)
        .tweet(author=1, at=0.0, tweet_id=0)
        .tweet(author=2, at=100.0, tweet_id=1)
        .retweet(user=0, tweet=0, at=50.0)
        .retweet(user=3, tweet=0, at=60.0)
        .retweet(user=4, tweet=0, at=70.0)
        .retweet(user=0, tweet=1, at=150.0)
        .retweet(user=3, tweet=1, at=160.0)
        .build()
    )


@pytest.fixture(scope="session")
def small_config() -> SynthConfig:
    """Session-wide small synthetic configuration."""
    return SynthConfig(n_users=400, n_communities=6, seed=7)


@pytest.fixture(scope="session")
def small_dataset(small_config):
    """Session-scoped 400-user synthetic corpus (generated once)."""
    return generate_dataset(small_config)
