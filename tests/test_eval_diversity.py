"""Tests for repro.eval.diversity."""

import math

import pytest

from repro.analysis.bubbles import BubbleMap
from repro.baselines.base import Recommendation
from repro.eval.diversity import gini, popularity_gini, user_source_entropy


class TestGini:
    def test_perfect_equality(self):
        assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0, abs=1e-9)

    def test_perfect_inequality_approaches_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini(values) > 0.95

    def test_known_value(self):
        # For [1, 3]: gini = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25
        assert gini([1.0, 3.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1.0, 2.0])

    def test_scale_invariant(self):
        assert gini([1, 2, 3]) == pytest.approx(gini([10, 20, 30]))


class TestPopularityGini:
    def pop(self, tweet):
        return {0: 1, 1: 1, 2: 100}.get(tweet, 0)

    def test_distinct_tweets_counted_once(self):
        recs = [
            Recommendation(1, 0, 0.5, 0.0),
            Recommendation(2, 0, 0.5, 0.0),  # same tweet again
            Recommendation(1, 1, 0.5, 0.0),
        ]
        assert popularity_gini(recs, self.pop) == pytest.approx(0.0, abs=1e-9)

    def test_viral_concentration_scores_high(self):
        recs = [
            Recommendation(1, 0, 0.5, 0.0),
            Recommendation(1, 1, 0.5, 0.0),
            Recommendation(1, 2, 0.5, 0.0),
        ]
        assert popularity_gini(recs, self.pop) > 0.5

    def test_empty(self):
        assert popularity_gini([], self.pop) == 0.0


class TestUserSourceEntropy:
    def bubbles(self):
        return BubbleMap(labels={1: 0, 2: 0, 10: 1, 11: 1, 5: 0})

    def test_single_source_zero_entropy(self):
        recs = [
            Recommendation(5, 100, 0.5, 0.0),
            Recommendation(5, 101, 0.5, 0.0),
        ]
        audience = {100: [1, 2], 101: [1]}  # both from bubble 0
        assert user_source_entropy(recs, self.bubbles(), audience) == 0.0

    def test_two_even_sources_one_bit(self):
        recs = [
            Recommendation(5, 100, 0.5, 0.0),
            Recommendation(5, 200, 0.5, 0.0),
        ]
        audience = {100: [1, 2], 200: [10, 11]}
        entropy = user_source_entropy(recs, self.bubbles(), audience)
        assert entropy == pytest.approx(1.0)

    def test_mean_over_users(self):
        recs = [
            Recommendation(5, 100, 0.5, 0.0),
            Recommendation(5, 200, 0.5, 0.0),
            Recommendation(1, 100, 0.5, 0.0),
        ]
        audience = {100: [1, 2], 200: [10, 11]}
        entropy = user_source_entropy(recs, self.bubbles(), audience)
        assert entropy == pytest.approx((1.0 + 0.0) / 2)

    def test_unattributable_tweets_skipped(self):
        recs = [Recommendation(5, 999, 0.5, 0.0)]
        assert user_source_entropy(recs, self.bubbles(), {}) == 0.0

    def test_majority_origin(self):
        recs = [Recommendation(5, 100, 0.5, 0.0)]
        audience = {100: [1, 2, 10]}  # majority bubble 0
        # Single source -> zero entropy, but must not crash on mixed
        # audiences.
        assert user_source_entropy(recs, self.bubbles(), audience) == 0.0
