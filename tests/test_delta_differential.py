"""Differential harness for the delta maintenance engine.

Pins the exactness contract of :mod:`repro.core.delta` and the scoped
strategy variants of :mod:`repro.core.update`:

* ``delta`` produces the *same edge set* as ``from scratch`` with
  weights equal within 1e-12 (fringe pairs are accumulated from the
  other side of the symmetric measure), on both build backends, with
  and without a row cap;
* ``SimGraph updated scoped`` matches the full weight rescan;
* ``crossfold scoped`` is an edge-subset of the full crossfold with
  equal weights on shared edges and bit-equal rows for affected
  sources;
* an empty delta is the identity (same object, no work);
* the service's ``delta`` rebuild agrees with a from-scratch service on
  both propagation backends.

Property-based cases draw random contiguous slices of the held-out
stream (run under ``HYPOTHESIS_PROFILE=ci`` in CI for reproducibility).
"""

from __future__ import annotations

import functools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RetweetProfiles, SimGraphBuilder
from repro.core.update import (
    apply_strategy,
    crossfold,
    crossfold_scoped,
    update_weights,
    update_weights_scoped,
)
from repro.data import temporal_split
from repro.service import RecommendationService, ServiceConfig
from repro.synth import SynthConfig, generate_dataset

TAU = 0.001

#: Absolute tolerance for weights computed by a different accumulation
#: order (fringe-side vs row-side walks of the same sum).
WEIGHT_ATOL = 1e-12


@functools.lru_cache(maxsize=None)
def corpus():
    """(dataset, split) for a small synthetic corpus, built once."""
    dataset = generate_dataset(SynthConfig(n_users=150, n_communities=4, seed=23))
    return dataset, temporal_split(dataset)


@functools.lru_cache(maxsize=None)
def old_graph(backend: str, max_influencers: int | None = None):
    """The pre-delta SimGraph built on the train slice."""
    dataset, split = corpus()
    builder = SimGraphBuilder(
        tau=TAU, backend=backend, max_influencers=max_influencers
    )
    return builder.build(
        dataset.follow_graph, RetweetProfiles(split.train)
    ), builder


def edge_map(simgraph):
    return {(u, v): w for u, v, w in simgraph.graph.edges()}


def assert_same_edges(actual, expected, atol=WEIGHT_ATOL):
    actual_edges, expected_edges = edge_map(actual), edge_map(expected)
    assert set(actual_edges) == set(expected_edges)
    for pair, weight in actual_edges.items():
        assert weight == pytest.approx(expected_edges[pair], abs=atol)


def held_out_slice(count: int):
    """The first ``count`` events of the held-out stream."""
    _, split = corpus()
    return split.test[:count]


class TestDeltaMatchesFromScratch:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_exact_on_stream_slice(self, backend):
        dataset, split = corpus()
        old, _ = old_graph(backend)
        extra = held_out_slice(120)
        refreshed = apply_strategy(
            "delta", old, dataset.follow_graph, split.train, extra
        )
        full = apply_strategy(
            "from scratch", old, dataset.follow_graph, split.train, extra
        )
        assert_same_edges(refreshed, full)
        assert set(refreshed.graph.nodes()) == set(full.graph.nodes())

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_exact_with_row_cap(self, backend):
        dataset, split = corpus()
        old, builder = old_graph(backend, max_influencers=5)
        extra = held_out_slice(80)
        refreshed = apply_strategy(
            "delta", old, dataset.follow_graph, split.train, extra,
            builder=builder,
        )
        full = apply_strategy(
            "from scratch", old, dataset.follow_graph, split.train, extra,
            builder=builder,
        )
        assert_same_edges(refreshed, full)

    def test_build_backends_agree_after_delta(self):
        dataset, split = corpus()
        extra = held_out_slice(120)
        results = {}
        for backend in ("reference", "vectorized"):
            old, _ = old_graph(backend)
            results[backend] = apply_strategy(
                "delta", old, dataset.follow_graph, split.train, extra
            )
        assert_same_edges(results["vectorized"], results["reference"])

    def test_empty_delta_is_identity(self):
        dataset, split = corpus()
        old, _ = old_graph("reference")
        refreshed = apply_strategy(
            "delta", old, dataset.follow_graph, split.train, []
        )
        assert refreshed is old


class TestScopedStrategies:
    def test_update_weights_scoped_matches_full(self):
        dataset, split = corpus()
        old, builder = old_graph("reference")
        profiles = RetweetProfiles(split.train)
        profiles.mark_clean()
        profiles.extend(held_out_slice(120))
        scoped = update_weights_scoped(
            old, dataset.follow_graph, profiles, builder
        )
        full = update_weights(old, dataset.follow_graph, profiles, builder)
        assert_same_edges(scoped, full)
        assert set(scoped.graph.nodes()) == set(full.graph.nodes())

    def test_crossfold_scoped_subset_of_full(self):
        dataset, split = corpus()
        old, builder = old_graph("reference")
        profiles = RetweetProfiles(split.train)
        profiles.mark_clean()
        profiles.extend(held_out_slice(120))
        scoped = crossfold_scoped(old, dataset.follow_graph, profiles, builder)
        full = crossfold(old, dataset.follow_graph, profiles, builder)
        scoped_edges, full_edges = edge_map(scoped), edge_map(full)
        assert set(scoped_edges) <= set(full_edges)
        for pair, weight in scoped_edges.items():
            assert weight == pytest.approx(full_edges[pair], abs=WEIGHT_ATOL)

    def test_crossfold_scoped_rebuilds_affected_rows_exactly(self):
        from repro.core.delta import affected_region

        dataset, split = corpus()
        old, builder = old_graph("reference")
        profiles = RetweetProfiles(split.train)
        profiles.mark_clean()
        profiles.extend(held_out_slice(120))
        plan = affected_region(profiles, old.graph, hops=builder.hops)
        scoped = crossfold_scoped(old, dataset.follow_graph, profiles, builder)
        full = crossfold(old, dataset.follow_graph, profiles, builder)
        for source in sorted(plan.affected):
            if source in old.graph:
                assert scoped.row(source) == full.row(source)

    def test_scoped_strategies_empty_delta_identity(self):
        dataset, split = corpus()
        old, builder = old_graph("reference")
        profiles = RetweetProfiles(split.train)
        profiles.mark_clean()
        assert update_weights_scoped(
            old, dataset.follow_graph, profiles, builder
        ) is old
        assert crossfold_scoped(
            old, dataset.follow_graph, profiles, builder
        ) is old


@settings(max_examples=12, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=150),
    length=st.integers(min_value=0, max_value=80),
)
def test_delta_matches_from_scratch_on_random_slices(start, length):
    """Property: any contiguous slice of the held-out stream, absorbed
    as a delta, reproduces the from-scratch graph."""
    dataset, split = corpus()
    old, _ = old_graph("reference")
    extra = split.test[start : start + length]
    refreshed = apply_strategy(
        "delta", old, dataset.follow_graph, split.train, extra
    )
    full = apply_strategy(
        "from scratch", old, dataset.follow_graph, split.train, extra
    )
    assert_same_edges(refreshed, full)


def replay_service(rebuild_strategy: str, prop_backend: str):
    """Drive a service through a fixed stream with periodic rebuilds."""
    dataset, split = corpus()
    service = RecommendationService(ServiceConfig(
        tau=TAU,
        rebuild_strategy=rebuild_strategy,
        prop_backend=prop_backend,
        rebuild_interval=6 * 3600.0,
        use_scheduler=False,
        min_score=1e-6,
    ))
    for u, v, _ in dataset.follow_graph.edges():
        service.add_follow(u, v)
    for event in split.train:
        service.profiles.add(event.user, event.tweet)
        service._retweeters.setdefault(event.tweet, set()).add(event.user)
        service._known.add((event.user, event.tweet))
    tweets = sorted(
        dataset.tweets.values(), key=lambda t: (t.created_at, t.id)
    )
    base = split.test[0].time if split.test else 0.0
    for tweet in tweets:
        service.post_tweet(
            tweet_id=tweet.id, author=tweet.author,
            at=min(tweet.created_at, base),
        )
    hits = []
    for event in split.test[:120]:
        for rec in service.retweet(user=event.user, tweet=event.tweet,
                                   at=event.time):
            hits.append((rec.user, rec.tweet))
    return service, sorted(hits)


class TestServiceDelta:
    @pytest.fixture(scope="class")
    def streams(self):
        results = {}
        for strategy in ("from scratch", "delta"):
            for prop in ("reference", "csr"):
                results[(strategy, prop)] = replay_service(strategy, prop)
        return results

    def test_delta_service_matches_from_scratch(self, streams):
        service_full, hits_full = streams[("from scratch", "reference")]
        service_delta, hits_delta = streams[("delta", "reference")]
        assert hits_delta == hits_full
        assert_same_edges(service_delta.simgraph, service_full.simgraph)

    def test_prop_backends_agree_under_delta(self, streams):
        _, hits_ref = streams[("delta", "reference")]
        _, hits_csr = streams[("delta", "csr")]
        assert hits_csr == hits_ref

    def test_delta_rebuilds_actually_ran(self, streams):
        service, _ = streams[("delta", "reference")]
        counters = service.metrics_snapshot()["counters"]
        assert counters.get("service.rebuild[delta]", 0) > 0
        assert counters.get("maintenance.dirty_users", 0) > 0
