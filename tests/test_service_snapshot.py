"""Service warm-boot from persisted SimGraph snapshots."""

from __future__ import annotations

import pytest

from repro.core.persistence import save_simgraph
from repro.exceptions import DatasetError
from repro.service import RecommendationService, ServiceConfig

DAY = 86400.0


def built_service(**config_kwargs) -> RecommendationService:
    """A service with co-retweet history and a freshly built SimGraph."""
    defaults = {"use_scheduler": False, "min_score": 1e-6}
    defaults.update(config_kwargs)
    service = RecommendationService(ServiceConfig(**defaults))
    for user in range(5):
        service.add_user(user)
    for a, b in [(0, 1), (1, 2), (2, 0), (1, 0), (2, 1), (0, 2)]:
        service.add_follow(a, b)
    service.post_tweet(tweet_id=100, author=3, at=0.0)
    service.post_tweet(tweet_id=101, author=3, at=1.0)
    at = 10.0
    for tid in (100, 101):
        for user in (0, 1, 2):
            service.retweet(user=user, tweet=tid, at=at)
            at += 1.0
    service.rebuild("from scratch")
    return service


@pytest.mark.parametrize("format", [1, 2])
@pytest.mark.parametrize("prop_backend", ["reference", "csr"])
def test_loaded_service_recommends_like_builder(
    tmp_path, format, prop_backend
):
    """A fresh instance booted from a snapshot emits the notifications
    the original (built) instance would."""
    if format == 1 and prop_backend == "csr":
        pytest.skip("redundant combination")
    source = built_service(prop_backend=prop_backend)
    path = save_simgraph(source.simgraph, tmp_path / "g.snap", format=format)

    target = built_service(prop_backend=prop_backend)
    target.load_snapshot(path, mmap=(format == 2))

    source.post_tweet(tweet_id=200, author=3, at=500.0)
    target.post_tweet(tweet_id=200, author=3, at=500.0)
    a = source.retweet(user=0, tweet=200, at=600.0)
    b = target.retweet(user=0, tweet=200, at=600.0)
    assert [(r.user, r.tweet) for r in a] == [(r.user, r.tweet) for r in b]
    assert {
        (r.user, round(r.score, 12)) for r in a
    } == {(r.user, round(r.score, 12)) for r in b}


def test_load_counts_as_rebuild(tmp_path):
    source = built_service()
    path = save_simgraph(source.simgraph, tmp_path / "g.snap", format=2)

    service = RecommendationService(
        ServiceConfig(use_scheduler=False, min_score=1e-6)
    )
    for user in range(5):
        service.add_user(user)
    rebuilds_before = service.stats.rebuilds
    loaded = service.load_snapshot(path)
    assert service.stats.rebuilds == rebuilds_before + 1
    assert service.simgraph is loaded
    # The next events must not trigger an immediate from-scratch rebuild
    # that would wipe the loaded graph.
    service.post_tweet(tweet_id=1, author=0, at=10.0)
    service.retweet(user=1, tweet=1, at=20.0)
    assert service.simgraph is loaded
    # ... but once profiles hold data, a rebuild eventually falls due.
    service.post_tweet(tweet_id=2, author=0, at=10.0 + 8 * DAY)
    assert service.stats.rebuilds == rebuilds_before + 2


def test_mmap_loaded_graph_survives_maintenance(tmp_path):
    """Read-only mapped arrays force a recompile (not an in-place patch)
    at the next rebuild; the service keeps working."""
    source = built_service(prop_backend="csr")
    path = save_simgraph(source.simgraph, tmp_path / "g.snap", format=2)
    service = built_service(prop_backend="csr")
    service.load_snapshot(path, mmap=True)
    service.retweet(user=0, tweet=101, at=700.0)
    refreshed = service.rebuild("from scratch")
    assert refreshed.node_count > 0
    service.post_tweet(tweet_id=300, author=3, at=800.0)
    service.retweet(user=1, tweet=300, at=900.0)


def test_missing_snapshot_raises(tmp_path):
    service = built_service()
    with pytest.raises(DatasetError, match="does not exist"):
        service.load_snapshot(tmp_path / "nope.snap")
