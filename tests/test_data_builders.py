"""Tests for repro.data.builders."""

import pytest

from repro.data.builders import DatasetBuilder
from repro.exceptions import DatasetError


class TestDatasetBuilder:
    def test_with_users_sequential_ids(self):
        ds = DatasetBuilder().with_users(3).build()
        assert sorted(ds.users) == [0, 1, 2]

    def test_with_users_appends(self):
        ds = DatasetBuilder().with_users(2).with_users(2, community=1).build()
        assert sorted(ds.users) == [0, 1, 2, 3]
        assert ds.users[3].community == 1

    def test_explicit_user(self):
        ds = DatasetBuilder().user(7, community=2).build()
        assert ds.users[7].community == 2

    def test_follow_chain(self):
        ds = DatasetBuilder().with_users(4).follow_chain(0, 1, 2, 3).build()
        assert ds.followees(0) == [1]
        assert ds.followees(2) == [3]

    def test_tweet_auto_ids(self):
        ds = (
            DatasetBuilder()
            .with_users(1)
            .tweet(author=0, at=0.0)
            .tweet(author=0, at=1.0)
            .build()
        )
        assert sorted(ds.tweets) == [0, 1]

    def test_tweet_explicit_id_advances_counter(self):
        ds = (
            DatasetBuilder()
            .with_users(1)
            .tweet(author=0, at=0.0, tweet_id=10)
            .tweet(author=0, at=1.0)
            .build()
        )
        assert sorted(ds.tweets) == [10, 11]

    def test_invalid_retweet_propagates(self):
        builder = DatasetBuilder().with_users(1).tweet(author=0, at=100.0)
        with pytest.raises(DatasetError):
            builder.retweet(user=0, tweet=0, at=50.0)

    def test_build_validates(self, tiny_dataset):
        # The conftest fixture itself exercises build(); just confirm state.
        assert tiny_dataset.popularity(0) == 3
