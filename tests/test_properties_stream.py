"""Cross-cutting property tests on the streaming pipeline.

These tie several subsystems together under hypothesis-generated inputs:
the scheduler must conserve events, warm-started propagation must agree
with cold runs on arbitrary graphs and seed sequences, and the round-trip
dataset IO must be lossless for arbitrary small corpora.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.propagation import PropagationEngine
from repro.core.scheduler import DelayPolicy, PostponedScheduler
from repro.core.simgraph import SimGraph
from repro.data.dataset import TwitterDataset
from repro.data.io import load_dataset, save_dataset
from repro.data.models import Retweet, Tweet, User
from repro.graph.digraph import DiGraph


# ----------------------------------------------------------------------
# Scheduler conservation
# ----------------------------------------------------------------------
@st.composite
def retweet_stream(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10_000.0),
                min_size=n,
                max_size=n,
            )
        )
    )
    events = []
    for i, t in enumerate(times):
        user = draw(st.integers(0, 10))
        tweet = draw(st.integers(0, 5))
        events.append(Retweet(user=user, tweet=tweet, time=t))
    return events


@settings(max_examples=60, deadline=None)
@given(retweet_stream())
def test_scheduler_conserves_every_event(events):
    """Property: every offered retweet appears in exactly one task."""
    scheduler = PostponedScheduler(
        DelayPolicy(scale=500.0, min_delay=10.0, max_delay=1000.0)
    )
    emitted: list[tuple[int, int]] = []
    for event in events:
        for task in scheduler.offer(event):
            emitted.extend((task.tweet, user) for user in task.users)
    for task in scheduler.flush():
        emitted.extend((task.tweet, user) for user in task.users)
    expected = [(e.tweet, e.user) for e in events]
    assert sorted(emitted) == sorted(expected)


@settings(max_examples=40, deadline=None)
@given(retweet_stream())
def test_scheduler_tasks_due_in_order(events):
    """Property: released tasks have non-decreasing due times per offer."""
    scheduler = PostponedScheduler(
        DelayPolicy(scale=500.0, min_delay=10.0, max_delay=1000.0)
    )
    last_due = float("-inf")
    for event in events:
        for task in scheduler.offer(event):
            assert task.due_time <= event.time
            assert task.due_time >= last_due
            last_due = task.due_time


# ----------------------------------------------------------------------
# Warm-start equivalence
# ----------------------------------------------------------------------
@st.composite
def graph_and_seed_batches(draw):
    n = draw(st.integers(min_value=3, max_value=9))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.05, max_value=0.9),
            ).filter(lambda e: e[0] != e[1]),
            max_size=25,
        )
    )
    graph = DiGraph()
    graph.add_nodes(range(n))
    for u, v, w in edges:
        graph.add_edge(u, v, weight=w)
    batches = draw(
        st.lists(
            st.sets(st.integers(0, n - 1), min_size=1, max_size=3),
            min_size=1,
            max_size=4,
        )
    )
    return SimGraph(graph, tau=0.0), batches


@settings(max_examples=50, deadline=None)
@given(graph_and_seed_batches())
def test_incremental_propagation_matches_cold(data):
    """Property: growing the seed set incrementally (warm starts) lands on
    the same fixpoint as one cold propagation with all seeds."""
    simgraph, batches = data
    engine = PropagationEngine(simgraph)
    seeds: set[int] = set()
    warm: dict[int, float] | None = None
    for batch in batches:
        seeds |= batch
        result = engine.propagate(seeds, initial=warm)
        warm = result.probabilities
    cold = engine.propagate(seeds).probabilities
    assert warm is not None
    for user in set(cold) | set(warm):
        assert warm.get(user, 0.0) == pytest.approx(
            cold.get(user, 0.0), abs=1e-7
        )


# ----------------------------------------------------------------------
# Dataset IO round-trip
# ----------------------------------------------------------------------
@st.composite
def tiny_corpus(draw):
    n_users = draw(st.integers(min_value=1, max_value=6))
    dataset = TwitterDataset()
    for user_id in range(n_users):
        dataset.add_user(User(id=user_id, community=user_id % 2))
    follows = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_users - 1), st.integers(0, n_users - 1)
            ).filter(lambda e: e[0] != e[1]),
            max_size=10,
            unique=True,
        )
    )
    for follower, followee in follows:
        dataset.add_follow(follower, followee)
    n_tweets = draw(st.integers(min_value=0, max_value=5))
    for tweet_id in range(n_tweets):
        dataset.add_tweet(
            Tweet(id=tweet_id, author=draw(st.integers(0, n_users - 1)),
                  created_at=float(tweet_id))
        )
    if n_tweets:
        retweets = draw(
            st.lists(
                st.tuples(
                    st.integers(0, n_users - 1),
                    st.integers(0, n_tweets - 1),
                    st.floats(min_value=10.0, max_value=100.0),
                ),
                max_size=15,
            )
        )
        for user, tweet, at in retweets:
            dataset.add_retweet(Retweet(user=user, tweet=tweet, time=at))
    return dataset


@settings(max_examples=30, deadline=None)
@given(tiny_corpus())
def test_io_round_trip_lossless(tmp_path_factory, dataset):
    """Property: save -> load preserves all entities and indexes."""
    path = tmp_path_factory.mktemp("roundtrip")
    save_dataset(dataset, path / "ds")
    loaded = load_dataset(path / "ds")
    assert loaded.user_count == dataset.user_count
    assert loaded.tweet_count == dataset.tweet_count
    assert loaded.retweets() == dataset.retweets()
    assert sorted(loaded.follow_graph.edges()) == sorted(
        dataset.follow_graph.edges()
    )
    for user in dataset.users:
        assert loaded.profile(user) == dataset.profile(user)
    loaded.validate()
