"""Tests for repro.core.similarity (paper Definition 3.1)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.profiles import RetweetProfiles
from repro.core.similarity import (
    pairwise_similarities,
    similarities_from,
    similarity,
)


def profiles_from(pairs) -> RetweetProfiles:
    profiles = RetweetProfiles()
    for user, tweet in pairs:
        profiles.add(user, tweet)
    return profiles


class TestSimilarity:
    def test_definition_3_1_by_hand(self):
        # L1 = {a, b}, L2 = {a, c}; m(a) = 2 via both users.
        profiles = profiles_from([(1, "a"), (1, "b"), (2, "a"), (2, "c")])
        expected = (1.0 / math.log(3)) / 3  # one common tweet, union of 3
        assert similarity(profiles, 1, 2) == pytest.approx(expected)

    def test_symmetry(self):
        profiles = profiles_from([(1, "a"), (1, "b"), (2, "a")])
        assert similarity(profiles, 1, 2) == similarity(profiles, 2, 1)

    def test_self_similarity_zero(self):
        profiles = profiles_from([(1, "a")])
        assert similarity(profiles, 1, 1) == 0.0

    def test_disjoint_profiles_zero(self):
        profiles = profiles_from([(1, "a"), (2, "b")])
        assert similarity(profiles, 1, 2) == 0.0

    def test_empty_profile_zero(self):
        profiles = profiles_from([(1, "a")])
        assert similarity(profiles, 1, 99) == 0.0

    def test_identical_profiles_maximal(self):
        profiles = profiles_from(
            [(1, "a"), (1, "b"), (2, "a"), (2, "b"), (3, "a"), (3, "c")]
        )
        assert similarity(profiles, 1, 2) > similarity(profiles, 1, 3)

    def test_popular_common_tweet_weighs_less(self):
        # Pair (1,2) shares a niche tweet; pair (3,4) shares a viral one.
        pairs = [(1, "niche"), (2, "niche")]
        pairs += [(u, "viral") for u in range(3, 40)]
        profiles = profiles_from(pairs)
        assert similarity(profiles, 1, 2) > similarity(profiles, 3, 4)

    def test_bounded_below_one(self):
        profiles = profiles_from([(1, "a"), (2, "a")])
        assert 0.0 < similarity(profiles, 1, 2) < 1.0


class TestSimilaritiesFrom:
    def test_matches_pairwise_calls(self):
        profiles = profiles_from(
            [(1, "a"), (1, "b"), (2, "a"), (3, "b"), (3, "c"), (4, "z")]
        )
        scores = similarities_from(profiles, 1)
        assert set(scores) == {2, 3}
        for v, score in scores.items():
            assert score == pytest.approx(similarity(profiles, 1, v))

    def test_candidate_restriction(self):
        profiles = profiles_from([(1, "a"), (2, "a"), (3, "a")])
        scores = similarities_from(profiles, 1, candidates={2})
        assert set(scores) == {2}

    def test_empty_profile_empty_result(self):
        profiles = profiles_from([(1, "a")])
        assert similarities_from(profiles, 99) == {}

    def test_excludes_self(self):
        profiles = profiles_from([(1, "a"), (2, "a")])
        assert 1 not in similarities_from(profiles, 1)


class TestPairwiseSimilarities:
    def test_canonical_ordering(self):
        profiles = profiles_from([(1, "a"), (2, "a"), (3, "a")])
        scores = pairwise_similarities(profiles)
        assert set(scores) == {(1, 2), (1, 3), (2, 3)}

    def test_restricted_pool(self):
        profiles = profiles_from([(1, "a"), (2, "a"), (3, "a")])
        scores = pairwise_similarities(profiles, users=[1, 2])
        assert set(scores) == {(1, 2)}

    def test_values_match_direct(self):
        profiles = profiles_from(
            [(1, "a"), (1, "b"), (2, "a"), (2, "c"), (3, "b")]
        )
        for (u, v), score in pairwise_similarities(profiles).items():
            assert score == pytest.approx(similarity(profiles, u, v))

    def test_each_pair_accumulated_once(self, monkeypatch):
        """Regression: one walk per user over a candidate set built once
        — not a fresh ``{v in pool : v > u}`` set per user, which made
        the pool filtering itself quadratic."""
        import importlib

        module = importlib.import_module("repro.core.similarity")
        calls: list[tuple[int, object]] = []
        original = module.similarities_from

        def recording(profiles, u, candidates=None):
            calls.append((u, candidates))
            return original(profiles, u, candidates=candidates)

        monkeypatch.setattr(module, "similarities_from", recording)
        profiles = profiles_from(
            [(1, "a"), (2, "a"), (3, "a"), (4, "a"), (5, "b")]
        )
        scores = module.pairwise_similarities(profiles)
        assert set(scores) == {(u, v) for u in range(1, 5) for v in range(u + 1, 5)}
        # One walk per pool member, every walk sharing one candidate
        # object (None = the whole pool when users is unspecified).
        assert sorted(u for u, _ in calls) == [1, 2, 3, 4, 5]
        assert all(candidates is None for _, candidates in calls)
        restricted = module.pairwise_similarities(profiles, users=[1, 2, 3])
        shared = [c for u, c in calls if c is not None]
        assert set(restricted) == {(1, 2), (1, 3), (2, 3)}
        assert all(c is shared[0] for c in shared)
        assert shared[0] == {1, 2, 3}


@st.composite
def retweet_corpus(draw):
    n_users = draw(st.integers(min_value=2, max_value=8))
    n_tweets = draw(st.integers(min_value=1, max_value=10))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_users - 1), st.integers(0, n_tweets - 1)
            ),
            max_size=60,
        )
    )
    return pairs


@settings(max_examples=80)
@given(retweet_corpus())
def test_similarity_properties(pairs):
    """Property: Def. 3.1 is symmetric, bounded to [0, 1), zero on self."""
    profiles = profiles_from(pairs)
    users = sorted(profiles.users()) or [0]
    for u in users:
        assert similarity(profiles, u, u) == 0.0
        for v in users:
            s_uv = similarity(profiles, u, v)
            assert 0.0 <= s_uv < 1.0
            assert s_uv == pytest.approx(similarity(profiles, v, u))


@settings(max_examples=60)
@given(retweet_corpus())
def test_similarities_from_is_exhaustive(pairs):
    """Property: the inverted-index scan finds exactly the non-zero pairs."""
    profiles = profiles_from(pairs)
    users = sorted(profiles.users())
    for u in users:
        scores = similarities_from(profiles, u)
        for v in users:
            if v == u:
                continue
            direct = similarity(profiles, u, v)
            if direct > 0:
                assert scores[v] == pytest.approx(direct)
            else:
                assert v not in scores
