"""Tests for repro.core.coldstart (§4.1 cold-start sketch)."""

import pytest

from repro.core.coldstart import ColdStartAugmenter
from repro.core.recommender import SimGraphRecommender
from repro.data.builders import DatasetBuilder
from repro.data.models import Retweet


def cold_world():
    """Users 0-2 co-retweet (warm); user 5 never retweets but follows 0.

    User 6 is cold and follows nobody — unreachable by borrowing.
    """
    builder = DatasetBuilder().with_users(7)
    builder.follow(5, 0)
    builder.follow_chain(0, 1, 2)
    builder.follow(1, 0)
    builder.follow(2, 0)
    for tid in (0, 1):
        builder.tweet(author=4, at=float(tid), tweet_id=tid)
    builder.tweet(author=4, at=100.0, tweet_id=10)
    train = []
    for tid in (0, 1):
        for user in (0, 1, 2):
            at = 5.0 + tid + user
            builder.retweet(user=user, tweet=tid, at=at)
            train.append(Retweet(user, tid, at))
    return builder.build(), train


@pytest.fixture
def fitted():
    dataset, train = cold_world()
    recommender = SimGraphRecommender(tau=0.0)
    recommender.fit(dataset, train)
    return dataset, train, recommender


class TestConstruction:
    def test_requires_fitted_recommender(self, fitted):
        dataset, _, _ = fitted
        with pytest.raises(ValueError):
            ColdStartAugmenter(SimGraphRecommender(), dataset)

    def test_damping_validated(self, fitted):
        dataset, _, recommender = fitted
        with pytest.raises(ValueError):
            ColdStartAugmenter(recommender, dataset, damping=0.0)

    def test_auto_detects_cold_users(self, fitted):
        dataset, _, recommender = fitted
        augmenter = ColdStartAugmenter(recommender, dataset)
        assert augmenter.is_cold(5)
        assert augmenter.is_cold(6)
        assert not augmenter.is_cold(0)

    def test_warm_users_excluded_from_explicit_set(self, fitted):
        dataset, _, recommender = fitted
        augmenter = ColdStartAugmenter(recommender, dataset, cold_users={0, 5})
        assert not augmenter.is_cold(0)
        assert augmenter.is_cold(5)


class TestBorrowing:
    def test_cold_user_receives_borrowed_recs(self, fitted):
        dataset, _, recommender = fitted
        augmenter = ColdStartAugmenter(recommender, dataset)
        recs = augmenter.on_event(Retweet(user=1, tweet=10, time=110.0))
        users = {r.user for r in recs}
        # User 0 (followee of 5) is recommended tweet 10 directly, so the
        # cold user 5 inherits it.
        assert 0 in users
        assert 5 in users

    def test_unreachable_cold_user_gets_nothing(self, fitted):
        dataset, _, recommender = fitted
        augmenter = ColdStartAugmenter(recommender, dataset)
        recs = augmenter.on_event(Retweet(user=1, tweet=10, time=110.0))
        assert all(r.user != 6 for r in recs)

    def test_borrowed_scores_damped(self, fitted):
        dataset, _, recommender = fitted
        augmenter = ColdStartAugmenter(recommender, dataset, damping=0.5)
        recs = augmenter.on_event(Retweet(user=1, tweet=10, time=110.0))
        direct = {r.user: r.score for r in recs if r.user == 0}
        borrowed = {r.user: r.score for r in recs if r.user == 5}
        assert borrowed[5] == pytest.approx(0.5 * direct[0])

    def test_direct_output_untouched(self, fitted):
        dataset, train, _ = fitted
        plain = SimGraphRecommender(tau=0.0)
        plain.fit(dataset, train)
        augmented = ColdStartAugmenter(plain, dataset)
        event = Retweet(user=1, tweet=10, time=110.0)

        reference = SimGraphRecommender(tau=0.0)
        reference.fit(dataset, train)
        expected = {(r.user, r.score) for r in reference.on_event(event)}
        got = {
            (r.user, r.score)
            for r in augmented.on_event(event)
            if not augmented.is_cold(r.user)
        }
        assert got == expected

    def test_event_author_never_borrows_own_share(self, fitted):
        dataset, _, recommender = fitted
        augmenter = ColdStartAugmenter(recommender, dataset, cold_users={5})
        recs = augmenter.on_event(Retweet(user=5, tweet=10, time=110.0))
        assert all(r.user != 5 for r in recs)

    def test_coverage(self, fitted):
        dataset, _, recommender = fitted
        augmenter = ColdStartAugmenter(recommender, dataset,
                                       cold_users={5, 6})
        # User 5 follows user 0 (reachable); user 6 follows nobody.
        assert augmenter.coverage() == pytest.approx(0.5)

    def test_coverage_without_cold_users(self, fitted):
        dataset, _, recommender = fitted
        augmenter = ColdStartAugmenter(recommender, dataset, cold_users=set())
        assert augmenter.coverage() == 1.0
