"""Tests for repro.graph.communities."""

import pytest

from repro.graph.communities import label_propagation_communities, modularity
from repro.graph.digraph import DiGraph


def two_cliques(bridge: bool = True) -> DiGraph:
    """Two directed 4-cliques, optionally connected by a single edge."""
    g = DiGraph()
    for base in (0, 10):
        members = [base + i for i in range(4)]
        for u in members:
            for v in members:
                if u != v:
                    g.add_edge(u, v)
    if bridge:
        g.add_edge(0, 10)
    return g


class TestLabelPropagation:
    def test_two_cliques_separated(self):
        labels = label_propagation_communities(two_cliques(), seed=0)
        first = {labels[i] for i in range(4)}
        second = {labels[10 + i] for i in range(4)}
        assert len(first) == 1
        assert len(second) == 1
        assert first != second

    def test_labels_dense_from_zero(self):
        labels = label_propagation_communities(two_cliques(), seed=0)
        values = set(labels.values())
        assert values == set(range(len(values)))

    def test_largest_community_is_label_zero(self):
        g = two_cliques(bridge=False)
        g.add_edge(20, 21)  # a tiny 2-node community
        g.add_edge(21, 20)
        labels = label_propagation_communities(g, seed=0)
        sizes = {}
        for label in labels.values():
            sizes[label] = sizes.get(label, 0) + 1
        assert sizes[0] == max(sizes.values())

    def test_isolated_nodes_keep_own_community(self):
        g = DiGraph()
        g.add_nodes([1, 2, 3])
        labels = label_propagation_communities(g, seed=0)
        assert len(set(labels.values())) == 3

    def test_empty_graph(self):
        assert label_propagation_communities(DiGraph(), seed=0) == {}

    def test_deterministic_under_seed(self):
        g = two_cliques()
        a = label_propagation_communities(g, seed=5)
        b = label_propagation_communities(g, seed=5)
        assert a == b

    def test_recovers_planted_communities(self, small_dataset):
        """On the synthetic follow graph, detected communities must align
        with the generator's planted ones better than chance."""
        labels = label_propagation_communities(
            small_dataset.follow_graph, seed=0
        )
        planted = {u.id: u.community for u in small_dataset.users.values()}
        # Agreement measured as the fraction of co-community pairs of the
        # detected partition that are also co-community in the planted
        # one, over a sample of edges.
        agree = total = 0
        for u, v, _ in small_dataset.follow_graph.edges():
            if labels[u] == labels[v]:
                total += 1
                if planted[u] == planted[v]:
                    agree += 1
        if total:
            assert agree / total > 0.5


class TestModularity:
    def test_good_partition_positive(self):
        g = two_cliques()
        labels = {i: 0 for i in range(4)}
        labels.update({10 + i: 1 for i in range(4)})
        assert modularity(g, labels) > 0.3

    def test_single_community_zero(self):
        g = two_cliques()
        labels = {node: 0 for node in g.nodes()}
        assert modularity(g, labels) == pytest.approx(0.0, abs=1e-9)

    def test_empty_graph_zero(self):
        assert modularity(DiGraph(), {}) == 0.0

    def test_detected_beats_random(self, small_dataset):
        import numpy as np

        g = small_dataset.follow_graph
        detected = label_propagation_communities(g, seed=0)
        rng = np.random.default_rng(0)
        n_labels = max(len(set(detected.values())), 2)
        random_labels = {
            node: int(rng.integers(n_labels)) for node in g.nodes()
        }
        assert modularity(g, detected) > modularity(g, random_labels)
