"""Tests for repro.data.models."""

import pytest

from repro.data.models import ActivityClass, Retweet, Tweet, User


class TestUser:
    def test_defaults(self):
        user = User(id=3)
        assert user.community == 0
        assert user.interests == ()

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            User(id=-1)

    def test_interests_stored(self):
        user = User(id=0, interests=(0.5, 0.5))
        assert sum(user.interests) == pytest.approx(1.0)


class TestTweet:
    def test_defaults(self):
        tweet = Tweet(id=1, author=2, created_at=10.0)
        assert tweet.topic == -1

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Tweet(id=-5, author=0, created_at=0.0)


class TestRetweet:
    def test_immutable(self):
        retweet = Retweet(user=1, tweet=2, time=3.0)
        with pytest.raises(AttributeError):
            retweet.time = 4.0  # type: ignore[misc]

    def test_equality(self):
        assert Retweet(1, 2, 3.0) == Retweet(1, 2, 3.0)


class TestActivityClass:
    def test_paper_thresholds(self):
        # Paper §6.1: <100 low, 100-1000 moderate, >1000 intensive.
        assert ActivityClass.classify(0) == ActivityClass.LOW
        assert ActivityClass.classify(99) == ActivityClass.LOW
        assert ActivityClass.classify(100) == ActivityClass.MODERATE
        assert ActivityClass.classify(999) == ActivityClass.MODERATE
        assert ActivityClass.classify(1000) == ActivityClass.INTENSIVE

    def test_custom_thresholds(self):
        assert ActivityClass.classify(5, low_max=3, moderate_max=10) == (
            ActivityClass.MODERATE
        )

    def test_all_names(self):
        assert ActivityClass.ALL == ("low", "moderate", "intensive")
