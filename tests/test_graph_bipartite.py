"""Tests for repro.graph.bipartite."""

import pytest

from repro.graph.bipartite import Interaction, InteractionGraph


class TestAdd:
    def test_basic_indexing(self):
        g = InteractionGraph()
        g.add(user=1, tweet=10, time=0.0)
        g.add(user=2, tweet=10, time=1.0)
        assert g.tweets_of(1) == [10]
        assert sorted(g.users_of(10)) == [1, 2]
        assert g.tweet_degree(10) == 2

    def test_counts(self):
        g = InteractionGraph()
        g.add(1, 10, 0.0)
        g.add(1, 11, 1.0)
        g.add(2, 10, 2.0)
        assert g.user_count == 2
        assert g.tweet_count == 2
        assert g.edge_count == 3

    def test_reengagement_refreshes(self):
        g = InteractionGraph(window=10.0)
        g.add(1, 10, 0.0)
        g.add(1, 10, 8.0)  # refresh
        g.add(2, 11, 15.0)  # expires anything older than 5.0
        assert g.has_user(1)  # refreshed edge survives

    def test_out_of_order_rejected(self):
        g = InteractionGraph()
        g.add(1, 10, 5.0)
        with pytest.raises(ValueError):
            g.add(2, 11, 4.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            InteractionGraph(window=0.0)


class TestExpiry:
    def test_window_expiry_on_add(self):
        g = InteractionGraph(window=10.0)
        g.add(1, 10, 0.0)
        g.add(2, 11, 20.0)
        assert not g.has_user(1)
        assert not g.has_tweet(10)
        assert g.has_user(2)

    def test_explicit_expire_before(self):
        g = InteractionGraph()
        g.add(1, 10, 0.0)
        g.add(2, 11, 5.0)
        removed = g.expire_before(3.0)
        assert removed == 1
        assert not g.has_tweet(10)
        assert g.has_tweet(11)

    def test_expire_keeps_refreshed_edges(self):
        g = InteractionGraph()
        g.add(1, 10, 0.0)
        g.add(1, 10, 9.0)
        removed = g.expire_before(5.0)
        assert removed == 0
        assert g.has_tweet(10)

    def test_expire_empty_graph(self):
        assert InteractionGraph().expire_before(100.0) == 0


class TestQueries:
    def test_unknown_entities_empty(self):
        g = InteractionGraph()
        assert g.tweets_of(99) == []
        assert g.users_of(99) == []
        assert g.tweet_degree(99) == 0
        assert not g.has_user(99)
        assert not g.has_tweet(99)

    def test_interactions_log_order(self):
        g = InteractionGraph()
        g.add(1, 10, 0.0)
        g.add(2, 11, 1.0)
        log = list(g.interactions())
        assert log == [Interaction(1, 10, 0.0), Interaction(2, 11, 1.0)]
