"""Tests for repro.synth.generate (end-to-end generation)."""

import pytest

from repro.synth import SynthConfig, generate_dataset


class TestGenerateDataset:
    def test_counts_match_config(self, small_dataset, small_config):
        assert small_dataset.user_count == small_config.n_users
        assert small_dataset.tweet_count > 0
        assert small_dataset.retweet_count > 0

    def test_validates(self, small_dataset):
        small_dataset.validate()

    def test_user_metadata_populated(self, small_dataset, small_config):
        user = small_dataset.users[0]
        assert 0 <= user.community < small_config.n_communities
        assert len(user.interests) == small_config.n_topics
        assert sum(user.interests) == pytest.approx(1.0, abs=1e-3)

    def test_tweets_carry_topics(self, small_dataset, small_config):
        topics = {t.topic for t in small_dataset.tweets.values()}
        assert topics <= set(range(small_config.n_topics))

    def test_retweet_log_chronological(self, small_dataset):
        times = [r.time for r in small_dataset.retweets()]
        assert times == sorted(times)

    def test_deterministic(self):
        config = SynthConfig(n_users=100, seed=13)
        a = generate_dataset(config)
        b = generate_dataset(config)
        assert a.retweets() == b.retweets()
        assert sorted(a.follow_graph.edges()) == sorted(b.follow_graph.edges())

    def test_seed_changes_output(self):
        a = generate_dataset(SynthConfig(n_users=100, seed=1))
        b = generate_dataset(SynthConfig(n_users=100, seed=2))
        assert a.retweets() != b.retweets()

    def test_default_config_used_when_none(self):
        dataset = generate_dataset(SynthConfig(n_users=60, seed=3))
        assert dataset.user_count == 60

    def test_enough_eligible_actions_for_evaluation(self, small_dataset):
        """The corpus must support the paper's >= 2-retweet protocol."""
        eligible = small_dataset.tweets_with_min_retweets(2)
        assert len(eligible) > 20
        actions = sum(
            1 for r in small_dataset.retweets() if r.tweet in eligible
        )
        assert actions > 100


class TestHomophilySignal:
    def test_same_community_coretweets_dominate(self, small_dataset):
        """Co-retweeting must correlate with community membership."""
        community = {u.id: u.community for u in small_dataset.users.values()}
        same = cross = 0
        for tweet_id in small_dataset.tweets_with_min_retweets(2):
            retweeters = sorted(small_dataset.retweeters(tweet_id))
            for i, u in enumerate(retweeters):
                for v in retweeters[i + 1 :]:
                    if community[u] == community[v]:
                        same += 1
                    else:
                        cross += 1
        # Communities are ~6 for 400 users: random pairing would give
        # same/cross well below 0.5; homophily pushes it far higher.
        assert same / max(cross, 1) > 0.5
