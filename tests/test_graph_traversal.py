"""Tests for repro.graph.traversal, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    bfs_distances,
    k_hop_neighborhood,
    shortest_path_length,
)


def path_graph(n: int) -> DiGraph:
    g = DiGraph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestBfsDistances:
    def test_source_at_zero(self):
        g = path_graph(4)
        assert bfs_distances(g, 0)[0] == 0

    def test_distances_on_path(self):
        g = path_graph(4)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_respects_direction(self):
        g = path_graph(4)
        assert bfs_distances(g, 3) == {3: 0}

    def test_max_depth_bounds_exploration(self):
        g = path_graph(10)
        distances = bfs_distances(g, 0, max_depth=3)
        assert max(distances.values()) == 3
        assert len(distances) == 4

    def test_custom_neighbors_walks_backwards(self):
        g = path_graph(4)
        distances = bfs_distances(g, 3, neighbors=g.predecessors)
        assert distances == {3: 0, 2: 1, 1: 2, 0: 3}

    def test_branching(self):
        g = DiGraph()
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(1, 3)
        g.add_edge(2, 3)
        assert bfs_distances(g, 0)[3] == 2


class TestKHopNeighborhood:
    def test_two_hop_is_paper_n2(self):
        # 0 follows 1; 1 follows 2; 2 follows 3. N2(0) = {1, 2}.
        g = path_graph(4)
        assert k_hop_neighborhood(g, 0, 2) == {1, 2}

    def test_excludes_source_by_default(self):
        g = path_graph(3)
        assert 0 not in k_hop_neighborhood(g, 0, 2)

    def test_include_source(self):
        g = path_graph(3)
        assert 0 in k_hop_neighborhood(g, 0, 2, include_source=True)

    def test_zero_hops_empty(self):
        g = path_graph(3)
        assert k_hop_neighborhood(g, 0, 0) == set()

    def test_negative_hops_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            k_hop_neighborhood(g, 0, -1)


class TestShortestPathLength:
    def test_same_node(self):
        g = path_graph(2)
        assert shortest_path_length(g, 0, 0) == 0

    def test_direct_edge(self):
        g = path_graph(3)
        assert shortest_path_length(g, 0, 1) == 1

    def test_long_path(self):
        g = path_graph(8)
        assert shortest_path_length(g, 0, 7) == 7

    def test_unreachable_returns_none(self):
        g = path_graph(3)
        assert shortest_path_length(g, 2, 0) is None

    def test_disconnected_components(self):
        g = DiGraph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert shortest_path_length(g, 0, 3) is None

    def test_shortcut_preferred(self):
        g = path_graph(5)
        g.add_edge(0, 3)
        assert shortest_path_length(g, 0, 4) == 2


@st.composite
def random_digraph(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=40,
        )
    )
    return n, edges


@settings(max_examples=60)
@given(random_digraph())
def test_shortest_path_matches_networkx(data):
    """Property: bidirectional BFS agrees with the networkx oracle."""
    n, edges = data
    ours = DiGraph()
    ours.add_nodes(range(n))
    theirs = nx.DiGraph()
    theirs.add_nodes_from(range(n))
    for u, v in edges:
        ours.add_edge(u, v)
        theirs.add_edge(u, v)
    for source in range(n):
        expected = nx.single_source_shortest_path_length(theirs, source)
        for target in range(n):
            got = shortest_path_length(ours, source, target)
            assert got == expected.get(target)


@settings(max_examples=60)
@given(random_digraph())
def test_bfs_distances_match_networkx(data):
    """Property: full BFS distance maps agree with networkx."""
    n, edges = data
    ours = DiGraph()
    ours.add_nodes(range(n))
    theirs = nx.DiGraph()
    theirs.add_nodes_from(range(n))
    for u, v in edges:
        ours.add_edge(u, v)
        theirs.add_edge(u, v)
    for source in range(n):
        assert bfs_distances(ours, source) == dict(
            nx.single_source_shortest_path_length(theirs, source)
        )
