"""Tests for repro.data.split."""

import pytest

from repro.data.builders import DatasetBuilder
from repro.data.split import temporal_split
from repro.exceptions import DatasetError


def build_stream(n_actions: int = 20):
    """Dataset with one popular tweet retweeted by many users over time."""
    builder = DatasetBuilder().with_users(n_actions + 1)
    builder.tweet(author=0, at=0.0, tweet_id=0)
    for i in range(n_actions):
        builder.retweet(user=i + 1, tweet=0, at=float(i + 1))
    return builder.build()


class TestTemporalSplit:
    def test_fraction_respected(self):
        split = temporal_split(build_stream(20), train_fraction=0.9)
        assert len(split.train) == 18
        assert len(split.test) == 2

    def test_chronological_boundary(self):
        split = temporal_split(build_stream(20))
        assert max(r.time for r in split.train) <= min(r.time for r in split.test)
        assert split.boundary_time == split.test[0].time

    def test_min_retweets_filter(self):
        builder = DatasetBuilder().with_users(4)
        builder.tweet(author=0, at=0.0, tweet_id=0)  # retweeted twice
        builder.tweet(author=0, at=0.0, tweet_id=1)  # retweeted once
        builder.retweet(user=1, tweet=0, at=1.0)
        builder.retweet(user=2, tweet=0, at=2.0)
        builder.retweet(user=3, tweet=1, at=3.0)
        split = temporal_split(builder.build(), train_fraction=0.5)
        all_actions = split.train + split.test
        assert all(r.tweet == 0 for r in all_actions)

    def test_invalid_fraction_rejected(self):
        ds = build_stream(5)
        with pytest.raises(DatasetError):
            temporal_split(ds, train_fraction=0.0)
        with pytest.raises(DatasetError):
            temporal_split(ds, train_fraction=1.0)

    def test_too_few_actions_rejected(self):
        builder = DatasetBuilder().with_users(2)
        builder.tweet(author=0, at=0.0, tweet_id=0)
        builder.retweet(user=1, tweet=0, at=1.0)
        with pytest.raises(DatasetError):
            temporal_split(builder.build(), min_retweets=1)

    def test_never_empty_sides(self):
        # Extreme fractions still leave at least one action on each side.
        split = temporal_split(build_stream(10), train_fraction=0.99)
        assert len(split.test) >= 1
        split = temporal_split(build_stream(10), train_fraction=0.01)
        assert len(split.train) >= 1


class TestSliceTest:
    def test_figure16_slices(self):
        split = temporal_split(build_stream(100), train_fraction=0.9)
        mid = split.slice_test(0.90, 0.95)
        last = split.slice_test(0.95, 1.0)
        assert mid + last == split.test
        assert len(mid) == 5
        assert len(last) == 5

    def test_slice_clamps_to_test_window(self):
        split = temporal_split(build_stream(100), train_fraction=0.9)
        assert split.slice_test(0.0, 0.5) == []

    def test_empty_test_boundary_rejected(self):
        split = temporal_split(build_stream(100))
        object.__setattr__(split, "test", [])
        with pytest.raises(DatasetError):
            _ = split.boundary_time
