"""End-to-end determinism golden test (the obs acceptance gate).

Two full pipeline runs from one seed — generate -> build -> replay ->
budget -> score — must be *byte-identical*: the deterministic metrics
snapshot (``snapshot(deterministic=True)`` serialized with sorted keys)
and the hit lists both compare equal as strings.  This is what makes the
observability layer trustworthy: if any engine became order-dependent
(set iteration leaking into counters, a racy frontier, a wall-clock
value sneaking past the ``timing=True`` convention), this test is the
tripwire.

Both SimGraph build backends and both propagation backends are
exercised; since the differential suites pin each pair to identical
outputs, the *hit lists* of every variant must also agree with each
other (their work metrics legitimately differ).
"""

from __future__ import annotations

import json

import pytest

from repro.core import SimGraphRecommender
from repro.data import temporal_split
from repro.eval import evaluate_sweep, run_replay, select_target_users
from repro.obs import MetricsRegistry, validate_snapshot
from repro.service import RecommendationService, ServiceConfig
from repro.synth import SynthConfig, generate_dataset

CONFIG = SynthConfig(n_users=150, n_communities=4, seed=19)
K_VALUES = [10, 30]

#: (build backend, propagation backend) pipeline variants under the
#: determinism gate.  Every variant must be self-deterministic, and all
#: variants must agree on the hit lists.
VARIANTS = [
    ("reference", "reference"),
    ("vectorized", "reference"),
    ("reference", "csr"),
    ("vectorized", "csr"),
]

VARIANT_IDS = [f"{build}-{prop}" for build, prop in VARIANTS]


def run_pipeline(backend: str, prop_backend: str) -> tuple[str, str]:
    """One full seeded run; returns (snapshot_json, hits_json)."""
    dataset = generate_dataset(CONFIG)
    split = temporal_split(dataset)
    targets = select_target_users(split.train, per_stratum=50, seed=0)
    registry = MetricsRegistry()
    recommender = SimGraphRecommender(
        backend=backend, prop_backend=prop_backend, metrics=registry
    )
    result = run_replay(
        recommender, dataset, split.train, split.test, targets.all_users,
        metrics=registry,
    )
    metrics = evaluate_sweep(
        result, K_VALUES, dataset.popularity, metrics=registry
    )
    snapshot = registry.snapshot(deterministic=True)
    validate_snapshot(snapshot)
    hits = [
        {"k": m.k, "hits": sorted(m.hit_pairs), "delivered": m.delivered}
        for m in metrics
    ]
    return (
        json.dumps(snapshot, sort_keys=True),
        json.dumps(hits, sort_keys=True),
    )


@pytest.fixture(scope="module")
def runs():
    """Two runs per variant, all from the same seed."""
    return {
        variant: (run_pipeline(*variant), run_pipeline(*variant))
        for variant in VARIANTS
    }


@pytest.mark.parametrize("variant", VARIANTS, ids=VARIANT_IDS)
def test_deterministic_snapshot_is_byte_identical(runs, variant):
    (snap_a, _), (snap_b, _) = runs[variant]
    assert snap_a == snap_b


@pytest.mark.parametrize("variant", VARIANTS, ids=VARIANT_IDS)
def test_hit_lists_are_byte_identical(runs, variant):
    (_, hits_a), (_, hits_b) = runs[variant]
    assert hits_a == hits_b


@pytest.mark.parametrize("variant", VARIANTS, ids=VARIANT_IDS)
def test_snapshot_covers_the_required_stages(runs, variant):
    """Per-stage spans for propagation, solve and budget must be present."""
    snapshot = json.loads(runs[variant][0][0])

    def span_names(nodes, acc):
        for node in nodes:
            acc.add(node["name"])
            span_names(node["children"], acc)
        return acc

    names = span_names(snapshot["spans"], set())
    assert {"propagation", "solve", "budget", "replay.finalize"} <= names
    assert snapshot["counters"]["replay.events"] > 0
    assert snapshot["counters"]["propagation.runs"] > 0


@pytest.mark.parametrize("variant", VARIANTS[1:], ids=VARIANT_IDS[1:])
def test_variants_agree_on_hits(runs, variant):
    """Identical edges + identical propagation (differential suites)
    imply byte-identical hit lists across every backend combination."""
    assert runs[VARIANTS[0]][0][1] == runs[variant][0][1]


def test_prop_backends_agree_on_propagation_counters(runs):
    """The deterministic propagation.* counters are backend-invariant."""
    names = ("propagation.runs", "propagation.iterations", "propagation.updates")
    reference = json.loads(runs[("reference", "reference")][0][0])["counters"]
    csr = json.loads(runs[("reference", "csr")][0][0])["counters"]
    for name in names:
        assert reference[name] == csr[name]


def test_pipeline_produces_hits(runs):
    """Guard against the golden test passing vacuously on empty output."""
    hits = json.loads(runs[VARIANTS[0]][0][1])
    assert any(entry["delivered"] > 0 for entry in hits)


# ----------------------------------------------------------------------
# Service pipeline under delta maintenance
# ----------------------------------------------------------------------

def run_service_pipeline(prop_backend: str) -> tuple[str, str]:
    """Replay a seeded stream through the online service with
    ``rebuild_strategy="delta"``; returns (snapshot_json, hits_json)."""
    dataset = generate_dataset(CONFIG)
    split = temporal_split(dataset)
    service = RecommendationService(ServiceConfig(
        rebuild_strategy="delta",
        prop_backend=prop_backend,
        rebuild_interval=6 * 3600.0,
        use_scheduler=False,
        min_score=1e-6,
    ))
    for u, v, _ in dataset.follow_graph.edges():
        service.add_follow(u, v)
    for event in split.train:
        service.profiles.add(event.user, event.tweet)
        service._retweeters.setdefault(event.tweet, set()).add(event.user)
        service._known.add((event.user, event.tweet))
    base = split.test[0].time if split.test else 0.0
    for tweet in sorted(
        dataset.tweets.values(), key=lambda t: (t.created_at, t.id)
    ):
        service.post_tweet(
            tweet_id=tweet.id, author=tweet.author,
            at=min(tweet.created_at, base),
        )
    hits = []
    for event in split.test[:120]:
        for rec in service.retweet(
            user=event.user, tweet=event.tweet, at=event.time
        ):
            hits.append([rec.user, rec.tweet])
    snapshot = service.metrics_snapshot(deterministic=True)
    validate_snapshot(snapshot)
    return (
        json.dumps(snapshot, sort_keys=True),
        json.dumps(sorted(hits), sort_keys=True),
    )


@pytest.fixture(scope="module")
def service_runs():
    """Two delta-maintained service runs per propagation backend."""
    return {
        prop: (run_service_pipeline(prop), run_service_pipeline(prop))
        for prop in ("reference", "csr")
    }


@pytest.mark.parametrize("prop", ["reference", "csr"])
def test_delta_service_is_deterministic(service_runs, prop):
    (snap_a, hits_a), (snap_b, hits_b) = service_runs[prop]
    assert snap_a == snap_b
    assert hits_a == hits_b


def test_delta_service_prop_backends_agree(service_runs):
    assert service_runs["reference"][0][1] == service_runs["csr"][0][1]


def test_delta_service_exercised_the_delta_path(service_runs):
    """Guard against the golden passing without any delta rebuild."""
    snapshot = json.loads(service_runs["reference"][0][0])
    counters = snapshot["counters"]
    assert counters.get("service.rebuild[delta]", 0) > 0
    assert counters.get("maintenance.rows_recomputed", 0) > 0
