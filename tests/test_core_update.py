"""Tests for repro.core.update (paper §6.3, Figure 16 strategies)."""

import pytest

from repro.core.profiles import RetweetProfiles
from repro.core.simgraph import SimGraphBuilder
from repro.core.update import (
    STRATEGIES,
    apply_strategy,
    crossfold,
    from_scratch,
    old_simgraph,
    update_weights,
)
from repro.data import temporal_split


@pytest.fixture(scope="module")
def world(small_dataset):
    split = temporal_split(small_dataset, train_fraction=0.9)
    mid = split.slice_test(0.90, 0.95)
    builder = SimGraphBuilder(tau=0.001)
    profiles = RetweetProfiles(split.train)
    old = builder.build(small_dataset.follow_graph, profiles)
    return small_dataset, split, mid, builder, old


class TestStrategies:
    def test_registry_names(self):
        assert set(STRATEGIES) == {
            "from scratch",
            "old SimGraph",
            "crossfold",
            "SimGraph updated",
        }

    def test_old_simgraph_is_identity(self, world):
        dataset, split, mid, builder, old = world
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        assert old_simgraph(old, dataset.follow_graph, profiles, builder) is old

    def test_from_scratch_differs_from_old(self, world):
        dataset, split, mid, builder, old = world
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        rebuilt = from_scratch(old, dataset.follow_graph, profiles, builder)
        assert rebuilt is not old
        old_edges = set((u, v) for u, v, _ in old.graph.edges())
        new_edges = set((u, v) for u, v, _ in rebuilt.graph.edges())
        assert old_edges != new_edges

    def test_update_weights_keeps_topology(self, world):
        dataset, split, mid, builder, old = world
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        refreshed = update_weights(old, dataset.follow_graph, profiles, builder)
        old_edges = set((u, v) for u, v, _ in old.graph.edges())
        new_edges = set((u, v) for u, v, _ in refreshed.graph.edges())
        assert old_edges == new_edges

    def test_update_weights_recomputes_weights(self, world):
        dataset, split, mid, builder, old = world
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        refreshed = update_weights(old, dataset.follow_graph, profiles, builder)
        changed = sum(
            1
            for u, v, w in refreshed.graph.edges()
            if abs(w - old.graph.weight(u, v)) > 1e-12
        )
        assert changed > 0

    def test_crossfold_explores_old_simgraph(self, world):
        dataset, split, mid, builder, old = world
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        folded = crossfold(old, dataset.follow_graph, profiles, builder)
        # Crossfold may add transitive edges absent from the old graph.
        assert folded.node_count > 0
        # Every crossfold source was reachable in the old SimGraph.
        for u, _, _ in folded.graph.edges():
            assert u in old.graph


class TestApplyStrategy:
    def test_unknown_name_rejected(self, world):
        dataset, split, mid, _, old = world
        with pytest.raises(KeyError):
            apply_strategy("bogus", old, dataset.follow_graph, split.train, mid)

    def test_dispatch_matches_direct_call(self, world):
        dataset, split, mid, builder, old = world
        via_name = apply_strategy(
            "SimGraph updated", old, dataset.follow_graph, split.train, mid,
            builder=builder,
        )
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        direct = update_weights(old, dataset.follow_graph, profiles, builder)
        assert sorted(via_name.graph.edges()) == sorted(direct.graph.edges())

    def test_default_builder_uses_old_tau(self, world):
        dataset, split, mid, _, old = world
        refreshed = apply_strategy(
            "from scratch", old, dataset.follow_graph, split.train, mid
        )
        assert refreshed.tau == old.tau
