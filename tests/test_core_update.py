"""Tests for repro.core.update (paper §6.3, Figure 16 strategies)."""

import pytest

from repro.core.profiles import RetweetProfiles
from repro.core.simgraph import SimGraphBuilder
from repro.core.update import (
    ALL_STRATEGIES,
    SCOPED_STRATEGIES,
    STRATEGIES,
    apply_strategy,
    crossfold,
    delta,
    from_scratch,
    old_simgraph,
    update_weights,
)
from repro.data import temporal_split


@pytest.fixture(scope="module")
def world(small_dataset):
    split = temporal_split(small_dataset, train_fraction=0.9)
    mid = split.slice_test(0.90, 0.95)
    builder = SimGraphBuilder(tau=0.001)
    profiles = RetweetProfiles(split.train)
    old = builder.build(small_dataset.follow_graph, profiles)
    return small_dataset, split, mid, builder, old


class TestStrategies:
    def test_registry_names(self):
        assert set(STRATEGIES) == {
            "from scratch",
            "old SimGraph",
            "crossfold",
            "SimGraph updated",
            "delta",
        }
        assert set(SCOPED_STRATEGIES) == {
            "crossfold scoped",
            "SimGraph updated scoped",
        }
        assert set(ALL_STRATEGIES) == set(STRATEGIES) | set(SCOPED_STRATEGIES)

    def test_old_simgraph_is_identity(self, world):
        dataset, split, mid, builder, old = world
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        assert old_simgraph(old, dataset.follow_graph, profiles, builder) is old

    def test_from_scratch_differs_from_old(self, world):
        dataset, split, mid, builder, old = world
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        rebuilt = from_scratch(old, dataset.follow_graph, profiles, builder)
        assert rebuilt is not old
        old_edges = set((u, v) for u, v, _ in old.graph.edges())
        new_edges = set((u, v) for u, v, _ in rebuilt.graph.edges())
        assert old_edges != new_edges

    def test_update_weights_keeps_topology(self, world):
        dataset, split, mid, builder, old = world
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        refreshed = update_weights(old, dataset.follow_graph, profiles, builder)
        old_edges = set((u, v) for u, v, _ in old.graph.edges())
        new_edges = set((u, v) for u, v, _ in refreshed.graph.edges())
        assert old_edges == new_edges

    def test_update_weights_recomputes_weights(self, world):
        dataset, split, mid, builder, old = world
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        refreshed = update_weights(old, dataset.follow_graph, profiles, builder)
        changed = sum(
            1
            for u, v, w in refreshed.graph.edges()
            if abs(w - old.graph.weight(u, v)) > 1e-12
        )
        assert changed > 0

    def test_delta_matches_from_scratch(self, world):
        dataset, split, mid, builder, old = world
        via_delta = apply_strategy(
            "delta", old, dataset.follow_graph, split.train, mid,
            builder=builder,
        )
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        full = from_scratch(old, dataset.follow_graph, profiles, builder)
        delta_edges = {(u, v): w for u, v, w in via_delta.graph.edges()}
        full_edges = {(u, v): w for u, v, w in full.graph.edges()}
        assert set(delta_edges) == set(full_edges)
        # Fringe pairs are scored from the core side of the symmetric
        # walk, so weights may differ by last-ulp round-off.
        for pair, w in delta_edges.items():
            assert w == pytest.approx(full_edges[pair], abs=1e-12)

    def test_delta_with_empty_slice_is_same_object(self, world):
        dataset, split, _, builder, old = world
        profiles = RetweetProfiles(split.train)
        profiles.mark_clean()
        assert delta(old, dataset.follow_graph, profiles, builder) is old

    def test_scoped_strategies_empty_delta_identity(self, world):
        dataset, split, _, builder, old = world
        for strategy in SCOPED_STRATEGIES.values():
            profiles = RetweetProfiles(split.train)
            profiles.mark_clean()
            assert strategy(old, dataset.follow_graph, profiles, builder) is old

    def test_crossfold_explores_old_simgraph(self, world):
        dataset, split, mid, builder, old = world
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        folded = crossfold(old, dataset.follow_graph, profiles, builder)
        # Crossfold may add transitive edges absent from the old graph.
        assert folded.node_count > 0
        # Every crossfold source was reachable in the old SimGraph.
        for u, _, _ in folded.graph.edges():
            assert u in old.graph


class TestEmptyDeltaEquivalence:
    """§6.3 sanity: with *no* new retweets, maintenance must be a no-op.

    If the update slice is empty the profiles are unchanged, so every
    strategy should reproduce the graph it started from — *from scratch*
    exactly, *SimGraph updated* up to float round-off, and *crossfold*
    as an edge-superset (2-hop exploration of the SimGraph may add
    transitive edges, but may neither drop edges nor change weights).
    """

    def test_from_scratch_with_empty_delta_is_identity(self, world):
        dataset, split, _, builder, old = world
        profiles = RetweetProfiles(split.train)  # no .extend(): empty delta
        rebuilt = from_scratch(old, dataset.follow_graph, profiles, builder)
        assert sorted(rebuilt.graph.edges()) == sorted(old.graph.edges())
        assert rebuilt.tau == old.tau

    def test_update_weights_with_empty_delta_keeps_weights(self, world):
        dataset, split, _, builder, old = world
        profiles = RetweetProfiles(split.train)
        refreshed = update_weights(old, dataset.follow_graph, profiles, builder)
        old_edges = {(u, v) for u, v, _ in old.graph.edges()}
        new_edges = {(u, v) for u, v, _ in refreshed.graph.edges()}
        assert old_edges == new_edges
        for u, v, w in refreshed.graph.edges():
            assert w == pytest.approx(old.graph.weight(u, v), abs=1e-12)

    def test_crossfold_with_empty_delta_preserves_old_edges(self, world):
        dataset, split, _, builder, old = world
        profiles = RetweetProfiles(split.train)
        folded = crossfold(old, dataset.follow_graph, profiles, builder)
        old_edges = {(u, v) for u, v, _ in old.graph.edges()}
        new_edges = {(u, v) for u, v, _ in folded.graph.edges()}
        assert old_edges <= new_edges  # nothing dropped
        for u, v in old_edges:  # retained edges keep their exact weight
            assert folded.graph.weight(u, v) == old.graph.weight(u, v)

    def test_crossfold_via_apply_strategy_with_empty_slice(self, world):
        dataset, split, _, builder, old = world
        folded = apply_strategy(
            "crossfold", old, dataset.follow_graph, split.train, [],
            builder=builder,
        )
        old_edges = {(u, v) for u, v, _ in old.graph.edges()}
        assert old_edges <= {(u, v) for u, v, _ in folded.graph.edges()}


class TestApplyStrategy:
    def test_unknown_name_rejected(self, world):
        dataset, split, mid, _, old = world
        with pytest.raises(KeyError):
            apply_strategy("bogus", old, dataset.follow_graph, split.train, mid)

    def test_dispatch_matches_direct_call(self, world):
        dataset, split, mid, builder, old = world
        via_name = apply_strategy(
            "SimGraph updated", old, dataset.follow_graph, split.train, mid,
            builder=builder,
        )
        profiles = RetweetProfiles(split.train)
        profiles.extend(mid)
        direct = update_weights(old, dataset.follow_graph, profiles, builder)
        assert sorted(via_name.graph.edges()) == sorted(direct.graph.edges())

    def test_default_builder_uses_old_tau(self, world):
        dataset, split, mid, _, old = world
        refreshed = apply_strategy(
            "from scratch", old, dataset.follow_graph, split.train, mid
        )
        assert refreshed.tau == old.tau
