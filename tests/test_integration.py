"""End-to-end integration tests: the full paper pipeline on a small corpus.

Generate -> split -> select targets -> fit all four methods -> replay ->
score.  These tests assert the pipeline *functions* end to end and that
basic cross-method invariants hold; the benchmark suite measures the
paper's actual comparative shapes at a larger scale.
"""

import pytest

from repro.baselines import (
    BayesRecommender,
    CollaborativeFilteringRecommender,
    GraphJetRecommender,
)
from repro.core import SimGraphRecommender, SimGraphBuilder, RetweetProfiles
from repro.core.update import STRATEGIES, apply_strategy
from repro.data import temporal_split
from repro.eval import (
    SweepReport,
    evaluate_sweep,
    run_replay,
    select_target_users,
    time_method,
)

K_VALUES = [5, 10, 30]


@pytest.fixture(scope="module")
def pipeline(small_dataset):
    split = temporal_split(small_dataset)
    targets = select_target_users(split.train, per_stratum=60, seed=0)
    return small_dataset, split, targets


@pytest.fixture(scope="module")
def replays(pipeline):
    dataset, split, targets = pipeline
    methods = [
        SimGraphRecommender(),
        CollaborativeFilteringRecommender(),
        BayesRecommender(),
        GraphJetRecommender(walks=50),
    ]
    results = {}
    for method in methods:
        results[method.name] = run_replay(
            method, dataset, split.train, split.test, targets.all_users
        )
    return results


class TestFullPipeline:
    def test_every_method_produces_candidates(self, replays):
        for name, result in replays.items():
            assert result.candidates, f"{name} produced no candidates"

    def test_every_method_scores(self, pipeline, replays):
        dataset, _, _ = pipeline
        report = SweepReport(
            K_VALUES,
            {
                name: evaluate_sweep(result, K_VALUES, dataset.popularity)
                for name, result in replays.items()
            },
        )
        for name in replays:
            hits = [m.hits for m in report.series[name]]
            assert hits == sorted(hits)  # hits monotone in k

    def test_similarity_methods_get_hits(self, pipeline, replays):
        dataset, _, _ = pipeline
        for name in ("SimGraph", "CF", "Bayes"):
            metrics = evaluate_sweep(replays[name], [30], dataset.popularity)
            assert metrics[0].hits > 0, f"{name} got zero hits"

    def test_candidate_pairs_unique(self, replays):
        for result in replays.values():
            pairs = [(r.user, r.tweet) for r in result.candidates]
            assert len(pairs) == len(set(pairs))

    def test_recommendations_within_test_window(self, replays):
        for result in replays.values():
            for rec in result.candidates:
                assert result.test_start <= rec.time <= result.test_end


class TestUpdateStrategiesPipeline:
    def test_all_strategies_run_and_score(self, pipeline):
        """A miniature Figure 16: every strategy yields a working graph."""
        dataset, split, targets = pipeline
        mid = split.slice_test(0.90, 0.95)
        last = split.slice_test(0.95, 1.0)
        if not last:
            pytest.skip("test slice empty at this scale")
        profiles = RetweetProfiles(split.train)
        builder = SimGraphBuilder(tau=0.001)
        old = builder.build(dataset.follow_graph, profiles)
        hits = {}
        for name in STRATEGIES:
            graph = apply_strategy(
                name, old, dataset.follow_graph, split.train, mid,
                builder=builder,
            )
            rec = SimGraphRecommender(simgraph=graph)
            rec.fit(dataset, split.train + mid, targets.all_users)
            result = run_replay(
                rec, dataset, split.train + mid, last, targets.all_users,
                fitted=True,
            )
            metrics = evaluate_sweep(result, [30], dataset.popularity)
            hits[name] = metrics[0].hits
        assert set(hits) == set(STRATEGIES)
        # The stale graph can never beat a full rebuild by a wide margin.
        assert hits["old SimGraph"] <= hits["from scratch"] * 1.5 + 5


class TestTimingPipeline:
    def test_table5_style_rows(self, pipeline):
        dataset, split, targets = pipeline
        rows = []
        for method in (
            SimGraphRecommender(),
            CollaborativeFilteringRecommender(),
        ):
            report = time_method(
                method, dataset, split.train, split.test,
                targets.all_users, max_events=40,
            )
            rows.append(report.row())
        assert len(rows) == 2
        assert all(len(row) == 6 for row in rows)
