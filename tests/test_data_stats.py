"""Tests for repro.data.stats (the paper's §3 characterization)."""

import pytest

from repro.data.stats import (
    compute_dataset_stats,
    lifetime_survival,
    retweets_per_tweet,
    retweets_per_user,
    tweet_lifetimes,
)


class TestRawDistributions:
    def test_retweets_per_tweet_includes_zeros(self, tiny_dataset):
        counts = retweets_per_tweet(tiny_dataset)
        assert sorted(counts) == [2, 3]

    def test_retweets_per_user_includes_zeros(self, tiny_dataset):
        counts = retweets_per_user(tiny_dataset)
        assert sorted(counts) == [0, 0, 1, 2, 2]

    def test_tweet_lifetimes(self, tiny_dataset):
        lifetimes = tweet_lifetimes(tiny_dataset)
        # Tweet 0: created 0.0, last retweet 70.0 -> 70s in hours.
        assert lifetimes[0] == pytest.approx(70.0 / 3600.0)
        # Tweet 1: created 100.0, last retweet 160.0.
        assert lifetimes[1] == pytest.approx(60.0 / 3600.0)

    def test_lifetimes_exclude_never_retweeted(self):
        from repro.data.builders import DatasetBuilder

        ds = (
            DatasetBuilder()
            .with_users(2)
            .tweet(author=0, at=0.0, tweet_id=0)
            .build()
        )
        assert tweet_lifetimes(ds) == {}


class TestLifetimeSurvival:
    def test_checkpoints(self):
        lifetimes = {0: 0.5, 1: 2.0, 2: 100.0, 3: 0.1}
        survival = lifetime_survival(lifetimes, (1.0, 72.0))
        assert survival[1.0] == pytest.approx(0.5)
        assert survival[72.0] == pytest.approx(0.75)

    def test_empty(self):
        assert lifetime_survival({}, (1.0,)) == {1.0: 0.0}


class TestComputeDatasetStats:
    def test_table1_rows_structure(self, small_dataset):
        stats = compute_dataset_stats(small_dataset, path_sample_size=40)
        labels = [label for label, _ in stats.table1_rows()]
        assert labels[:3] == ["# nodes", "# edges", "# tweets"]
        assert "diameter" in labels
        assert "avg. path length" in labels

    def test_paper_shapes_hold(self, small_dataset):
        """The calibrated generator reproduces the §3 findings."""
        stats = compute_dataset_stats(small_dataset, path_sample_size=40)
        # Fig. 2: a large majority of tweets are never retweeted.
        assert stats.never_retweeted_fraction > 0.5
        # Fig. 3: power-law activity — mean well above median.
        assert stats.mean_retweets_per_user > stats.median_retweets_per_user
        # Fig. 4: most tweets die quickly; almost all before 72 hours.
        assert 0.15 < stats.lifetime_survival[1.0] < 0.75
        assert stats.lifetime_survival[72.0] > 0.80
        # A cold-start population exists (the paper reports ~25% at 2.2M
        # users; on a dense 400-user corpus the fraction is much smaller).
        assert stats.never_retweeting_user_fraction > 0.005

    def test_binned_rows_cover_all_tweets(self, small_dataset):
        stats = compute_dataset_stats(small_dataset, path_sample_size=20)
        total = sum(c for _, c in stats.retweets_per_tweet_binned)
        assert total == small_dataset.tweet_count

    def test_mean_tweets_per_user(self, small_dataset):
        stats = compute_dataset_stats(small_dataset, path_sample_size=20)
        expected = small_dataset.tweet_count / small_dataset.user_count
        assert stats.mean_tweets_per_user == pytest.approx(expected)

    def test_path_length_rows_sorted(self, small_dataset):
        stats = compute_dataset_stats(small_dataset, path_sample_size=30)
        distances = [d for d, _ in stats.path_length_rows]
        assert distances == sorted(distances)
