"""Tests for repro.service.engine (the online service facade)."""

import pytest

from repro.exceptions import ConfigError, DatasetError
from repro.service import RecommendationService, ServiceConfig

DAY = 86400.0


def warm_service(**config_kwargs) -> RecommendationService:
    """A service with three co-retweeting users and one fresh tweet."""
    defaults = {"use_scheduler": False, "min_score": 1e-6}
    defaults.update(config_kwargs)
    service = RecommendationService(ServiceConfig(**defaults))
    for user in range(5):
        service.add_user(user)
    service.add_follow(0, 1)
    service.add_follow(1, 2)
    service.add_follow(2, 0)
    service.add_follow(1, 0)
    service.add_follow(2, 1)
    service.add_follow(0, 2)
    # Warm-up history: users 0-2 co-retweet two tweets (time-ordered).
    service.post_tweet(tweet_id=100, author=3, at=0.0)
    service.post_tweet(tweet_id=101, author=3, at=1.0)
    at = 10.0
    for tid in (100, 101):
        for user in (0, 1, 2):
            service.retweet(user=user, tweet=tid, at=at)
            at += 1.0
    service.rebuild("from scratch")
    service.post_tweet(tweet_id=200, author=3, at=500.0)
    return service


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"daily_budget": 0},
            {"rebuild_interval": 0.0},
            {"rebuild_strategy": "bogus"},
            {"tau": -1.0},
            {"min_score": 0.0},
            {"backend": "gpu"},
            {"build_workers": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ServiceConfig(**kwargs)

    def test_defaults_valid(self):
        ServiceConfig()


class TestIngestion:
    def test_duplicate_tweet_rejected(self):
        service = warm_service()
        with pytest.raises(DatasetError):
            service.post_tweet(tweet_id=200, author=3, at=600.0)

    def test_unknown_tweet_rejected(self):
        service = warm_service()
        with pytest.raises(DatasetError):
            service.retweet(user=0, tweet=999, at=600.0)

    def test_time_must_be_monotone(self):
        service = warm_service()
        service.retweet(user=0, tweet=200, at=600.0)
        with pytest.raises(DatasetError):
            service.retweet(user=1, tweet=200, at=10.0)

    def test_stats_counted(self):
        service = warm_service()
        before = service.stats.events_ingested
        service.retweet(user=0, tweet=200, at=600.0)
        assert service.stats.events_ingested == before + 1
        assert service.stats.propagations_run > 0


class TestDelivery:
    def test_similar_users_notified(self):
        service = warm_service()
        notifications = service.retweet(user=0, tweet=200, at=600.0)
        users = {n.user for n in notifications}
        assert users & {1, 2}
        assert 0 not in users

    def test_no_duplicate_notifications(self):
        service = warm_service()
        first = service.retweet(user=0, tweet=200, at=600.0)
        second = service.retweet(user=1, tweet=200, at=700.0)
        first_pairs = {(n.user, n.tweet) for n in first}
        second_pairs = {(n.user, n.tweet) for n in second}
        assert not first_pairs & second_pairs

    def test_retweeting_user_never_renotified(self):
        service = warm_service()
        service.retweet(user=0, tweet=200, at=600.0)
        notifications = service.retweet(user=1, tweet=200, at=700.0)
        assert all(n.user != 1 for n in notifications)

    def test_daily_budget_enforced(self):
        service = warm_service(daily_budget=1)
        # Two fresh tweets shared in one day: only one notification each
        # for the other users.
        service.post_tweet(tweet_id=201, author=3, at=650.0)
        day_recs = []
        day_recs += service.retweet(user=0, tweet=200, at=700.0)
        day_recs += service.retweet(user=0, tweet=201, at=800.0)
        per_user: dict[int, int] = {}
        for n in day_recs:
            per_user[n.user] = per_user.get(n.user, 0) + 1
        assert all(count <= 1 for count in per_user.values())
        assert service.stats.notifications_suppressed > 0

    def test_budget_resets_next_day(self):
        service = warm_service(daily_budget=1)
        service.post_tweet(tweet_id=201, author=3, at=650.0)
        service.retweet(user=0, tweet=200, at=700.0)
        # Next day: budget refreshed, new tweet notifies again.
        service.post_tweet(tweet_id=202, author=3, at=700.0 + DAY)
        notifications = service.retweet(user=0, tweet=202, at=800.0 + DAY)
        assert notifications

    def test_old_tweets_not_propagated(self):
        service = warm_service(max_tweet_age=3600.0)
        notifications = service.retweet(user=0, tweet=200, at=500.0 + 7200.0)
        assert notifications == []


class TestScheduledMode:
    def test_flush_drains_buffered_work(self):
        service = warm_service(use_scheduler=True)
        immediate = service.retweet(user=0, tweet=200, at=600.0)
        flushed = service.flush(now=600.0 + 5 * 3600.0)
        assert immediate == []
        assert flushed

    def test_flush_idempotent(self):
        service = warm_service(use_scheduler=True)
        service.retweet(user=0, tweet=200, at=600.0)
        service.flush(now=700.0 + 4 * 3600.0)
        assert service.flush() == []


class TestVectorizedBackend:
    def test_vectorized_service_matches_reference(self):
        reference = warm_service()
        vectorized = warm_service(backend="vectorized")
        assert set(vectorized.simgraph.graph.edges()) == set(
            reference.simgraph.graph.edges()
        )
        ref_notes = reference.retweet(user=0, tweet=200, at=600.0)
        vec_notes = vectorized.retweet(user=0, tweet=200, at=600.0)
        assert {(n.user, n.tweet) for n in vec_notes} == {
            (n.user, n.tweet) for n in ref_notes
        }

    def test_build_workers_accepted(self):
        service = warm_service(backend="vectorized", build_workers=2)
        assert service.simgraph.edge_count > 0


class TestScoreBatch:
    def test_matches_single_direct_solve(self):
        from repro.core.linear import LinearSystem

        service = warm_service()
        service.retweet(user=0, tweet=200, at=600.0)
        batch = service.score_batch([200, 100])
        assert set(batch) == {200, 100}
        assert batch[200]  # users 1 and 2 gain mass from seed 0
        single = LinearSystem(service.simgraph).solve_direct({0}).probabilities
        for user, p in batch[200].items():
            assert p == pytest.approx(single[user], abs=1e-10)
            assert p >= service.config.min_score

    def test_seeds_excluded(self):
        service = warm_service()
        batch = service.score_batch([100])
        # Users 0-2 retweeted tweet 100: they are seeds, never targets —
        # and they exhaust the SimGraph, so nothing remains.
        assert not {0, 1, 2} & set(batch[100])
        assert batch[100] == {}

    def test_unknown_tweet_rejected(self):
        service = warm_service()
        with pytest.raises(DatasetError):
            service.score_batch([100, 999])

    def test_empty_batch(self):
        service = warm_service()
        assert service.score_batch([]) == {}


class TestScoreBatchCompiled:
    """The csr/auto batch path must agree with both ground truths."""

    TWEETS = [200, 100, 101]

    @staticmethod
    def ready(prop_backend: str) -> RecommendationService:
        service = warm_service(prop_backend=prop_backend)
        service.retweet(user=0, tweet=200, at=600.0)
        return service

    @pytest.mark.parametrize("prop_backend", ["csr", "auto"])
    def test_matches_reference_backend(self, prop_backend):
        # The reference backend solves the linear system directly; the
        # compiled path iterates the thresholded frontier fixpoint, so
        # agreement is bounded by the threshold truncation, not machine
        # epsilon.  Bit-exactness is pinned against the per-tweet
        # propagate path below instead.
        reference = self.ready("reference")
        compiled = self.ready(prop_backend)
        expected = reference.score_batch(self.TWEETS)
        got = compiled.score_batch(self.TWEETS)
        assert set(got) == set(expected)
        for tweet in self.TWEETS:
            assert set(got[tweet]) == set(expected[tweet])
            for user, p in got[tweet].items():
                assert p == pytest.approx(expected[tweet][user], abs=1e-3)

    def test_matches_per_tweet_propagate(self):
        # The joint propagate_many kernel is bit-identical to dispatching
        # each tweet through a single engine.propagate call.
        service = self.ready("csr")
        batch = service.score_batch(self.TWEETS)
        for tweet in self.TWEETS:
            seeds = set(service._retweeters.get(tweet, set()))
            single = service._engine.propagate(
                seeds, popularity=len(seeds)
            ).probabilities
            expected = {
                user: p
                for user, p in single.items()
                if user not in seeds and p >= service.config.min_score
            }
            assert batch[tweet] == expected

    def test_pure_query_leaves_warm_state_alone(self):
        service = self.ready("csr")
        hits, misses = service.stats.warm_hits, service.stats.warm_misses
        service.score_batch(self.TWEETS)
        service.metrics_snapshot()
        assert (service.stats.warm_hits, service.stats.warm_misses) == (
            hits, misses
        )


class TestHealthGauges:
    """warm_hits / warm_misses / queue_depth mirror into the snapshot."""

    def test_gauges_mirror_stats(self):
        # The warm-up history already touched the cache (each retweet
        # probes it), so the gauges are non-trivial even on a "fresh"
        # fixture — what matters is that they exist and track stats.
        service = warm_service()
        gauges = service.metrics_snapshot()["gauges"]
        assert gauges["service.warm_hits"] == service.stats.warm_hits
        assert gauges["service.warm_misses"] == service.stats.warm_misses
        assert gauges["service.queue_depth"] == 0  # scheduler off

    def test_warm_cache_traffic_counted(self):
        service = warm_service()
        service.retweet(user=0, tweet=200, at=600.0)  # seeds the cache
        assert service.warm_answer(user=4, tweet=200, at=601.0) is not None
        assert service.warm_answer(user=4, tweet=101, at=602.0) is None
        gauges = service.metrics_snapshot()["gauges"]
        assert gauges["service.warm_hits"] == service.stats.warm_hits
        assert gauges["service.warm_misses"] == service.stats.warm_misses
        assert service.stats.warm_hits >= 1
        assert service.stats.warm_misses >= 1

    def test_queue_depth_tracks_scheduler_backlog(self):
        service = warm_service(use_scheduler=True)
        service.retweet(user=0, tweet=200, at=600.0)
        buffered = service.metrics_snapshot()["gauges"]["service.queue_depth"]
        assert buffered == service.stats.queue_depth >= 1
        service.flush(10_000_000.0)
        drained = service.metrics_snapshot()["gauges"]["service.queue_depth"]
        assert drained == service.stats.queue_depth == 0


def two_group_service() -> RecommendationService:
    """Two follow-disjoint communities: users 0-2 and users 5-7.

    User 8 follows the second group but starts with no retweet profile —
    the lever for a topology-changing delta later on.
    """
    service = RecommendationService(ServiceConfig(
        use_scheduler=False, min_score=1e-6,
    ))
    for group in ((0, 1, 2), (5, 6, 7)):
        for u in group:
            for v in group:
                if u != v:
                    service.add_follow(u, v)
    for target in (5, 6, 7):
        service.add_follow(8, target)
    service.post_tweet(tweet_id=100, author=9, at=0.0)
    service.post_tweet(tweet_id=101, author=9, at=1.0)
    service.post_tweet(tweet_id=300, author=9, at=2.0)
    service.post_tweet(tweet_id=301, author=9, at=3.0)
    at = 10.0
    for tid in (100, 101):
        for user in (0, 1, 2):
            service.retweet(user=user, tweet=tid, at=at)
            at += 1.0
    for tid in (300, 301):
        for user in (5, 6, 7):
            service.retweet(user=user, tweet=tid, at=at)
            at += 1.0
    service.rebuild("from scratch")
    service.post_tweet(tweet_id=200, author=9, at=50.0)
    service.post_tweet(tweet_id=201, author=9, at=51.0)
    return service


class TestScopedWarmInvalidation:
    def warmed(self):
        """Service with warm propagation state for tweets 200 and 201
        and *no* pending dirt (the warming retweets are consumed by a
        delta rebuild, then replayed as duplicates)."""
        service = two_group_service()
        service.retweet(user=0, tweet=200, at=60.0)
        service.retweet(user=5, tweet=201, at=61.0)
        service.rebuild("delta")
        service.retweet(user=0, tweet=200, at=70.0)
        service.retweet(user=5, tweet=201, at=71.0)
        assert not service.profiles.has_dirty
        assert set(service._warm.tweets()) >= {200, 201}
        return service

    def test_weights_only_delta_evicts_only_affected_group(self):
        service = self.warmed()
        # User 1 joins tweet 200: dirt confined to the first group.
        service.retweet(user=1, tweet=200, at=80.0)
        service.rebuild("delta")
        cached = set(service._warm.tweets())
        assert 200 not in cached
        assert 201 in cached
        counters = service.metrics_snapshot()["counters"]
        assert counters.get("maintenance.cache_invalidations", 0) >= 1

    def test_topology_changing_delta_flushes_everything(self):
        service = self.warmed()
        # User 8 gains its first profile overlap with group two: new
        # SimGraph edges appear, so every warm entry is dropped.
        service.retweet(user=8, tweet=300, at=80.0)
        service.rebuild("delta")
        assert service._warm.tweets() == ()

    def test_non_delta_rebuild_flushes_everything(self):
        service = self.warmed()
        service.rebuild("from scratch")
        assert service._warm.tweets() == ()

    def test_noop_delta_keeps_warm_state(self):
        service = self.warmed()
        before = service._warm.tweets()
        service.rebuild("delta")
        assert service._warm.tweets() == before


class TestMaintenance:
    def test_explicit_rebuild(self):
        service = warm_service()
        before = service.stats.rebuilds
        graph = service.rebuild("from scratch")
        assert service.stats.rebuilds == before + 1
        assert graph.edge_count > 0
        assert service.simgraph is graph

    def test_unknown_strategy_rejected(self):
        service = warm_service()
        with pytest.raises(ConfigError):
            service.rebuild("bogus")

    def test_periodic_rebuild_triggers(self):
        service = warm_service(rebuild_interval=100.0)
        before = service.stats.rebuilds
        service.retweet(user=0, tweet=200, at=5000.0)
        assert service.stats.rebuilds > before

    def test_crossfold_rebuild_runs_on_previous_graph(self):
        service = warm_service()
        service.rebuild("from scratch")
        refreshed = service.rebuild("crossfold")
        assert refreshed.node_count > 0
