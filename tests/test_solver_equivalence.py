"""Cross-solver equivalence for the §5.2 linear system.

Jacobi, Gauss-Seidel, SOR and the direct sparse LU factorization must
agree — on the paper's Figure 6 example (with the Example 4.3 / 5.1
golden values checked to the digit), on random SimGraphs, and on the two
batch paths (``solve_many_jacobi`` and ``solve_many_direct``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.linear import LinearSystem
from repro.core.simgraph import SimGraph
from repro.graph.digraph import DiGraph

from tests.conftest import U, V, W, X, Y

METHODS = ("solve_direct", "solve_jacobi", "solve_gauss_seidel", "solve_sor")

#: Fixpoint after x shares t1 on the Figure 6 graph: Example 4.3 gives
#: p(w) = (1 * 0.5 + 0 * 0.1) / 2 = 0.25, Example 5.1 continues with
#: p(u) = (0 * 0.3 + 0.25 * 0.5) / 2 = 0.0625; v and y have no inbound
#: influence from the seed and stay at 0.
GOLDEN = {X: 1.0, W: 0.25, U: 0.0625, V: 0.0, Y: 0.0}


class TestPaperExampleGolden:
    @pytest.mark.parametrize("method", METHODS)
    def test_golden_values_to_the_digit(self, paper_example, method):
        system = LinearSystem(paper_example)
        stats = getattr(system, method)(seeds=[X])
        for user, expected in GOLDEN.items():
            assert stats.probabilities.get(user, 0.0) == pytest.approx(
                expected, abs=1e-9
            )

    def test_all_solvers_pairwise_agree(self, paper_example):
        system = LinearSystem(paper_example)
        solutions = [
            getattr(system, method)(seeds=[X]).probabilities
            for method in METHODS
        ]
        users = set().union(*solutions)
        for solved in solutions[1:]:
            for user in users:
                assert solved.get(user, 0.0) == pytest.approx(
                    solutions[0].get(user, 0.0), abs=1e-8
                )


class TestBatchPathsAgree:
    SEED_SETS = [{X}, {W}, {X, U}, {V, Y}, set()]

    def test_batch_direct_matches_singles(self, paper_example):
        system = LinearSystem(paper_example)
        batch = system.solve_many_direct(self.SEED_SETS)
        for seeds, solved in zip(self.SEED_SETS, batch):
            single = system.solve_direct(seeds).probabilities
            assert set(solved) == set(single)
            for user, p in single.items():
                assert solved[user] == pytest.approx(p, abs=1e-10)

    def test_batch_direct_matches_batch_jacobi(self, paper_example):
        system = LinearSystem(paper_example)
        direct = system.solve_many_direct(self.SEED_SETS)
        jacobi = system.solve_many_jacobi(self.SEED_SETS)
        for direct_solved, jacobi_solved in zip(direct, jacobi):
            for user in set(direct_solved) | set(jacobi_solved):
                assert direct_solved.get(user, 0.0) == pytest.approx(
                    jacobi_solved.get(user, 0.0), abs=1e-8
                )


@st.composite
def random_simgraph(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.05, max_value=0.95),
            ).filter(lambda e: e[0] != e[1]),
            max_size=20,
        )
    )
    graph = DiGraph()
    graph.add_nodes(range(n))
    for u, v, w in edges:
        graph.add_edge(u, v, weight=w)
    seeds = draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=2))
    return SimGraph(graph, tau=0.0), seeds


@settings(max_examples=40, deadline=None)
@given(random_simgraph())
def test_solvers_agree_on_random_simgraphs(data):
    """All four solvers converge to the same fixpoint on any SimGraph."""
    simgraph, seeds = data
    system = LinearSystem(simgraph)
    solutions = [
        getattr(system, method)(seeds).probabilities for method in METHODS
    ]
    users = set().union(*solutions)
    for solved in solutions[1:]:
        for user in users:
            assert solved.get(user, 0.0) == pytest.approx(
                solutions[0].get(user, 0.0), abs=1e-7
            )


@settings(max_examples=25, deadline=None)
@given(random_simgraph())
def test_batch_direct_matches_singles_on_random_simgraphs(data):
    simgraph, seeds = data
    system = LinearSystem(simgraph)
    batch = system.solve_many_direct([seeds, set()])
    single = system.solve_direct(seeds).probabilities
    for user in set(batch[0]) | set(single):
        assert batch[0].get(user, 0.0) == pytest.approx(
            single.get(user, 0.0), abs=1e-9
        )
    assert batch[1] == {}
