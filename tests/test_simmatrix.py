"""Tests for repro.core.simmatrix (the vectorized sparse backend)."""

import numpy as np
import pytest

from repro.core.profiles import RetweetProfiles
from repro.core.similarity import similarities_from, similarity
from repro.core.simmatrix import (
    SimilarityMatrix,
    reachability_matrix,
    simgraph_edges,
)
from repro.graph.digraph import DiGraph
from repro.graph.traversal import k_hop_neighborhood


def random_digraph(n: int, edge_probability: float, seed: int) -> DiGraph:
    rng = np.random.default_rng(seed)
    graph = DiGraph()
    graph.add_nodes(range(n))
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def profiles_from(pairs) -> RetweetProfiles:
    profiles = RetweetProfiles()
    for user, tweet in pairs:
        profiles.add(user, tweet)
    return profiles


@pytest.fixture
def shared_profiles() -> RetweetProfiles:
    """Five users with overlapping profiles over six tweets."""
    return profiles_from(
        [(1, "a"), (1, "b"), (2, "a"), (2, "c"), (3, "b"), (3, "c"),
         (4, "d"), (5, "a"), (5, "b"), (5, "e")]
    )


class TestSimilarityMatrix:
    def test_matches_reference_similarities_from(self, shared_profiles):
        matrix = SimilarityMatrix(shared_profiles)
        for u in shared_profiles.users():
            reference = similarities_from(shared_profiles, u)
            vectorized = matrix.similarities_from(u)
            assert set(vectorized) == set(reference)
            for v, score in reference.items():
                assert vectorized[v] == pytest.approx(score, abs=1e-12)

    def test_candidate_restriction(self, shared_profiles):
        matrix = SimilarityMatrix(shared_profiles)
        scores = matrix.similarities_from(1, candidates={2})
        assert set(scores) == {2}
        assert scores[2] == pytest.approx(similarity(shared_profiles, 1, 2))

    def test_unknown_user_empty(self, shared_profiles):
        assert SimilarityMatrix(shared_profiles).similarities_from(99) == {}

    def test_extra_user_without_profile_scores_nothing(self, shared_profiles):
        matrix = SimilarityMatrix(shared_profiles, extra_users=[42])
        assert 42 in matrix
        assert matrix.similarities_from(42) == {}
        assert 42 not in matrix.similarities_from(1)

    def test_similarity_rows_excludes_self(self, shared_profiles):
        matrix = SimilarityMatrix(shared_profiles)
        users = sorted(shared_profiles.users())
        rows = matrix.similarity_rows(users)
        assert rows.shape == (len(users), matrix.user_count)
        dense = rows.toarray()
        for r, u in enumerate(users):
            assert dense[r, matrix.position(u)] == 0.0

    def test_empty_inputs(self):
        empty = SimilarityMatrix(RetweetProfiles())
        assert empty.user_count == 0
        assert empty.similarity_rows([]).shape == (0, 0)

    def test_position_roundtrip(self, shared_profiles):
        matrix = SimilarityMatrix(shared_profiles)
        for u in shared_profiles.users():
            assert matrix.user_at(matrix.position(u)) == u
        positions = np.array([matrix.position(u) for u in (1, 3, 5)])
        assert matrix.users_at(positions) == [1, 3, 5]


class TestReachabilityMatrix:
    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_matches_bfs_khop(self, hops):
        graph = random_digraph(40, edge_probability=0.08, seed=3)
        index = {u: i for i, u in enumerate(sorted(graph.nodes()))}
        users = sorted(graph.nodes())
        reach = reachability_matrix(graph, hops, index, len(users))
        for u in users:
            row = reach.getrow(index[u])
            reached = {users[c] for c in row.indices}
            assert reached == k_hop_neighborhood(graph, u, hops)

    def test_empty_graph(self):
        reach = reachability_matrix(DiGraph(), 2, {}, 0)
        assert reach.shape == (0, 0)

    def test_cycle_excludes_source(self):
        graph = DiGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        index = {0: 0, 1: 1}
        reach = reachability_matrix(graph, 2, index, 2)
        # 0 -> 1 -> 0 closes a cycle, but N2(0) never contains 0 itself.
        assert reach[0, 0] == 0.0
        assert reach[0, 1] == 1.0


class TestSimgraphEdges:
    def test_matches_reference_builder_loop(self, shared_profiles):
        graph = DiGraph()
        for u, v in [(1, 2), (2, 3), (3, 5), (1, 4), (5, 1)]:
            graph.add_edge(u, v)
        from repro.core.simgraph import SimGraphBuilder

        builder = SimGraphBuilder(tau=0.0, hops=2)
        expected = {
            u: builder.edges_for_user(u, graph, shared_profiles)
            for u in graph.nodes()
        }
        expected = {u: kept for u, kept in expected.items() if kept}
        actual = dict(
            simgraph_edges(
                graph, shared_profiles, list(graph.nodes()), tau=0.0, hops=2
            )
        )
        assert set(actual) == set(expected)
        for u, kept in expected.items():
            assert set(actual[u]) == set(kept)
            for v, score in kept.items():
                assert actual[u][v] == pytest.approx(score, abs=1e-12)

    def test_no_eligible_sources(self, shared_profiles):
        graph = DiGraph()
        graph.add_edge(100, 101)  # no profiles on these nodes
        assert simgraph_edges(graph, shared_profiles, [100, 101], tau=0.0) == []

    def test_small_chunks_equal_one_chunk(self, shared_profiles):
        graph = DiGraph()
        for u, v in [(1, 2), (2, 3), (3, 5), (1, 4), (5, 1)]:
            graph.add_edge(u, v)
        sources = list(graph.nodes())
        one = simgraph_edges(graph, shared_profiles, sources, tau=0.0)
        many = simgraph_edges(
            graph, shared_profiles, sources, tau=0.0, chunk_size=1
        )
        assert dict(one) == dict(many)
