"""Tests for repro.analysis.characterization."""

import pytest

from repro.analysis.characterization import characterize


@pytest.fixture(scope="module")
def report(small_dataset):
    return characterize(
        small_dataset, sample_size=40, min_retweets=3, path_sample_size=30
    )


class TestCharacterize:
    def test_all_sections_present(self, report):
        assert report.stats.tweet_count > 0
        assert report.table2
        assert len(report.table3) == 5
        assert report.simgraph.node_count > 0
        assert report.table4
        assert report.simgraph_paths

    def test_tau_override(self, small_dataset):
        strict = characterize(
            small_dataset, tau=0.9, sample_size=10, min_retweets=3,
            path_sample_size=10,
        )
        assert strict.simgraph.edge_count == 0

    def test_render_table1(self, report):
        rendered = report.render_table1()
        assert "Table 1" in rendered
        assert "# nodes" in rendered
        assert "400" in rendered

    def test_render_table2(self, report):
        rendered = report.render_table2()
        assert "Distance" in rendered
        assert "Average similarity" in rendered

    def test_render_table3(self, report):
        rendered = report.render_table3()
        assert "Rank" in rendered
        assert "Average Distance" in rendered

    def test_render_table4(self, report):
        rendered = report.render_table4()
        assert "Nb of nodes" in rendered
        assert "Mean Similarity Score" in rendered
