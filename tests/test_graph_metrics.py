"""Tests for repro.graph.metrics."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.metrics import (
    GraphSummary,
    degree_arrays,
    path_length_sample,
    summarize_graph,
)


def cycle_graph(n: int) -> DiGraph:
    g = DiGraph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


class TestDegreeArrays:
    def test_cycle_degrees(self):
        out_deg, in_deg = degree_arrays(cycle_graph(5))
        assert out_deg.tolist() == [1] * 5
        assert in_deg.tolist() == [1] * 5

    def test_star_degrees(self):
        g = DiGraph()
        for leaf in range(1, 5):
            g.add_edge(0, leaf)
        out_deg, in_deg = degree_arrays(g)
        assert out_deg.max() == 4
        assert in_deg.max() == 1


class TestPathLengthSample:
    def test_full_coverage_when_small(self):
        # Sampling more sources than nodes means exact counts.
        counts = path_length_sample(cycle_graph(4), sample_size=100)
        # In a 4-cycle each source reaches 3 nodes at distances 1, 2, 3.
        assert counts == {1: 4, 2: 4, 3: 4}

    def test_empty_graph(self):
        assert path_length_sample(DiGraph()) == {}

    def test_deterministic_under_seed(self):
        g = cycle_graph(30)
        a = path_length_sample(g, sample_size=5, seed=1)
        b = path_length_sample(g, sample_size=5, seed=1)
        assert a == b

    def test_no_zero_distance(self):
        counts = path_length_sample(cycle_graph(6))
        assert 0 not in counts


class TestSummarizeGraph:
    def test_cycle_summary(self):
        summary = summarize_graph(cycle_graph(6), sample_size=10)
        assert summary.node_count == 6
        assert summary.edge_count == 6
        assert summary.mean_out_degree == pytest.approx(1.0)
        assert summary.diameter == 5
        assert summary.mean_path_length == pytest.approx(3.0)

    def test_empty_graph_summary(self):
        summary = summarize_graph(DiGraph())
        assert summary.node_count == 0
        assert summary.diameter == 0

    def test_edgeless_graph(self):
        g = DiGraph()
        g.add_nodes(range(4))
        summary = summarize_graph(g)
        assert summary.mean_path_length == 0.0
        assert summary.max_out_degree == 0

    def test_rows_order_matches_table1(self):
        summary = summarize_graph(cycle_graph(4), sample_size=10)
        labels = [label for label, _ in summary.rows()]
        assert labels == [
            "# nodes",
            "# edges",
            "avg. out-deg.",
            "avg. in-deg.",
            "max out-deg.",
            "max in-deg.",
            "diameter",
            "avg. path length",
        ]

    def test_summary_is_frozen(self):
        summary = summarize_graph(cycle_graph(3), sample_size=5)
        with pytest.raises(AttributeError):
            summary.node_count = 7  # type: ignore[misc]


class TestOnSyntheticGraph:
    def test_small_world_shape(self, small_dataset):
        """The generated follow graph must be small-world (paper Table 1)."""
        summary = summarize_graph(small_dataset.follow_graph, sample_size=60)
        assert summary.node_count == 400
        # Mean shortest path well below log-scale bound, diameter modest.
        assert 1.5 < summary.mean_path_length < 6.0
        assert summary.diameter <= 15

    def test_heavy_tailed_degrees(self, small_dataset):
        out_deg, in_deg = degree_arrays(small_dataset.follow_graph)
        # Max degree far above the mean in both directions.
        assert out_deg.max() > 4 * out_deg.mean()
        assert in_deg.max() > 3 * in_deg.mean()
