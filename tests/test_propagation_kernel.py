"""Unit tests of the kernel seam: mode resolution, graceful fallback,
backend enumeration, observability and the top-k API surface.

The differential guarantees live in ``test_propagation_differential``
and ``test_kernel_pruning``; this file covers the plumbing around the
kernel — how ``prop_backend="numba"``/``"auto"`` resolve with and
without an importable numba, what the obs registry records, and the
error messages users see.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import (
    CSRPropagationEngine,
    NumbaPropagationEngine,
    SimGraphRecommender,
    make_propagation_engine,
)
from repro.core import propagation_kernel as pk
from repro.core.simgraph import SimGraph
from repro.graph.digraph import DiGraph
from repro.obs import MetricsRegistry


def small_graph():
    """Seed 0 feeds mid users 1-4, which feed leaf sinks 10-19.

    The leaves appear in no row (out-degree 0 in the influence
    direction) and carry tiny upper bounds, so a top-k run over this
    graph prunes them once the mid users establish the cutoff.
    """
    graph = DiGraph()
    graph.add_nodes(range(5))
    graph.add_nodes(range(10, 20))
    for mid in range(1, 5):
        graph.add_edge(mid, 0, weight=0.5 + mid / 10.0)
    for leaf in range(10, 20):
        graph.add_edge(leaf, 1 + leaf % 4, weight=0.02)
    return SimGraph(graph, tau=0.0)


class TestKernelMode:
    def test_forced_python(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROP_KERNEL", "python")
        assert pk.kernel_mode() == "python"

    def test_forced_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROP_KERNEL", "off")
        assert pk.kernel_mode() == "off"

    def test_without_numba(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROP_KERNEL", raising=False)
        monkeypatch.setattr(pk, "NUMBA_AVAILABLE", False)
        assert pk.kernel_mode() == "off"

    def test_with_numba(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROP_KERNEL", raising=False)
        monkeypatch.setattr(pk, "NUMBA_AVAILABLE", True)
        monkeypatch.setattr(pk, "_JIT_BROKEN", False)
        assert pk.kernel_mode() == "jit"

    def test_broken_jit_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROP_KERNEL", raising=False)
        monkeypatch.setattr(pk, "NUMBA_AVAILABLE", True)
        monkeypatch.setattr(pk, "_JIT_BROKEN", True)
        assert pk.kernel_mode() == "off"

    def test_get_impls_jit_requires_numba(self, monkeypatch):
        monkeypatch.setattr(pk, "NUMBA_AVAILABLE", False)
        with pytest.raises(RuntimeError, match="not importable"):
            pk.get_impls(jit=True)
        impls, jitted = pk.get_impls(jit=False)
        assert not jitted
        assert set(impls) == {"fixpoint", "fixpoint_many", "row_values"}


class TestResolution:
    def test_auto_prefers_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROP_KERNEL", "python")
        assert pk.resolve_prop_backend("auto") == "numba"

    def test_auto_degrades_silently(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROP_KERNEL", "off")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert pk.resolve_prop_backend("auto") == "csr"

    def test_explicit_numba_falls_back_with_warning_and_counter(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PROP_KERNEL", "off")
        registry = MetricsRegistry()
        with pytest.warns(RuntimeWarning, match="falling back"):
            resolved = pk.resolve_prop_backend("numba", metrics=registry)
        assert resolved == "csr"
        snapshot = registry.snapshot()["counters"]
        assert snapshot["prop.kernel.fallback"] == 1

    def test_concrete_backends_pass_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROP_KERNEL", "off")
        assert pk.resolve_prop_backend("reference") == "reference"
        assert pk.resolve_prop_backend("csr") == "csr"

    def test_factory_fallback_returns_csr_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROP_KERNEL", "off")
        with pytest.warns(RuntimeWarning):
            engine = make_propagation_engine(
                small_graph(), prop_backend="numba"
            )
        assert type(engine) is CSRPropagationEngine

    def test_factory_builds_kernel_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROP_KERNEL", "python")
        for requested in ("numba", "auto"):
            engine = make_propagation_engine(
                small_graph(), prop_backend=requested
            )
            assert isinstance(engine, NumbaPropagationEngine)
            assert not engine.jitted


class TestErrors:
    def test_unknown_backend_enumerates_availability(self):
        with pytest.raises(ValueError) as excinfo:
            make_propagation_engine(small_graph(), prop_backend="bogus")
        message = str(excinfo.value)
        assert "'bogus'" in message
        for name in ("reference", "csr", "numba", "auto"):
            assert name in message

    def test_unknown_backend_reflects_runtime_state(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROP_KERNEL", "python")
        described = pk.describe_backends()
        assert "pure-python kernels" in described
        monkeypatch.setenv("REPRO_PROP_KERNEL", "off")
        assert "unavailable" in pk.describe_backends()

    def test_recommender_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="available:"):
            SimGraphRecommender(prop_backend="bogus")

    def test_topk_rejects_bad_k(self):
        engine = NumbaPropagationEngine(small_graph())
        with pytest.raises(ValueError, match="k must be"):
            engine.propagate_topk([0], k=0)


class TestObservability:
    def test_kernel_run_metrics(self):
        registry = MetricsRegistry()
        engine = NumbaPropagationEngine(small_graph(), metrics=registry)
        engine.propagate([0])
        engine.propagate_many([{0}, {0, 1}])
        snapshot = registry.snapshot()
        assert snapshot["counters"]["prop.kernel.runs"] == 3
        assert snapshot["counters"]["propagation.runs"] == 3
        assert "prop.kernel.rounds" in snapshot["histograms"]

    def test_pruned_counter(self):
        registry = MetricsRegistry()
        engine = NumbaPropagationEngine(small_graph(), metrics=registry)
        ranked, _ = engine.propagate_topk([0], k=2)
        pruned = engine.take_pruned()
        assert pruned, "the two-wave graph must trigger pruning"
        assert set(pruned) <= set(range(10, 20))
        assert [user for user, _ in ranked] == [4, 3]
        snapshot = registry.snapshot()["counters"]
        assert snapshot["prop.kernel.pruned"] == len(pruned)

    def test_compile_gauge_stripped_under_deterministic_snapshot(self):
        """The compile-time gauge follows the timing convention: present
        in raw snapshots, stripped from deterministic ones."""
        registry = MetricsRegistry()
        registry.gauge("prop.kernel.compile_seconds", timing=True).set(0.5)
        assert (
            "prop.kernel.compile_seconds" in registry.snapshot()["gauges"]
        )
        deterministic = registry.snapshot(deterministic=True)["gauges"]
        assert "prop.kernel.compile_seconds" not in deterministic

    def test_deterministic_snapshot_keeps_kernel_counters(self):
        registry = MetricsRegistry()
        engine = NumbaPropagationEngine(small_graph(), metrics=registry)
        engine.propagate_topk([0], k=2)
        deterministic = registry.snapshot(deterministic=True)["counters"]
        assert deterministic["prop.kernel.runs"] == 1
        assert deterministic["prop.kernel.pruned"] >= 1


class TestTopK:
    def test_exact_on_two_wave_graph(self):
        simgraph = small_graph()
        engine = NumbaPropagationEngine(simgraph)
        ranked, result = engine.propagate_topk([0], k=3)
        from repro.core import PropagationEngine

        reference = PropagationEngine(simgraph).propagate([0])
        expected = sorted(
            (
                (user, score)
                for user, score in reference.probabilities.items()
                if user != 0
            ),
            key=lambda item: (-item[1], item[0]),
        )[:3]
        assert ranked == expected

    def test_min_score_floor_prunes_harder(self):
        simgraph = small_graph()
        floored = NumbaPropagationEngine(simgraph)
        floored.propagate_topk([0], k=30, min_score=0.5)
        unfloored = NumbaPropagationEngine(simgraph)
        unfloored.propagate_topk([0], k=30)
        # k exceeds the candidate count, so only the floor can prune.
        assert unfloored.take_pruned() == []
        assert len(floored.take_pruned()) == 10
