"""Chunked streaming synthesis: ordering, determinism, frame sanity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth import (
    ChunkedGenerator,
    SynthConfig,
    generate_dataset_chunked,
    sample_follow_edges,
)
from repro.synth.config import DAY, HOUR

CONFIG = SynthConfig(n_users=300, seed=13)


@pytest.fixture(scope="module")
def generator():
    return ChunkedGenerator(CONFIG, window=DAY)


@pytest.fixture(scope="module")
def chunks(generator):
    return list(generator.chunks())


class TestChunkStream:
    def test_chunks_are_time_ordered(self, chunks):
        last = -1.0
        for chunk in chunks:
            assert np.all(np.diff(chunk.times) >= 0)
            assert chunk.times.min() >= last
            last = chunk.times.max()

    def test_events_inside_window(self, chunks):
        for chunk in chunks:
            assert chunk.start < chunk.end
            assert chunk.times.min() >= chunk.start
            assert chunk.times.max() < chunk.end

    def test_events_never_precede_creation(self, generator, chunks):
        created = generator.frame.tweet_times
        for chunk in chunks:
            assert np.all(chunk.times >= created[chunk.tweets])

    def test_stream_is_deterministic(self, chunks):
        replay = list(ChunkedGenerator(CONFIG, window=DAY).chunks())
        assert len(replay) == len(chunks)
        for a, b in zip(chunks, replay):
            assert np.array_equal(a.users, b.users)
            assert np.array_equal(a.tweets, b.tweets)
            assert np.array_equal(a.times, b.times)

    def test_window_changes_chunking_not_events(self, chunks):
        fine = list(ChunkedGenerator(CONFIG, window=6 * HOUR).chunks())
        coarse_users = np.concatenate([c.users for c in chunks])
        fine_users = np.concatenate([c.users for c in fine])
        assert np.array_equal(coarse_users, fine_users)
        assert len(fine) >= len(chunks)

    def test_function_wrapper(self):
        total = sum(len(c) for c in generate_dataset_chunked(CONFIG))
        assert total > 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            ChunkedGenerator(CONFIG, window=0.0)


class TestColumnarSink:
    def test_to_columnar_is_valid(self, chunks):
        dataset = ChunkedGenerator(CONFIG, window=DAY).to_columnar()
        dataset.validate()
        assert dataset.user_count == CONFIG.n_users
        assert dataset.retweet_count == sum(len(c) for c in chunks)
        # Retweeters are homophilous enough to have >= 2-retweet tweets.
        assert dataset.tweets_with_min_retweets()


class TestFrame:
    def test_alignment_shape_and_range(self, generator):
        alignment = generator.frame.alignment
        assert alignment.shape == (CONFIG.n_users, CONFIG.n_topics)
        assert alignment.dtype == np.float32
        assert float(alignment.min()) >= 0.0
        assert float(alignment.max()) <= 1.0

    def test_every_community_inhabited(self, generator):
        assert len(np.unique(generator.frame.communities)) == (
            CONFIG.n_communities
        )

    def test_tweets_creation_ordered(self, generator):
        assert np.all(np.diff(generator.frame.tweet_times) >= 0)

    def test_topics_in_range(self, generator):
        topics = generator.frame.tweet_topics
        assert topics.min() >= 0
        assert topics.max() < CONFIG.n_topics


class TestFollowEdgeSampler:
    def test_edges_clean(self):
        rng = np.random.default_rng(3)
        out_degrees = np.full(500, 8)
        communities = rng.integers(0, 6, size=500)
        src, dst = sample_follow_edges(out_degrees, communities, 0.7, rng)
        assert np.all(src != dst)
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert len(pairs) == len(src)
        # Dedup can only shrink realized degree.
        assert len(src) <= 500 * 8
        assert len(src) > 0

    def test_community_bias_shows(self):
        rng = np.random.default_rng(5)
        communities = np.repeat(np.arange(4), 250)
        src, dst = sample_follow_edges(
            np.full(1000, 10), communities, 0.9, rng
        )
        same = (communities[src] == communities[dst]).mean()
        rng = np.random.default_rng(5)
        src0, dst0 = sample_follow_edges(
            np.full(1000, 10), communities, 0.0, rng
        )
        same0 = (communities[src0] == communities[dst0]).mean()
        assert same > same0 + 0.3

    def test_heavy_tailed_in_degree(self):
        rng = np.random.default_rng(11)
        src, dst = sample_follow_edges(
            np.full(2000, 10), np.zeros(2000, dtype=np.int64), 0.5, rng
        )
        in_degree = np.bincount(dst, minlength=2000)
        # A Zipf-attractiveness target distribution concentrates edges:
        # the top 1% of accounts hold far more than 1% of the edges.
        top = np.sort(in_degree)[-20:].sum()
        assert top / in_degree.sum() > 0.05
        assert in_degree.max() > 5 * np.median(in_degree[in_degree > 0])

    def test_empty_inputs(self):
        rng = np.random.default_rng(1)
        src, dst = sample_follow_edges(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 0.5, rng
        )
        assert len(src) == 0 and len(dst) == 0
