"""Tests for repro.core.simgraph (paper Definition 4.1 / Table 4)."""

import pytest

from repro.core.profiles import RetweetProfiles
from repro.core.simgraph import SimGraph, SimGraphBuilder
from repro.data.builders import DatasetBuilder
from repro.graph.digraph import DiGraph


def linear_world():
    """0 -> 1 -> 2 -> 3 follow chain; 0, 2 and 3 co-retweet tweet 0."""
    dataset = (
        DatasetBuilder()
        .with_users(4)
        .follow_chain(0, 1, 2, 3)
        .tweet(author=1, at=0.0, tweet_id=0)
        .retweet(user=0, tweet=0, at=1.0)
        .retweet(user=2, tweet=0, at=2.0)
        .retweet(user=3, tweet=0, at=3.0)
        .build()
    )
    profiles = RetweetProfiles(dataset.retweets())
    return dataset, profiles


class TestBuilderValidation:
    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            SimGraphBuilder(tau=-0.1)

    def test_zero_hops_rejected(self):
        with pytest.raises(ValueError):
            SimGraphBuilder(hops=0)

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            SimGraphBuilder(max_influencers=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SimGraphBuilder(backend="gpu")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            SimGraphBuilder(workers=0)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            SimGraphBuilder(chunk_size=0)


class TestVectorizedBackend:
    @pytest.mark.parametrize("kwargs", [{}, {"hops": 1}, {"max_influencers": 1}])
    def test_matches_reference(self, kwargs):
        dataset, profiles = linear_world()
        reference = SimGraphBuilder(tau=0.0, **kwargs).build(
            dataset.follow_graph, profiles
        )
        vectorized = SimGraphBuilder(
            tau=0.0, backend="vectorized", **kwargs
        ).build(dataset.follow_graph, profiles)
        assert set(vectorized.graph.edges()) == set(reference.graph.edges())

    def test_restricted_sources_match(self):
        dataset, profiles = linear_world()
        reference = SimGraphBuilder(tau=0.0).build(
            dataset.follow_graph, profiles, users=[2]
        )
        vectorized = SimGraphBuilder(tau=0.0, backend="vectorized").build(
            dataset.follow_graph, profiles, users=[2]
        )
        assert set(vectorized.graph.edges()) == set(reference.graph.edges())


class TestTwoHopSemantics:
    def test_edges_limited_to_n2(self):
        dataset, profiles = linear_world()
        simgraph = SimGraphBuilder(tau=0.0).build(
            dataset.follow_graph, profiles
        )
        # User 0 reaches N2(0) = {1, 2}. User 3 shares a retweet with 0
        # but sits at distance 3, so no edge 0 -> 3 may exist.
        assert simgraph.similarity(0, 2) > 0.0
        assert simgraph.similarity(0, 3) == 0.0

    def test_one_hop_builder(self):
        dataset, profiles = linear_world()
        simgraph = SimGraphBuilder(tau=0.0, hops=1).build(
            dataset.follow_graph, profiles
        )
        # N1(0) = {1}; user 1 never retweeted, so 0 has no edges at all.
        assert simgraph.influencer_count(0) == 0

    def test_tau_prunes_edges(self):
        dataset, profiles = linear_world()
        loose = SimGraphBuilder(tau=0.0).build(dataset.follow_graph, profiles)
        strict = SimGraphBuilder(tau=0.99).build(dataset.follow_graph, profiles)
        assert strict.edge_count < loose.edge_count
        assert strict.edge_count == 0

    def test_cold_users_have_no_edges(self):
        dataset, profiles = linear_world()
        simgraph = SimGraphBuilder(tau=0.0).build(
            dataset.follow_graph, profiles
        )
        # User 1 never retweeted: no out-edges.
        assert simgraph.influencer_count(1) == 0

    def test_edge_weights_are_similarities(self):
        from repro.core.similarity import similarity

        dataset, profiles = linear_world()
        simgraph = SimGraphBuilder(tau=0.0).build(
            dataset.follow_graph, profiles
        )
        for u, v, w in simgraph.graph.edges():
            assert w == pytest.approx(similarity(profiles, u, v))

    def test_users_parameter_restricts_sources(self):
        dataset, profiles = linear_world()
        simgraph = SimGraphBuilder(tau=0.0).build(
            dataset.follow_graph, profiles, users=[2]
        )
        assert all(u == 2 for u, _, _ in simgraph.graph.edges())

    def test_max_influencers_cap(self):
        dataset, profiles = linear_world()
        capped = SimGraphBuilder(tau=0.0, max_influencers=1).build(
            dataset.follow_graph, profiles
        )
        for user in capped.users():
            assert capped.influencer_count(user) <= 1


class TestSimGraphQueries:
    def test_influencers_and_influenced(self, paper_example):
        assert dict(paper_example.influencers(0)) == {1: 0.3, 2: 0.5}
        assert sorted(paper_example.influenced(4)) == [1, 2, 3]

    def test_missing_user(self, paper_example):
        assert paper_example.influencers(99) == ()
        assert paper_example.influenced(99) == ()
        assert paper_example.influencer_count(99) == 0
        assert 99 not in paper_example

    def test_returns_are_immutable_snapshots(self, paper_example):
        """Regression: mutating a returned adjacency view must never
        corrupt graph state (the engines iterate these in hot loops)."""
        before_edges = paper_example.edge_count
        influencers = paper_example.influencers(0)
        influenced = paper_example.influenced(4)
        assert isinstance(influencers, tuple)
        assert isinstance(influenced, tuple)
        with pytest.raises(TypeError):
            influencers[0] = (99, 0.99)  # type: ignore[index]
        with pytest.raises(TypeError):
            influenced[0] = 99  # type: ignore[index]
        assert paper_example.edge_count == before_edges
        assert dict(paper_example.influencers(0)) == {1: 0.3, 2: 0.5}
        assert sorted(paper_example.influenced(4)) == [1, 2, 3]

    def test_similarity_lookup(self, paper_example):
        assert paper_example.similarity(0, 2) == 0.5
        assert paper_example.similarity(2, 0) == 0.0

    def test_mean_similarity(self, paper_example):
        weights = [0.3, 0.5, 0.5, 0.1, 0.4, 0.8]
        assert paper_example.mean_similarity() == pytest.approx(
            sum(weights) / len(weights)
        )

    def test_mean_similarity_empty(self):
        assert SimGraph(DiGraph(), tau=0.1).mean_similarity() == 0.0

    def test_table4_rows_labels(self, paper_example):
        labels = [label for label, _ in paper_example.table4_rows(sample_size=10)]
        assert labels == [
            "Nb of nodes",
            "Nb of edges",
            "Mean Similarity Score",
            "Mean out-degree",
            "Diameter",
            "Mean smallest path",
        ]


class TestOnSyntheticCorpus:
    def test_simgraph_smaller_than_follow_graph(self, small_dataset):
        """Paper Table 4: about half the users survive into SimGraph."""
        profiles = RetweetProfiles(small_dataset.retweets())
        simgraph = SimGraphBuilder(tau=0.001).build(
            small_dataset.follow_graph, profiles
        )
        assert 0 < simgraph.node_count <= small_dataset.user_count

    def test_longer_paths_than_follow_graph(self, small_dataset):
        """Paper: at comparable sparsity (their SimGraph has out-degree
        5.9 vs the crawl's 57.8) the SimGraph's mean path roughly doubles
        the follow graph's.  On a small dense corpus we match the sparse
        regime with an influencer cap."""
        from repro.graph.metrics import summarize_graph

        profiles = RetweetProfiles(small_dataset.retweets())
        simgraph = SimGraphBuilder(tau=0.001, max_influencers=4).build(
            small_dataset.follow_graph, profiles
        )
        follow = summarize_graph(small_dataset.follow_graph, sample_size=40)
        sim_summary = simgraph.summary(sample_size=40)
        assert sim_summary.mean_path_length > follow.mean_path_length
