"""Tests for repro.data.dataset."""

import pytest

from repro.data.dataset import TwitterDataset
from repro.data.models import Retweet, Tweet, User
from repro.exceptions import DatasetError


def make_base() -> TwitterDataset:
    ds = TwitterDataset()
    for i in range(3):
        ds.add_user(User(id=i))
    ds.add_tweet(Tweet(id=0, author=0, created_at=0.0))
    return ds


class TestRegistration:
    def test_duplicate_user_rejected(self):
        ds = make_base()
        with pytest.raises(DatasetError):
            ds.add_user(User(id=0))

    def test_duplicate_tweet_rejected(self):
        ds = make_base()
        with pytest.raises(DatasetError):
            ds.add_tweet(Tweet(id=0, author=1, created_at=0.0))

    def test_tweet_requires_known_author(self):
        ds = make_base()
        with pytest.raises(DatasetError):
            ds.add_tweet(Tweet(id=1, author=99, created_at=0.0))

    def test_follow_requires_known_users(self):
        ds = make_base()
        with pytest.raises(DatasetError):
            ds.add_follow(0, 99)
        with pytest.raises(DatasetError):
            ds.add_follow(99, 0)

    def test_retweet_requires_known_entities(self):
        ds = make_base()
        with pytest.raises(DatasetError):
            ds.add_retweet(Retweet(user=99, tweet=0, time=1.0))
        with pytest.raises(DatasetError):
            ds.add_retweet(Retweet(user=1, tweet=99, time=1.0))

    def test_retweet_before_creation_rejected(self):
        ds = make_base()
        with pytest.raises(DatasetError):
            ds.add_retweet(Retweet(user=1, tweet=0, time=-5.0))


class TestIndexes:
    def test_popularity_counts_distinct_users(self):
        ds = make_base()
        ds.add_retweet(Retweet(user=1, tweet=0, time=1.0))
        ds.add_retweet(Retweet(user=1, tweet=0, time=2.0))  # same user again
        ds.add_retweet(Retweet(user=2, tweet=0, time=3.0))
        assert ds.popularity(0) == 2
        assert ds.retweeters(0) == {1, 2}

    def test_raw_log_keeps_every_action(self):
        ds = make_base()
        ds.add_retweet(Retweet(user=1, tweet=0, time=1.0))
        ds.add_retweet(Retweet(user=1, tweet=0, time=2.0))
        assert ds.retweet_count == 2
        assert ds.user_retweet_count(1) == 2

    def test_profile(self):
        ds = make_base()
        ds.add_tweet(Tweet(id=1, author=1, created_at=0.0))
        ds.add_retweet(Retweet(user=2, tweet=0, time=1.0))
        ds.add_retweet(Retweet(user=2, tweet=1, time=2.0))
        assert ds.profile(2) == {0, 1}
        assert ds.profile(0) == set()

    def test_retweets_sorted_lazily(self):
        ds = make_base()
        ds.add_retweet(Retweet(user=1, tweet=0, time=5.0))
        ds.add_retweet(Retweet(user=2, tweet=0, time=1.0))
        times = [r.time for r in ds.retweets()]
        assert times == [1.0, 5.0]

    def test_unknown_popularity_zero(self):
        ds = make_base()
        assert ds.popularity(42) == 0


class TestDerivedViews:
    def test_tweets_with_min_retweets(self):
        ds = make_base()
        ds.add_tweet(Tweet(id=1, author=1, created_at=0.0))
        ds.add_retweet(Retweet(user=1, tweet=0, time=1.0))
        ds.add_retweet(Retweet(user=2, tweet=0, time=2.0))
        ds.add_retweet(Retweet(user=2, tweet=1, time=3.0))
        assert ds.tweets_with_min_retweets(2) == {0}
        assert ds.tweets_with_min_retweets(1) == {0, 1}

    def test_followees_and_followers(self):
        ds = make_base()
        ds.add_follow(0, 1)
        ds.add_follow(2, 1)
        assert ds.followees(0) == [1]
        assert sorted(ds.followers(1)) == [0, 2]

    def test_time_span(self):
        ds = make_base()
        ds.add_retweet(Retweet(user=1, tweet=0, time=99.0))
        assert ds.time_span() == (0.0, 99.0)

    def test_time_span_empty_rejected(self):
        with pytest.raises(DatasetError):
            TwitterDataset().time_span()

    def test_activity_class_delegates(self):
        ds = make_base()
        for t in range(5):
            if t > 0:
                ds.add_tweet(Tweet(id=t, author=0, created_at=0.0))
            ds.add_retweet(Retweet(user=1, tweet=t, time=1.0))
        assert ds.activity_class(1, low_max=3, moderate_max=10) == "moderate"
        assert ds.activity_class(2, low_max=3, moderate_max=10) == "low"


class TestValidate:
    def test_consistent_dataset_passes(self, tiny_dataset):
        tiny_dataset.validate()

    def test_counts(self, tiny_dataset):
        assert tiny_dataset.user_count == 5
        assert tiny_dataset.tweet_count == 2
        assert tiny_dataset.retweet_count == 5
