"""Tests for repro.core.delta — the scoped maintenance engine."""

import pytest

from repro.core import RetweetProfiles, SimGraphBuilder
from repro.core.delta import DeltaPlan, affected_region, apply_delta
from repro.graph import DiGraph
from repro.obs import MetricsRegistry


def follow_chain(*edges) -> DiGraph:
    graph = DiGraph()
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


class TestDirtyTracking:
    def test_fresh_profiles_are_fully_dirty(self):
        profiles = RetweetProfiles()
        profiles.add(1, 10)
        profiles.add(2, 10)
        assert profiles.dirty_users == {1, 2}
        assert profiles.dirty_tweets == {10}
        assert profiles.has_dirty

    def test_mark_clean_resets(self):
        profiles = RetweetProfiles()
        profiles.add(1, 10)
        profiles.mark_clean()
        assert not profiles.has_dirty
        assert profiles.dirty_users == frozenset()
        assert profiles.dirty_tweets == frozenset()

    def test_duplicate_retweet_stays_clean(self):
        profiles = RetweetProfiles()
        profiles.add(1, 10)
        profiles.mark_clean()
        profiles.add(1, 10)
        assert not profiles.has_dirty

    def test_new_retweet_dirties_user_and_tweet(self):
        profiles = RetweetProfiles()
        profiles.add(1, 10)
        profiles.add(2, 20)
        profiles.mark_clean()
        profiles.add(1, 20)
        assert profiles.dirty_users == {1}
        assert profiles.dirty_tweets == {20}


class TestAffectedRegion:
    def test_core_is_dirty_users_plus_coretweeters(self):
        # 1 and 2 co-retweet tweet 10; a fresh retweet by 3 of tweet 10
        # changes m(10), dragging 1 and 2 into the core as well.
        profiles = RetweetProfiles()
        for user in (1, 2):
            profiles.add(user, 10)
        profiles.mark_clean()
        profiles.add(3, 10)
        plan = affected_region(profiles, DiGraph())
        assert plan.dirty_users == {3}
        assert plan.dirty_tweets == {10}
        assert plan.core == {1, 2, 3}

    def test_fresh_tweet_keeps_core_small(self):
        profiles = RetweetProfiles()
        for user in (1, 2):
            profiles.add(user, 10)
        profiles.mark_clean()
        profiles.add(3, 99)  # fresh tweet: no co-retweeters to drag in
        plan = affected_region(profiles, DiGraph())
        assert plan.core == {3}

    def test_fringe_is_khop_in_neighbourhood(self):
        # 5 -> 4 -> 3(core): both 4 and 5 reach the core within 2 hops.
        graph = follow_chain((5, 4), (4, 3))
        profiles = RetweetProfiles()
        profiles.mark_clean()
        profiles.add(3, 10)
        plan = affected_region(profiles, graph, hops=2)
        assert plan.core == {3}
        assert plan.fringe == {4, 5}
        assert plan.needed == {3: {4, 5}}
        assert plan.candidates == {4: {3}, 5: {3}}

    def test_fringe_respects_hop_radius(self):
        graph = follow_chain((6, 5), (5, 4), (4, 3))
        profiles = RetweetProfiles()
        profiles.mark_clean()
        profiles.add(3, 10)
        plan = affected_region(profiles, graph, hops=2)
        assert 6 not in plan.fringe  # three hops away

    def test_core_users_never_in_fringe(self):
        graph = follow_chain((2, 1))
        profiles = RetweetProfiles()
        profiles.mark_clean()
        profiles.add(1, 10)
        profiles.add(2, 11)
        plan = affected_region(profiles, graph)
        assert plan.core == {1, 2}
        assert plan.fringe == frozenset()

    def test_extra_sources_join_core(self):
        profiles = RetweetProfiles()
        profiles.mark_clean()
        plan = affected_region(profiles, DiGraph(), extra_sources=[7])
        assert plan.core == {7}
        assert not plan.is_empty

    def test_empty_delta_is_empty_plan(self):
        profiles = RetweetProfiles()
        profiles.add(1, 10)
        profiles.mark_clean()
        plan = affected_region(profiles, DiGraph())
        assert plan.is_empty
        assert plan.affected == frozenset()

    def test_affected_is_core_union_fringe(self):
        graph = follow_chain((5, 4), (4, 3))
        profiles = RetweetProfiles()
        profiles.mark_clean()
        profiles.add(3, 10)
        plan = affected_region(profiles, graph)
        assert plan.affected == plan.core | plan.fringe

    def test_candidates_is_reverse_of_needed(self):
        needed = {1: {4, 5}, 2: {4}}
        plan = DeltaPlan(
            core=frozenset({1, 2}), fringe=frozenset({4, 5}),
            needed=needed, dirty_users=frozenset(),
            dirty_tweets=frozenset(),
        )
        assert plan.candidates == {4: {1, 2}, 5: {1}}


class TestApplyDelta:
    def build_world(self):
        graph = follow_chain((1, 2), (2, 1), (1, 3), (3, 1), (2, 3), (3, 2))
        profiles = RetweetProfiles()
        for user in (1, 2, 3):
            profiles.add(user, 10)
        builder = SimGraphBuilder(tau=1e-6)
        old = builder.build(graph, profiles)
        profiles.mark_clean()
        return graph, profiles, builder, old

    def test_empty_delta_returns_same_object(self):
        graph, profiles, builder, old = self.build_world()
        refreshed, report = apply_delta(old, graph, profiles, builder)
        assert refreshed is old
        assert report.noop
        assert report.core_size == 0
        assert not report.topology_changed
        assert report.changed_users == frozenset()

    def test_report_counts_match_plan(self):
        graph, profiles, builder, old = self.build_world()
        profiles.add(1, 99)
        plan = affected_region(profiles, graph, hops=builder.hops)
        refreshed, report = apply_delta(
            old, graph, profiles, builder, plan=plan
        )
        assert not report.noop
        assert report.core_size == len(plan.core)
        assert report.fringe_size == len(plan.fringe)
        assert report.rows_patched == len(plan.fringe)
        assert report.affected_users == plan.affected
        assert report.changed_users <= report.affected_users

    def test_weight_only_delta_not_topology_changed(self):
        # A fresh solo tweet only grows |L_1|: every pair keeps its
        # edge but re-weighs, so the topology is preserved.
        graph, profiles, builder, old = self.build_world()
        profiles.add(1, 99)
        refreshed, report = apply_delta(old, graph, profiles, builder)
        assert not report.topology_changed
        assert {(u, v) for u, v, _ in refreshed.graph.edges()} == {
            (u, v) for u, v, _ in old.graph.edges()
        }
        full = builder.build(graph, profiles)
        assert {(u, v, w) for u, v, w in refreshed.graph.edges()} == {
            (u, v, w) for u, v, w in full.graph.edges()
        }

    def test_edge_gain_flags_topology_changed(self):
        graph = follow_chain((1, 2), (2, 1))
        profiles = RetweetProfiles()
        profiles.add(1, 10)
        profiles.add(2, 20)
        builder = SimGraphBuilder(tau=1e-6)
        old = builder.build(graph, profiles)
        assert old.graph.edge_count == 0
        profiles.mark_clean()
        profiles.add(2, 10)  # first shared tweet: edges appear
        refreshed, report = apply_delta(old, graph, profiles, builder)
        assert report.topology_changed
        assert refreshed.graph.edge_count == 2

    def test_old_graph_is_not_mutated(self):
        graph, profiles, builder, old = self.build_world()
        before = sorted(old.graph.edges())
        profiles.add(1, 99)
        refreshed, _ = apply_delta(old, graph, profiles, builder)
        assert refreshed is not old
        assert sorted(old.graph.edges()) == before

    def test_metrics_counters_fire(self):
        graph, profiles, builder, old = self.build_world()
        profiles.add(1, 99)
        metrics = MetricsRegistry()
        apply_delta(old, graph, profiles, builder, metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["maintenance.dirty_users"] == 1
        assert snapshot["counters"]["maintenance.rows_recomputed"] >= 1
        assert snapshot["counters"]["maintenance.pairs_rescored"] >= 1

    def test_max_influencers_promotes_fringe(self):
        graph, profiles, builder, old = self.build_world()
        capped = SimGraphBuilder(tau=1e-6, max_influencers=1)
        old_capped = capped.build(graph, profiles)
        profiles.mark_clean()
        profiles.add(1, 99)
        refreshed, report = apply_delta(old_capped, graph, profiles, capped)
        # Fringe rows cannot be partially patched under a row cap.
        assert report.fringe_size == 0
        full = capped.build(graph, profiles)
        assert {(u, v) for u, v, _ in refreshed.graph.edges()} == {
            (u, v) for u, v, _ in full.graph.edges()
        }

    def test_dropped_user_prunes_isolated_nodes(self):
        graph = follow_chain((1, 2), (2, 1))
        profiles = RetweetProfiles()
        profiles.add(1, 10)
        profiles.add(2, 10)
        builder = SimGraphBuilder(tau=1e-6)
        old = builder.build(graph, profiles)
        assert set(old.graph.nodes()) == {1, 2}
        profiles.mark_clean()
        # Tweet 10 goes viral: m(10) explodes and the pair's similarity
        # collapses below any meaningful tau.
        strict = SimGraphBuilder(tau=0.5)
        old_strict = strict.build(graph, profiles)
        profiles.add(3, 10)
        refreshed, report = apply_delta(old_strict, graph, profiles, strict)
        full = strict.build(graph, profiles)
        assert set(refreshed.graph.nodes()) == set(full.graph.nodes())

    def test_tau_and_hops_inherited_from_old(self):
        graph, profiles, builder, old = self.build_world()
        profiles.add(1, 99)
        refreshed, _ = apply_delta(old, graph, profiles, builder)
        assert refreshed.tau == old.tau
