"""ColumnarDataset: protocol parity with TwitterDataset and array paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    ColumnarDataset,
    DatasetProtocol,
    Retweet,
    Tweet,
    TwitterDataset,
    User,
    temporal_split,
)
from repro.data.stats import retweets_per_tweet, retweets_per_user
from repro.exceptions import DatasetError
from repro.synth import SynthConfig, generate_dataset


@pytest.fixture(scope="module")
def object_dataset():
    return generate_dataset(SynthConfig(n_users=120, seed=9))


@pytest.fixture(scope="module")
def columnar(object_dataset):
    return ColumnarDataset.from_dataset(object_dataset)


class TestProtocolParity:
    """Every protocol query answers identically to the dict backend."""

    def test_satisfies_protocol(self, columnar, object_dataset):
        assert isinstance(columnar, DatasetProtocol)
        assert isinstance(object_dataset, DatasetProtocol)

    def test_counts(self, columnar, object_dataset):
        assert columnar.user_count == object_dataset.user_count
        assert columnar.tweet_count == object_dataset.tweet_count
        assert columnar.retweet_count == object_dataset.retweet_count

    def test_retweet_log_identical(self, columnar, object_dataset):
        assert columnar.retweets() == object_dataset.retweets()
        assert list(columnar.iter_retweets()) == object_dataset.retweets()

    def test_profiles_and_retweeters(self, columnar, object_dataset):
        for u in object_dataset.users:
            assert columnar.profile(u) == object_dataset.profile(u)
            assert columnar.user_retweet_count(u) == (
                object_dataset.user_retweet_count(u)
            )
            assert columnar.activity_class(u) == object_dataset.activity_class(u)
        for t in object_dataset.tweets:
            assert columnar.retweeters(t) == object_dataset.retweeters(t)
            assert columnar.popularity(t) == object_dataset.popularity(t)

    def test_follow_edges(self, columnar, object_dataset):
        for u in object_dataset.users:
            assert sorted(columnar.followees(u)) == sorted(
                object_dataset.followees(u)
            )
            assert sorted(columnar.followers(u)) == sorted(
                object_dataset.followers(u)
            )

    def test_follow_graph_materialization(self, columnar, object_dataset):
        g1, g2 = object_dataset.follow_graph, columnar.follow_graph
        assert g1.node_count == g2.node_count
        assert g1.edge_count == g2.edge_count
        assert sorted((u, v) for u, v, _ in g1.edges()) == sorted(
            (u, v) for u, v, _ in g2.edges()
        )

    def test_entity_mappings(self, columnar, object_dataset):
        uid = next(iter(object_dataset.users))
        tid = next(iter(object_dataset.tweets))
        assert columnar.users[uid] == object_dataset.users[uid]
        assert columnar.tweets[tid] == object_dataset.tweets[tid]
        assert len(columnar.users) == len(object_dataset.users)
        assert set(columnar.tweets) == set(object_dataset.tweets)
        assert columnar.users.get(-1) is None
        with pytest.raises(KeyError):
            columnar.users[-1]

    def test_min_retweets_and_span(self, columnar, object_dataset):
        assert columnar.tweets_with_min_retweets() == (
            object_dataset.tweets_with_min_retweets()
        )
        assert columnar.time_span() == object_dataset.time_span()

    def test_downstream_consumers_accept_it(self, columnar, object_dataset):
        """The split and stats layers run unchanged on the columnar
        backend and agree with the dict backend."""
        s1 = temporal_split(object_dataset)
        s2 = temporal_split(columnar)
        assert s1.train == s2.train and s1.test == s2.test
        assert sorted(retweets_per_tweet(columnar)) == sorted(
            retweets_per_tweet(object_dataset)
        )
        assert sorted(retweets_per_user(columnar)) == sorted(
            retweets_per_user(object_dataset)
        )

    def test_validate_passes(self, columnar):
        columnar.validate()


class TestArrayPaths:
    def test_array_views_sorted(self, columnar, object_dataset):
        uid = next(u for u in object_dataset.users if object_dataset.profile(u))
        row = columnar.profile_array(uid)
        assert row.dtype == np.int64
        assert np.all(np.diff(row) > 0)
        assert set(row.tolist()) == object_dataset.profile(uid)

    def test_retweet_arrays_chronological(self, columnar):
        _, _, times = columnar.retweet_arrays()
        assert np.all(np.diff(times) >= 0)

    def test_positions_roundtrip(self, columnar):
        uid = int(columnar.user_ids[0])
        positions = columnar.followees_positions(uid)
        assert columnar.user_ids[positions].tolist() == columnar.followees(uid)

    def test_nbytes_positive(self, columnar):
        assert columnar.nbytes() > 0


class TestConstruction:
    def _tiny_columns(self, **overrides):
        columns = dict(
            user_ids=np.array([1, 2, 3]),
            follow_src=np.array([1, 2]),
            follow_dst=np.array([2, 3]),
            tweet_ids=np.array([10]),
            tweet_authors=np.array([1]),
            tweet_times=np.array([5.0]),
            rt_users=np.array([2]),
            rt_tweets=np.array([10]),
            rt_times=np.array([6.0]),
        )
        columns.update(overrides)
        return columns

    def test_from_arrays(self):
        ds = ColumnarDataset.from_arrays(**self._tiny_columns())
        assert ds.user_count == 3
        assert ds.profile(2) == {10}
        assert ds.retweeters(10) == {2}
        assert ds.followees(1) == [2]

    def test_duplicate_user_ids_rejected(self):
        with pytest.raises(DatasetError, match="duplicate user"):
            ColumnarDataset.from_arrays(
                **self._tiny_columns(user_ids=np.array([1, 1, 3]))
            )

    def test_unknown_references_rejected(self):
        with pytest.raises(DatasetError, match="unknown follower"):
            ColumnarDataset.from_arrays(
                **self._tiny_columns(follow_src=np.array([1, 9]))
            )
        with pytest.raises(DatasetError, match="unknown retweeter"):
            ColumnarDataset.from_arrays(
                **self._tiny_columns(rt_users=np.array([9]))
            )
        with pytest.raises(DatasetError, match="unknown retweeted tweet"):
            ColumnarDataset.from_arrays(
                **self._tiny_columns(rt_tweets=np.array([99]))
            )

    def test_self_follow_rejected(self):
        with pytest.raises(DatasetError, match="self-follow"):
            ColumnarDataset.from_arrays(
                **self._tiny_columns(follow_dst=np.array([1, 3]))
            )

    def test_retweet_before_creation_rejected(self):
        with pytest.raises(DatasetError, match="precedes"):
            ColumnarDataset.from_arrays(
                **self._tiny_columns(rt_times=np.array([1.0]))
            )

    def test_duplicate_follow_edges_collapse(self):
        ds = ColumnarDataset.from_arrays(
            **self._tiny_columns(
                follow_src=np.array([1, 1, 2]),
                follow_dst=np.array([2, 2, 3]),
            )
        )
        assert ds.followees(1) == [2]

    def test_empty_dataset_round_trip(self):
        empty = TwitterDataset()
        empty.add_user(User(id=5))
        col = ColumnarDataset.from_dataset(empty)
        assert col.user_count == 1
        assert col.retweet_count == 0
        assert col.profile(5) == set()
        with pytest.raises(DatasetError, match="no timestamped"):
            col.time_span()

    def test_unknown_user_lookup_raises(self, columnar):
        with pytest.raises(DatasetError, match="unknown user"):
            columnar.followees(-5)

    def test_interests_preserved(self):
        ds = TwitterDataset()
        ds.add_user(User(id=1, community=2, interests=(0.25, 0.75)))
        ds.add_user(User(id=2))
        ds.add_tweet(Tweet(id=7, author=1, created_at=0.0))
        ds.add_retweet(Retweet(user=2, tweet=7, time=1.0))
        col = ColumnarDataset.from_dataset(ds)
        assert col.users[1].interests == (0.25, 0.75)
        assert col.users[1].community == 2
