"""Tests for repro.utils.powerlaw."""

import numpy as np
import pytest

from repro.utils.powerlaw import bounded_zipf, estimate_alpha, sample_bounded_zipf


class TestBoundedZipf:
    def test_pmf_sums_to_one(self):
        pmf = bounded_zipf(1.5, 1, 100)
        assert pmf.sum() == pytest.approx(1.0)

    def test_pmf_is_decreasing(self):
        pmf = bounded_zipf(2.0, 1, 50)
        assert (np.diff(pmf) < 0).all()

    def test_support_length(self):
        assert len(bounded_zipf(1.0, 3, 10)) == 8

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            bounded_zipf(1.5, 0, 10)
        with pytest.raises(ValueError):
            bounded_zipf(1.5, 10, 5)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            bounded_zipf(0.0, 1, 10)
        with pytest.raises(ValueError):
            bounded_zipf(-1.0, 1, 10)


class TestSampleBoundedZipf:
    def test_samples_within_support(self):
        rng = np.random.default_rng(0)
        samples = sample_bounded_zipf(rng, 1.8, 2, 30, size=500)
        assert samples.min() >= 2
        assert samples.max() <= 30

    def test_deterministic_under_seed(self):
        a = sample_bounded_zipf(np.random.default_rng(1), 1.5, 1, 100, 50)
        b = sample_bounded_zipf(np.random.default_rng(1), 1.5, 1, 100, 50)
        assert np.array_equal(a, b)

    def test_heavier_alpha_smaller_mean(self):
        rng = np.random.default_rng(2)
        light = sample_bounded_zipf(rng, 1.1, 1, 1000, 3000).mean()
        heavy = sample_bounded_zipf(rng, 2.5, 1, 1000, 3000).mean()
        assert heavy < light


class TestEstimateAlpha:
    def test_recovers_known_exponent(self):
        # The continuous-approximation MLE is biased at x_min = 1 for
        # discrete data, so estimate on the tail (x_min = 5), where the
        # approximation is accurate.
        rng = np.random.default_rng(3)
        samples = sample_bounded_zipf(rng, 2.0, 1, 10_000, size=40_000)
        estimate = estimate_alpha(samples.tolist(), x_min=5)
        assert estimate == pytest.approx(2.0, abs=0.25)

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            estimate_alpha([5])

    def test_filters_below_x_min(self):
        with pytest.raises(ValueError):
            estimate_alpha([1, 2, 3], x_min=10)

    def test_degenerate_sample_rejected(self):
        # All values exactly at x_min give a zero-denominator MLE.
        rng = np.random.default_rng(4)
        samples = sample_bounded_zipf(rng, 2.0, 5, 5000, size=5000)
        estimate = estimate_alpha(samples.tolist(), x_min=5)
        assert estimate > 1.0
