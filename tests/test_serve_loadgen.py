"""Load-generator unit tests: profiles, synthesis, reports, small runs.

The deterministic parts (arrival schedules, request synthesis, report
arithmetic) are pinned exactly; the wall-clock parts (``run_load``,
``measure_capacity``) are smoke-checked only — the latency/throughput
gates live in ``benchmarks/bench_serve_latency.py``.
"""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.serve import (
    LoadProfile,
    RunReport,
    ServeConfig,
    measure_capacity,
    prime_service,
    run_load,
    synth_requests,
)
from repro.service import ServiceConfig


def small_primed(**kwargs):
    defaults = {
        "config": ServiceConfig(use_scheduler=False, min_score=1e-6),
        "n_users": 40,
        "live_tweets": 10,
        "seed": 3,
    }
    defaults.update(kwargs)
    return prime_service(**defaults)


class TestLoadProfile:
    def test_steady_has_no_bursts(self):
        profile = LoadProfile.steady(rate=100.0)
        assert profile.name == "steady"
        assert not profile.is_burst(0.0)
        assert profile.rate_at(123.4) == 100.0

    def test_steady_arrivals_evenly_spaced(self):
        profile = LoadProfile.steady(rate=50.0)
        times = profile.arrival_times(5)
        assert times[0] == 0.0
        gaps = np.diff(times)
        assert np.allclose(gaps, 1.0 / 50.0)
        assert profile.mean_rate(5) == pytest.approx(50.0)

    def test_burst_windows_open_at_period_start(self):
        profile = LoadProfile.bursty(
            rate=10.0, burst_rate=100.0, burst_every=10.0, burst_length=2.0
        )
        assert profile.name == "burst"
        assert profile.is_burst(0.0)
        assert profile.is_burst(1.999)
        assert not profile.is_burst(2.0)
        assert not profile.is_burst(9.999)
        assert profile.is_burst(10.0)
        assert profile.rate_at(0.5) == 100.0
        assert profile.rate_at(5.0) == 10.0

    def test_bursty_arrivals_denser_inside_window(self):
        profile = LoadProfile.bursty(
            rate=10.0, burst_rate=100.0, burst_every=10.0, burst_length=2.0
        )
        times = profile.arrival_times(250)
        in_burst = sum(profile.is_burst(t) for t in times)
        # 2s at 100/s then 8s at 10/s per period: bursts dominate counts.
        assert in_burst > len(times) / 2
        # Mean offered rate sits strictly between the two plateaus.
        assert 10.0 < profile.mean_rate(250) < 100.0

    def test_arrival_times_deterministic(self):
        profile = LoadProfile.bursty(rate=20.0, burst_rate=80.0)
        assert profile.arrival_times(64) == profile.arrival_times(64)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 0.0},
            {"rate": -5.0},
            {"rate": 10.0, "burst_rate": 10.0},
            {"rate": 10.0, "burst_rate": 5.0},
            {"rate": 10.0, "burst_rate": 20.0, "burst_every": 0.0},
            {"rate": 10.0, "burst_rate": 20.0, "burst_length": 0.0},
            {
                "rate": 10.0,
                "burst_rate": 20.0,
                "burst_every": 2.0,
                "burst_length": 2.0,
            },
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LoadProfile(**kwargs)


class TestSynthRequests:
    def test_deterministic_and_well_formed(self):
        primed = small_primed()
        first = synth_requests(primed, 30, seed=5)
        second = synth_requests(primed, 30, seed=5)
        assert first == second
        live = set(primed.live_tweets)
        users = set(primed.users)
        at = primed.t0
        for request in first:
            assert request.tweet in live
            assert request.user in users
            assert request.at == pytest.approx(at + 1.0)
            at = request.at

    def test_seed_changes_stream(self):
        primed = small_primed()
        assert synth_requests(primed, 30, seed=5) != synth_requests(
            primed, 30, seed=6
        )

    def test_burst_events_stick_to_hot_pool(self):
        primed = small_primed()
        flags = [True] * 40
        requests = synth_requests(
            primed, 40, seed=5, burst_flags=flags, hot_fraction=0.2
        )
        hot = set(primed.live_tweets[: max(1, len(primed.live_tweets) // 5)])
        assert all(r.tweet in hot for r in requests)

    def test_zero_skew_spreads_over_pool(self):
        primed = small_primed()
        requests = synth_requests(primed, 200, seed=5, popularity_skew=0.0)
        picked = {r.tweet for r in requests}
        # Uniform picks over a 10-tweet pool: 200 draws hit every tweet.
        assert picked == set(primed.live_tweets)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_events": 0},
            {"n_events": 10, "hot_fraction": 0.0},
            {"n_events": 10, "hot_fraction": 1.5},
            {"n_events": 10, "popularity_skew": -0.1},
        ],
    )
    def test_invalid_args_rejected(self, kwargs):
        primed = small_primed()
        with pytest.raises(ValueError):
            synth_requests(primed, **kwargs)


class TestRunReport:
    def test_percentiles_match_numpy(self):
        samples = [0.001 * (i + 1) for i in range(200)]
        report = RunReport(
            offered_rate=100.0,
            duration_s=2.0,
            responses=200,
            dropped=0,
            statuses={"ok": 200},
            latencies={"ok": samples},
        )
        got = report.percentiles("ok")
        arr = np.asarray(samples)
        assert got["p50"] == pytest.approx(float(np.percentile(arr, 50)))
        assert got["p95"] == pytest.approx(float(np.percentile(arr, 95)))
        assert got["p99"] == pytest.approx(float(np.percentile(arr, 99)))

    def test_empty_status_class(self):
        report = RunReport(
            offered_rate=1.0, duration_s=1.0, responses=0, dropped=0
        )
        assert report.percentiles("ok") == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert report.fraction("ok") == 0.0
        assert report.achieved_eps == 0.0

    def test_to_dict_summary(self):
        report = RunReport(
            offered_rate=40.0,
            duration_s=2.0,
            responses=4,
            dropped=1,
            statuses={"ok": 3, "shed": 1},
            served_from={"full": 3, "none": 1},
            latencies={"ok": [0.01, 0.02, 0.03], "shed": [0.001]},
        )
        summary = report.to_dict()
        assert summary["responses"] == 4
        assert summary["dropped"] == 1
        assert summary["achieved_eps"] == pytest.approx(2.0)
        assert summary["fractions"]["ok"] == pytest.approx(0.75)
        assert summary["fractions"]["shed"] == pytest.approx(0.25)
        assert set(summary["latency"]) == {"ok", "shed"}
        assert summary["latency"]["ok"]["p50"] == pytest.approx(0.02)


class TestRuns:
    def test_run_load_smoke_zero_dropped(self):
        primed = small_primed()
        requests = synth_requests(primed, 25, seed=4)
        metrics = MetricsRegistry()
        report = run_load(
            primed.service,
            requests,
            LoadProfile.steady(rate=500.0),
            ServeConfig(max_batch=8),
            metrics,
        )
        assert report.dropped == 0
        assert report.responses == len(requests)
        assert sum(report.statuses.values()) == len(requests)
        assert report.duration_s > 0
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["serve.requests"] == len(requests)

    def test_measure_capacity_widens_restrictive_config(self):
        primed = small_primed()
        requests = synth_requests(primed, 20, seed=4)
        # Admission knobs tight enough to shed the whole pre-enqueued
        # stream; capacity measurement must neutralize them.
        eps, responses = measure_capacity(
            primed.service,
            requests,
            ServeConfig(max_batch=8, rate=1.0, shed_depth=2),
        )
        assert eps > 0
        assert len(responses) == len(requests)
        assert all(r.status == "ok" for r in responses)
