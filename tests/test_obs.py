"""Tests for repro.obs (metrics registry, null registry, report)."""

import json

import pytest

from repro.obs import (
    NULL,
    MetricsRegistry,
    NullRegistry,
    SNAPSHOT_SCHEMA,
    render_report,
    validate_snapshot,
)
from repro.utils.histogram import log_bucket_index


class TestCounterGauge:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5

    def test_gauge_set(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(7)
        reg.gauge("depth").set(3)
        assert reg.gauge("depth").value == 3

    def test_timing_gauge_flag_sticks(self):
        reg = MetricsRegistry()
        assert reg.gauge("rate", timing=True).timing is True
        # A later fetch without the flag returns the same metric.
        assert reg.gauge("rate").timing is True


class TestHistogram:
    def test_summary_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        for v in [1, 2, 4, 4]:
            h.observe(v)
        assert h.count == 4
        assert h.min == 1
        assert h.max == 4
        assert h.mean == pytest.approx(11 / 4)

    def test_buckets_match_shared_binning(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        values = [0, 1, 3, 5, 9, 100]
        for v in values:
            h.observe(v)
        snapshot = reg.snapshot()["histograms"]["sizes"]
        assert sum(snapshot["buckets"].values()) == len(values)
        # The zero bucket is separate from bucket 0 ([1, 2)).
        assert log_bucket_index(0) is None
        assert snapshot["buckets"]["0"] == 1

    def test_bad_base_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", base=1.0)

    def test_empty_histogram_mean(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestSpans:
    def test_nesting_builds_a_tree(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
            with reg.span("inner"):
                pass
        root = reg.span_root()
        outer = root.children["outer"]
        assert outer.calls == 1
        assert outer.children["inner"].calls == 2
        assert "inner" not in root.children  # nested, not top-level

    def test_same_name_different_parents_stay_separate(self):
        reg = MetricsRegistry()
        with reg.span("a"):
            with reg.span("x"):
                pass
        with reg.span("b"):
            with reg.span("x"):
                pass
        root = reg.span_root()
        assert root.children["a"].children["x"].calls == 1
        assert root.children["b"].children["x"].calls == 1

    def test_span_times_accumulate(self):
        reg = MetricsRegistry()
        for _ in range(3):
            with reg.span("s"):
                pass
        node = reg.span_root().children["s"]
        assert node.calls == 3
        assert node.total_s >= 0.0

    def test_stack_unwinds_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("boom"):
                raise RuntimeError("x")
        # The stack is back at the root: a new span is top-level again.
        with reg.span("after"):
            pass
        assert set(reg.span_root().children) == {"boom", "after"}


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.gauge("t", timing=True).set(123.4)
        reg.histogram("h").observe(3)
        reg.histogram("ht", timing=True).observe(0.017)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        return reg

    def test_snapshot_round_trips_through_json(self):
        snap = self._populated().snapshot()
        assert json.loads(json.dumps(snap)) == snap
        validate_snapshot(snap)

    def test_schema_tag(self):
        assert self._populated().snapshot()["schema"] == SNAPSHOT_SCHEMA

    def test_deterministic_strips_wall_clock(self):
        snap = self._populated().snapshot(deterministic=True)
        validate_snapshot(snap)
        assert snap["deterministic"] is True
        assert "t" not in snap["gauges"]  # timing gauge dropped
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["ht"] == {"count": 1, "timing": True}
        assert snap["histograms"]["h"]["mean"] == 3.0

        def assert_no_times(node):
            assert "total_s" not in node
            for child in node["children"]:
                assert_no_times(child)

        for node in snap["spans"]:
            assert_no_times(node)

    def test_deterministic_snapshots_compare_equal(self):
        a = self._populated().snapshot(deterministic=True)
        b = self._populated().snapshot(deterministic=True)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_reset_clears_everything(self):
        reg = self._populated()
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["spans"] == []


class TestNullRegistry:
    def test_null_records_nothing(self):
        reg = NullRegistry()
        reg.counter("c").inc(100)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(3)
        with reg.span("s"):
            pass
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}
        assert snap["spans"] == []

    def test_null_singletons_are_shared(self):
        assert NULL.counter("a") is NULL.counter("b")
        assert NULL.histogram("a") is NULL.histogram("b")
        assert NULL.span("a") is NULL.span("b")

    def test_enabled_flag(self):
        assert MetricsRegistry.enabled is True
        assert NULL.enabled is False


class TestReport:
    def test_report_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("my.counter").inc()
        reg.gauge("my.gauge").set(2.0)
        reg.histogram("my.hist").observe(4)
        with reg.span("my.span"):
            pass
        text = render_report(reg)
        for name in ["my.counter", "my.gauge", "my.hist", "my.span"]:
            assert name in text
        assert reg.report() == text

    def test_empty_registry_reports_cleanly(self):
        assert "no metrics recorded" in render_report(MetricsRegistry())


class TestValidateSnapshot:
    def test_rejects_wrong_schema(self):
        snap = MetricsRegistry().snapshot()
        snap["schema"] = "bogus/9"
        with pytest.raises(ValueError):
            validate_snapshot(snap)

    def test_rejects_missing_section(self):
        snap = MetricsRegistry().snapshot()
        del snap["counters"]
        with pytest.raises(ValueError):
            validate_snapshot(snap)

    def test_rejects_non_integer_counter(self):
        snap = MetricsRegistry().snapshot()
        snap["counters"]["x"] = "lots"
        with pytest.raises(ValueError):
            validate_snapshot(snap)

    def test_rejects_malformed_span(self):
        snap = MetricsRegistry().snapshot()
        snap["spans"] = [{"name": "s"}]  # no calls / children
        with pytest.raises(ValueError):
            validate_snapshot(snap)
