"""Tests for repro.core.topics (§7 topic-tweet merging)."""

import pytest

from repro.core.similarity import similarity
from repro.core.topics import (
    merge_by_coretweeters,
    merge_by_label,
    topic_profiles,
)
from repro.data.builders import DatasetBuilder
from repro.data.models import Retweet


def labelled_world():
    """Four tweets: 0/1 share topic 3; 2 has topic 8; 3 unlabelled."""
    builder = DatasetBuilder().with_users(4)
    builder.tweet(author=0, at=0.0, tweet_id=0, topic=3)
    builder.tweet(author=0, at=1.0, tweet_id=1, topic=3)
    builder.tweet(author=0, at=2.0, tweet_id=2, topic=8)
    builder.tweet(author=0, at=3.0, tweet_id=3)  # topic -1
    builder.retweet(user=1, tweet=0, at=10.0)
    builder.retweet(user=2, tweet=1, at=11.0)
    builder.retweet(user=3, tweet=2, at=12.0)
    return builder.build()


class TestMergeByLabel:
    def test_same_topic_merged(self):
        assignment = merge_by_label(labelled_world())
        assert assignment.topic_of[0] == assignment.topic_of[1]
        assert assignment.topic_of[0] != assignment.topic_of[2]

    def test_unlabelled_stay_alone(self):
        assignment = merge_by_label(labelled_world())
        assert assignment.topic_of[3] == 3  # maps to its own id

    def test_topic_count_and_compression(self):
        assignment = merge_by_label(labelled_world())
        assert assignment.topic_count == 3  # {3}, {8}, {unlabelled}
        assert assignment.compression() == pytest.approx(3 / 4)

    def test_members(self):
        assignment = merge_by_label(labelled_world())
        label = assignment.topic_of[0]
        assert assignment.members(label) == {0, 1}


class TestMergeByCoretweeters:
    def coretweet_world(self):
        """Tweets 0 and 1 share the same three retweeters; tweet 2 has
        disjoint ones."""
        builder = DatasetBuilder().with_users(7)
        for tid in range(3):
            builder.tweet(author=6, at=float(tid), tweet_id=tid)
        for user in (0, 1, 2):
            builder.retweet(user=user, tweet=0, at=10.0 + user)
            builder.retweet(user=user, tweet=1, at=20.0 + user)
        for user in (3, 4):
            builder.retweet(user=user, tweet=2, at=30.0 + user)
        return builder.build()

    def test_overlapping_tweets_merged(self):
        assignment = merge_by_coretweeters(self.coretweet_world(),
                                           min_jaccard=0.5)
        assert assignment.topic_of[0] == assignment.topic_of[1]
        assert assignment.topic_of[0] != assignment.topic_of[2]

    def test_high_threshold_prevents_merging(self):
        dataset = self.coretweet_world()
        # Make tweet 1's audience a strict superset: jaccard drops.
        from repro.data.models import Retweet as R

        dataset.add_retweet(R(user=5, tweet=1, time=50.0))
        assignment = merge_by_coretweeters(dataset, min_jaccard=0.99)
        assert assignment.topic_of[0] != assignment.topic_of[1]

    def test_unpopular_tweets_never_merge(self):
        builder = DatasetBuilder().with_users(3)
        builder.tweet(author=2, at=0.0, tweet_id=0)
        builder.tweet(author=2, at=1.0, tweet_id=1)
        builder.retweet(user=0, tweet=0, at=5.0)
        builder.retweet(user=0, tweet=1, at=6.0)
        assignment = merge_by_coretweeters(builder.build(), min_retweeters=2)
        assert assignment.topic_of[0] != assignment.topic_of[1]

    def test_invalid_jaccard_rejected(self):
        with pytest.raises(ValueError):
            merge_by_coretweeters(self.coretweet_world(), min_jaccard=0.0)

    def test_transitive_merging(self):
        """A ~ B and B ~ C merges all three even when A !~ C directly."""
        builder = DatasetBuilder().with_users(8)
        for tid in range(3):
            builder.tweet(author=7, at=float(tid), tweet_id=tid)
        # A: {0,1,2}; B: {1,2,3}; C: {2,3,4} — chain overlaps of 2/4.
        for user in (0, 1, 2):
            builder.retweet(user=user, tweet=0, at=10.0 + user)
        for user in (1, 2, 3):
            builder.retweet(user=user, tweet=1, at=20.0 + user)
        for user in (2, 3, 4):
            builder.retweet(user=user, tweet=2, at=30.0 + user)
        assignment = merge_by_coretweeters(builder.build(), min_jaccard=0.5)
        assert (
            assignment.topic_of[0]
            == assignment.topic_of[1]
            == assignment.topic_of[2]
        )


class TestTopicProfiles:
    def test_profiles_on_merged_items(self):
        dataset = labelled_world()
        assignment = merge_by_label(dataset)
        profiles = topic_profiles(dataset.retweets(), assignment)
        # Users 1 and 2 retweeted different tweets of the SAME topic:
        # their topic profiles now overlap.
        topic = assignment.topic_of[0]
        assert topic in profiles.profile(1)
        assert topic in profiles.profile(2)

    def test_topic_merging_creates_similarity(self):
        """The paper's motivation: small users become similar once their
        distinct-but-same-topic retweets are merged."""
        dataset = labelled_world()
        from repro.core.profiles import RetweetProfiles

        raw = RetweetProfiles(dataset.retweets())
        assert similarity(raw, 1, 2) == 0.0  # different tweets
        merged = topic_profiles(dataset.retweets(), merge_by_label(dataset))
        assert similarity(merged, 1, 2) > 0.0  # same topic tweet

    def test_popularity_counts_topic_engagement(self):
        dataset = labelled_world()
        assignment = merge_by_label(dataset)
        profiles = topic_profiles(dataset.retweets(), assignment)
        assert profiles.popularity(assignment.topic_of[0]) == 2
