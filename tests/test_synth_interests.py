"""Tests for repro.synth.interests."""

import numpy as np
import pytest

from repro.synth.config import SynthConfig
from repro.synth.interests import InterestModel


@pytest.fixture(scope="module")
def model():
    config = SynthConfig(n_users=200, n_communities=5, seed=3)
    return InterestModel(config, rng=11)


class TestCommunities:
    def test_every_user_assigned(self, model):
        assert len(model.communities) == 200
        assert set(model.communities) <= set(range(5))

    def test_every_community_nonempty(self, model):
        for community in range(5):
            assert (model.communities == community).any()

    def test_skewed_sizes(self, model):
        sizes = np.bincount(model.communities, minlength=5)
        assert sizes.max() > 2 * sizes.min()


class TestInterestVectors:
    def test_rows_are_distributions(self, model):
        sums = model.interest_matrix.sum(axis=1)
        assert np.allclose(sums, 1.0)
        assert (model.interest_matrix >= 0).all()

    def test_mass_concentrated_on_home_topics(self, model):
        config = model.config
        for user in range(0, 200, 17):
            community = model.community_of(user)
            home = model.home_topics(community)
            home_mass = model.interests_of(user)[home].sum()
            assert home_mass > config.interest_concentration * 0.8

    def test_same_community_users_more_similar(self, model):
        # Cosine similarity within community beats across-community.
        matrix = model.interest_matrix
        communities = model.communities

        def cosine(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))

        same, cross = [], []
        rng = np.random.default_rng(0)
        for _ in range(300):
            u, v = rng.integers(0, 200, size=2)
            if u == v:
                continue
            value = cosine(matrix[u], matrix[v])
            (same if communities[u] == communities[v] else cross).append(value)
        assert np.mean(same) > np.mean(cross) + 0.2


class TestSampling:
    def test_draw_topic_in_range(self, model):
        rng = np.random.default_rng(1)
        topics = {model.draw_topic(0, rng) for _ in range(50)}
        assert topics <= set(range(model.config.n_topics))

    def test_draw_topic_biased_to_home(self, model):
        rng = np.random.default_rng(2)
        home = set(model.home_topics(model.community_of(0)).tolist())
        draws = [model.draw_topic(0, rng) for _ in range(300)]
        home_fraction = sum(1 for t in draws if t in home) / len(draws)
        assert home_fraction > 0.5

    def test_alignment_bounds(self, model):
        for topic in range(model.config.n_topics):
            value = model.alignment(0, topic)
            assert 0.0 <= value <= 1.0

    def test_alignment_high_for_home_topic(self, model):
        home = model.home_topics(model.community_of(0))
        assert model.alignment(0, int(home[0])) > 0.5


class TestDeterminism:
    def test_same_seed_same_model(self):
        config = SynthConfig(n_users=50, n_communities=3, seed=9)
        a = InterestModel(config, rng=4)
        b = InterestModel(config, rng=4)
        assert np.array_equal(a.communities, b.communities)
        assert np.array_equal(a.interest_matrix, b.interest_matrix)
