"""Tests for repro.core.propagation (paper Algorithm 1, Examples 4.3/5.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.propagation import PropagationEngine
from repro.core.simgraph import SimGraph
from repro.core.thresholds import StaticThreshold
from repro.graph.digraph import DiGraph

from tests.conftest import U, V, W, X, Y


class TestPaperExample:
    def test_example_4_3_and_5_1(self, paper_example):
        """After x shares t1: p(w) = 0.25, then p(u) = 0.0625."""
        engine = PropagationEngine(paper_example)
        result = engine.propagate(seeds=[X])
        assert result.probabilities[X] == 1.0
        assert result.score(W) == pytest.approx(0.25)
        assert result.score(U) == pytest.approx(0.0625)
        assert result.converged

    def test_example_iteration_count(self, paper_example):
        # x -> w is iteration 1, w -> u is iteration 2, stop at 3rd pass.
        engine = PropagationEngine(paper_example)
        result = engine.propagate(seeds=[X])
        assert result.iterations <= 3

    def test_nonseed_scores_excludes_seeds(self, paper_example):
        engine = PropagationEngine(paper_example)
        result = engine.propagate(seeds=[X])
        scores = result.nonseed_scores([X])
        assert X not in scores
        assert W in scores


class TestSeedHandling:
    def test_seeds_pinned_at_one(self, paper_example):
        engine = PropagationEngine(paper_example)
        result = engine.propagate(seeds=[X, Y])
        assert result.probabilities[X] == 1.0
        assert result.probabilities[Y] == 1.0

    def test_seed_probability_never_recomputed(self, paper_example):
        # W influences X? No edge X->W exists, but even so X stays 1.
        engine = PropagationEngine(paper_example)
        result = engine.propagate(seeds=[X])
        assert result.probabilities[X] == 1.0

    def test_empty_seeds(self, paper_example):
        engine = PropagationEngine(paper_example)
        result = engine.propagate(seeds=[])
        assert result.nonseed_scores([]) == {}
        assert result.converged

    def test_seed_outside_graph(self, paper_example):
        engine = PropagationEngine(paper_example)
        result = engine.propagate(seeds=[777])
        assert result.probabilities[777] == 1.0
        assert result.score(U) == 0.0

    def test_more_seeds_higher_probabilities(self, paper_example):
        engine = PropagationEngine(paper_example)
        one = engine.propagate(seeds=[X]).score(W)
        # Y is W's other influencer: adding it can only raise p(W).
        two = engine.propagate(seeds=[X, Y]).score(W)
        assert two > one


class TestBounds:
    def test_probabilities_in_unit_interval(self, paper_example):
        engine = PropagationEngine(paper_example)
        result = engine.propagate(seeds=[X, Y, V])
        for p in result.probabilities.values():
            assert 0.0 <= p <= 1.0

    def test_unreached_users_absent(self, paper_example):
        engine = PropagationEngine(paper_example)
        result = engine.propagate(seeds=[U])
        # Nothing points at U's influencees... U influences nobody.
        assert result.nonseed_scores([U]) == {}


class TestCycles:
    def make_cycle(self) -> SimGraph:
        graph = DiGraph()
        graph.add_edge(0, 1, weight=0.9)
        graph.add_edge(1, 0, weight=0.9)
        graph.add_edge(0, 2, weight=0.9)
        graph.add_edge(1, 2, weight=0.9)
        return SimGraph(graph, tau=0.0)

    def test_cyclic_graph_converges(self):
        engine = PropagationEngine(self.make_cycle())
        result = engine.propagate(seeds=[2])
        assert result.converged
        # Fixpoint: p0 = (p1*.9 + .9)/2, p1 = (p0*.9 + .9)/2 -> p = .9/1.1
        assert result.score(0) == pytest.approx(0.9 / 1.1, rel=1e-6)
        assert result.score(1) == pytest.approx(0.9 / 1.1, rel=1e-6)

    def test_max_iterations_flags_nonconvergence(self):
        engine = PropagationEngine(self.make_cycle(), max_iterations=1,
                                   tolerance=0.0)
        result = engine.propagate(seeds=[2])
        assert not result.converged


class TestThresholdOptimization:
    def test_beta_limits_propagation_depth(self, paper_example):
        exact = PropagationEngine(paper_example).propagate(seeds=[X])
        cut = PropagationEngine(
            paper_example, threshold=StaticThreshold(0.5)
        ).propagate(seeds=[X])
        # p(w) = 0.25 < beta: w's update is kept but not propagated to u.
        assert cut.score(W) == pytest.approx(0.25)
        assert cut.score(U) == 0.0
        assert exact.score(U) > 0.0

    def test_beta_reduces_updates(self):
        graph = DiGraph()
        for i in range(30):
            graph.add_edge(i, i + 1, weight=0.5)
        simgraph = SimGraph(graph, tau=0.0)
        exact = PropagationEngine(simgraph).propagate(seeds=[30])
        cut = PropagationEngine(
            simgraph, threshold=StaticThreshold(0.05)
        ).propagate(seeds=[30])
        assert cut.updates < exact.updates

    def test_zero_threshold_equals_no_threshold(self, paper_example):
        exact = PropagationEngine(paper_example).propagate(seeds=[X])
        zero = PropagationEngine(
            paper_example, threshold=StaticThreshold(0.0)
        ).propagate(seeds=[X])
        assert exact.probabilities == zero.probabilities


class TestWarmStart:
    def test_warm_start_matches_cold(self, paper_example):
        engine = PropagationEngine(paper_example)
        cold_x = engine.propagate(seeds=[X])
        warm = engine.propagate(seeds=[X, Y], initial=cold_x.probabilities)
        cold = engine.propagate(seeds=[X, Y])
        for user in set(cold.probabilities) | set(warm.probabilities):
            assert warm.score(user) == pytest.approx(
                cold.score(user), abs=1e-8
            )

    def test_warm_start_cheaper(self):
        graph = DiGraph()
        for i in range(50):
            graph.add_edge(i, i + 1, weight=0.5)
        simgraph = SimGraph(graph, tau=0.0)
        engine = PropagationEngine(simgraph)
        first = engine.propagate(seeds=[50])
        # Re-running with the same seeds warm should do (almost) no work.
        again = engine.propagate(seeds=[50], initial=first.probabilities)
        assert again.updates == 0

    def test_validation(self, paper_example):
        with pytest.raises(ValueError):
            PropagationEngine(paper_example, tolerance=-1.0)
        with pytest.raises(ValueError):
            PropagationEngine(paper_example, max_iterations=0)


@st.composite
def random_simgraph(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.01, max_value=0.99),
            ).filter(lambda e: e[0] != e[1]),
            max_size=30,
        )
    )
    graph = DiGraph()
    graph.add_nodes(range(n))
    for u, v, w in edges:
        graph.add_edge(u, v, weight=w)
    seeds = draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=n))
    return SimGraph(graph, tau=0.0), seeds


@settings(max_examples=60, deadline=None)
@given(random_simgraph())
def test_propagation_invariants(data):
    """Property: converges, probabilities bounded, seeds pinned."""
    simgraph, seeds = data
    engine = PropagationEngine(simgraph)
    result = engine.propagate(seeds=seeds)
    assert result.converged
    for user, p in result.probabilities.items():
        assert 0.0 <= p <= 1.0 + 1e-12
    for seed in seeds:
        assert result.probabilities[seed] == 1.0
