"""Tests for repro.core.scheduler (paper §5.4, postponed computation)."""

import pytest

from repro.core.scheduler import DelayPolicy, PostponedScheduler
from repro.data.models import Retweet


class TestDelayPolicy:
    def test_clamping(self):
        policy = DelayPolicy(scale=3600.0, min_delay=60.0, max_delay=600.0)
        assert policy.delay_for(0.0) == 600.0  # raw 3600 clamps to max
        assert policy.delay_for(10**6) == 60.0  # raw ~0 clamps to min

    def test_hot_tweets_flush_faster(self):
        policy = DelayPolicy(scale=3600.0, min_delay=1.0, max_delay=10**6)
        assert policy.delay_for(100.0) < policy.delay_for(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayPolicy(min_delay=-1.0)
        with pytest.raises(ValueError):
            DelayPolicy(min_delay=10.0, max_delay=5.0)
        with pytest.raises(ValueError):
            DelayPolicy(scale=0.0)


class TestPostponedScheduler:
    def make(self, **kwargs) -> PostponedScheduler:
        defaults = {"scale": 100.0, "min_delay": 10.0, "max_delay": 100.0}
        defaults.update(kwargs)
        return PostponedScheduler(DelayPolicy(**defaults))

    def test_first_event_buffers(self):
        scheduler = self.make()
        due = scheduler.offer(Retweet(user=1, tweet=0, time=0.0))
        assert due == []
        assert scheduler.pending_count == 1

    def test_task_released_after_delay(self):
        scheduler = self.make()
        scheduler.offer(Retweet(user=1, tweet=0, time=0.0))
        due = scheduler.offer(Retweet(user=2, tweet=1, time=500.0))
        assert len(due) == 1
        task = due[0]
        assert task.tweet == 0
        assert task.users == (1,)
        assert task.due_time <= 500.0

    def test_batch_accumulates_users(self):
        scheduler = self.make()
        scheduler.offer(Retweet(user=1, tweet=0, time=0.0))
        scheduler.offer(Retweet(user=2, tweet=0, time=1.0))
        scheduler.offer(Retweet(user=3, tweet=0, time=2.0))
        due = scheduler.offer(Retweet(user=9, tweet=1, time=500.0))
        assert due[0].users == (1, 2, 3)

    def test_high_rate_shortens_due_time(self):
        slow = self.make(scale=1000.0, min_delay=1.0, max_delay=1000.0)
        slow.offer(Retweet(user=1, tweet=0, time=0.0))
        baseline_due = 0.0 + 1000.0  # single event keeps the max delay
        # A burst of retweets within a minute raises the rate and pulls
        # the due time earlier.
        for i, t in enumerate((1.0, 2.0, 3.0, 4.0)):
            slow.offer(Retweet(user=2 + i, tweet=0, time=t))
        tasks = slow.flush()
        assert tasks[0].due_time < baseline_due

    def test_flush_drains_everything(self):
        scheduler = self.make()
        scheduler.offer(Retweet(user=1, tweet=0, time=0.0))
        scheduler.offer(Retweet(user=2, tweet=1, time=1.0))
        tasks = scheduler.flush()
        assert {t.tweet for t in tasks} == {0, 1}
        assert scheduler.pending_count == 0
        assert scheduler.flush() == []

    def test_flush_with_now_caps_due_time(self):
        scheduler = self.make(max_delay=10**6, scale=10**6)
        scheduler.offer(Retweet(user=1, tweet=0, time=0.0))
        tasks = scheduler.flush(now=5.0)
        assert tasks[0].due_time == 5.0

    def test_stale_heap_entries_skipped(self):
        # Re-scheduling a tweet earlier leaves a stale heap entry that
        # must not produce a duplicate task.
        scheduler = self.make(scale=1000.0, min_delay=1.0, max_delay=1000.0)
        scheduler.offer(Retweet(user=1, tweet=0, time=0.0))
        for i, t in enumerate((1.0, 2.0, 3.0)):
            scheduler.offer(Retweet(user=2 + i, tweet=0, time=t))
        released = scheduler.offer(Retweet(user=9, tweet=1, time=10_000.0))
        assert sum(1 for task in released if task.tweet == 0) == 1

    def test_default_policy(self):
        scheduler = PostponedScheduler()
        assert isinstance(scheduler.policy, DelayPolicy)
