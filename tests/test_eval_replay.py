"""Tests for repro.eval.replay."""

import pytest

from repro.baselines.base import Recommendation, Recommender
from repro.data.builders import DatasetBuilder
from repro.data.models import Retweet
from repro.eval.replay import run_replay
from repro.exceptions import EvaluationError


class ScriptedRecommender(Recommender):
    """Emits a scripted list of recommendations per event index."""

    name = "Scripted"

    def __init__(self, script, final=()):
        self.script = script
        self.final = list(final)
        self.fitted_with = None
        self.events = []

    def fit(self, dataset, train, target_users=None):
        self.fitted_with = (len(train), target_users)

    def on_event(self, event):
        self.events.append(event)
        index = len(self.events) - 1
        return self.script[index] if index < len(self.script) else []

    def finalize(self, end_time):
        return self.final


def world():
    builder = DatasetBuilder().with_users(4)
    builder.tweet(author=3, at=0.0, tweet_id=0)
    builder.tweet(author=3, at=0.0, tweet_id=1)
    builder.retweet(user=1, tweet=0, at=5.0)
    dataset = builder.build()
    train = [Retweet(1, 0, 5.0)]
    test = [Retweet(2, 0, 10.0), Retweet(0, 1, 20.0), Retweet(1, 1, 30.0)]
    return dataset, train, test


class TestProtocol:
    def test_empty_test_rejected(self):
        dataset, train, _ = world()
        with pytest.raises(EvaluationError):
            run_replay(ScriptedRecommender([]), dataset, train, [], {0})

    def test_out_of_order_test_rejected(self):
        dataset, train, test = world()
        with pytest.raises(EvaluationError):
            run_replay(
                ScriptedRecommender([]), dataset, train, test[::-1], {0}
            )

    def test_fit_called_with_train(self):
        dataset, train, test = world()
        rec = ScriptedRecommender([[], [], []])
        run_replay(rec, dataset, train, test, {0})
        assert rec.fitted_with == (1, {0})

    def test_fitted_flag_skips_fit(self):
        dataset, train, test = world()
        rec = ScriptedRecommender([[], [], []])
        run_replay(rec, dataset, train, test, {0}, fitted=True)
        assert rec.fitted_with is None

    def test_all_events_streamed_in_order(self):
        dataset, train, test = world()
        rec = ScriptedRecommender([[], [], []])
        run_replay(rec, dataset, train, test, {0})
        assert rec.events == test


class TestCandidateHygiene:
    def test_non_target_recs_dropped(self):
        dataset, train, test = world()
        rec = ScriptedRecommender(
            [[Recommendation(2, 1, 0.5, 10.0)], [], []]
        )
        result = run_replay(rec, dataset, train, test, {0})
        assert result.candidates == []

    def test_known_train_pairs_dropped(self):
        dataset, train, test = world()
        # User 1 retweeted tweet 0 in train: recommending it is invalid.
        rec = ScriptedRecommender(
            [[Recommendation(1, 0, 0.5, 10.0)], [], []]
        )
        result = run_replay(rec, dataset, train, test, {1})
        assert result.candidates == []

    def test_earliest_emission_kept_with_best_score(self):
        dataset, train, test = world()
        rec = ScriptedRecommender(
            [
                [Recommendation(0, 0, 0.2, 10.0)],
                [Recommendation(0, 0, 0.9, 20.0)],
                [Recommendation(0, 0, 0.1, 30.0)],
            ]
        )
        result = run_replay(rec, dataset, train, test, {0})
        assert len(result.candidates) == 1
        kept = result.candidates[0]
        assert kept.time == 10.0  # earliest emission
        assert kept.score == 0.9  # best score seen

    def test_finalize_output_collected(self):
        dataset, train, test = world()
        rec = ScriptedRecommender(
            [[], [], []], final=[Recommendation(0, 0, 0.4, 30.0)]
        )
        result = run_replay(rec, dataset, train, test, {0})
        assert len(result.candidates) == 1


class TestGroundTruth:
    def test_first_retweet_map(self):
        dataset, train, test = world()
        result = run_replay(
            ScriptedRecommender([[], [], []]), dataset, train, test, {0, 2}
        )
        assert result.first_retweet == {(2, 0): 10.0, (0, 1): 20.0}

    def test_train_known_pairs_excluded_from_truth(self):
        dataset, train, _ = world()
        test = [Retweet(1, 0, 50.0)]  # user 1 re-retweets a known tweet
        result = run_replay(
            ScriptedRecommender([[]]), dataset, train, test, {1}
        )
        assert result.first_retweet == {}

    def test_window_metadata(self):
        dataset, train, test = world()
        result = run_replay(
            ScriptedRecommender([[], [], []]), dataset, train, test, {0}
        )
        assert result.test_start == 10.0
        assert result.test_end == 30.0
        assert result.test_days == 1.0  # clamped minimum
