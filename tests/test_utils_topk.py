"""Tests for repro.utils.topk."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.topk import TopK, top_k_items


class TestTopK:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            TopK(0)
        with pytest.raises(ValueError):
            TopK(-3)

    def test_keeps_best_k(self):
        top = TopK(2)
        for item, score in [("a", 1.0), ("b", 3.0), ("c", 2.0)]:
            top.push(item, score)
        assert top.items() == [("b", 3.0), ("c", 2.0)]

    def test_push_returns_retained_flag(self):
        top = TopK(1)
        assert top.push("a", 1.0) is True
        assert top.push("b", 5.0) is True
        assert top.push("c", 0.5) is False

    def test_min_score_before_full(self):
        top = TopK(3)
        top.push("a", 1.0)
        assert top.min_score() == float("-inf")

    def test_min_score_when_full(self):
        top = TopK(2)
        top.push("a", 1.0)
        top.push("b", 2.0)
        assert top.min_score() == 1.0

    def test_len_and_iter(self):
        top = TopK(5)
        top.push(1, 0.1)
        top.push(2, 0.2)
        assert len(top) == 2
        assert dict(iter(top)) == {1: 0.1, 2: 0.2}

    def test_ties_break_deterministically(self):
        # Regardless of insertion order, equal scores keep the same winner.
        first = TopK(1)
        first.push(1, 1.0)
        first.push(2, 1.0)
        second = TopK(1)
        second.push(2, 1.0)
        second.push(1, 1.0)
        assert first.items() == second.items()

    def test_results_sorted_descending(self):
        top = TopK(4)
        for i, s in enumerate([0.3, 0.9, 0.1, 0.5]):
            top.push(i, s)
        scores = [s for _, s in top.items()]
        assert scores == sorted(scores, reverse=True)


class TestTopKItems:
    def test_selects_from_dict(self):
        scores = {"x": 0.1, "y": 0.9, "z": 0.5}
        assert top_k_items(scores, 2) == [("y", 0.9), ("z", 0.5)]

    def test_k_larger_than_input(self):
        scores = {"x": 0.1}
        assert top_k_items(scores, 10) == [("x", 0.1)]

    def test_empty_input(self):
        assert top_k_items({}, 3) == []


@given(
    scores=st.dictionaries(st.integers(), st.floats(allow_nan=False,
                                                    allow_infinity=False),
                           max_size=50),
    k=st.integers(min_value=1, max_value=20),
)
def test_topk_matches_sorted_reference(scores, k):
    """Property: TopK returns exactly the k highest-scored entries."""
    result = top_k_items(scores, k)
    expected_scores = sorted(scores.values(), reverse=True)[:k]
    assert [s for _, s in result] == expected_scores
    # Every returned pair must come from the input.
    for item, score in result:
        assert scores[item] == score
