"""Tests for repro.eval.metrics."""

import pytest

from repro.baselines.base import Recommendation
from repro.eval.budget import DAY_SECONDS
from repro.eval.metrics import evaluate_at_k, evaluate_sweep, overlap_ratio
from repro.eval.replay import ReplayResult


def make_result(candidates, first_retweet, targets={1, 2}):
    return ReplayResult(
        name="test",
        candidates=candidates,
        target_users=frozenset(targets),
        first_retweet=first_retweet,
        test_start=0.0,
        test_end=2 * DAY_SECONDS,
    )


POP = {0: 10, 1: 2, 2: 100}.get


def pop(tweet):
    return POP(tweet, 0)


class TestHitCounting:
    def test_hit_requires_rec_before_retweet(self):
        result = make_result(
            [Recommendation(1, 0, 0.5, 100.0)], {(1, 0): 200.0}
        )
        metrics = evaluate_at_k(result, 10, pop)
        assert metrics.hits == 1

    def test_late_rec_is_not_hit(self):
        result = make_result(
            [Recommendation(1, 0, 0.5, 300.0)], {(1, 0): 200.0}
        )
        assert evaluate_at_k(result, 10, pop).hits == 0

    def test_rec_at_exact_time_is_not_hit(self):
        result = make_result(
            [Recommendation(1, 0, 0.5, 200.0)], {(1, 0): 200.0}
        )
        assert evaluate_at_k(result, 10, pop).hits == 0

    def test_never_retweeted_rec_is_not_hit(self):
        result = make_result([Recommendation(1, 0, 0.5, 100.0)], {})
        assert evaluate_at_k(result, 10, pop).hits == 0

    def test_budget_can_remove_hits(self):
        # The hit-worthy rec has the lowest score and k = 1.
        candidates = [
            Recommendation(1, 0, 0.1, 100.0),
            Recommendation(1, 2, 0.9, 100.0),
        ]
        result = make_result(candidates, {(1, 0): 500.0})
        assert evaluate_at_k(result, 1, pop).hits == 0
        assert evaluate_at_k(result, 2, pop).hits == 1


class TestDerivedMetrics:
    def test_precision_recall_f1(self):
        candidates = [
            Recommendation(1, 0, 0.9, 100.0),  # hit
            Recommendation(1, 2, 0.8, 100.0),  # miss
        ]
        truth = {(1, 0): 500.0, (2, 1): 600.0}
        result = make_result(candidates, truth)
        metrics = evaluate_at_k(result, 10, pop)
        assert metrics.precision == pytest.approx(0.5)
        assert metrics.recall == pytest.approx(0.5)
        assert metrics.f1 == pytest.approx(0.5)

    def test_f1_zero_when_no_hits(self):
        result = make_result([], {})
        metrics = evaluate_at_k(result, 10, pop)
        assert metrics.f1 == 0.0
        assert metrics.precision == 0.0

    def test_mean_hit_popularity(self):
        candidates = [
            Recommendation(1, 0, 0.9, 100.0),
            Recommendation(2, 2, 0.9, 100.0),
        ]
        truth = {(1, 0): 500.0, (2, 2): 500.0}
        result = make_result(candidates, truth)
        metrics = evaluate_at_k(result, 10, pop)
        assert metrics.mean_hit_popularity == pytest.approx((10 + 100) / 2)

    def test_mean_advance_seconds(self):
        candidates = [Recommendation(1, 0, 0.9, 100.0)]
        result = make_result(candidates, {(1, 0): 700.0})
        metrics = evaluate_at_k(result, 10, pop)
        assert metrics.mean_advance_seconds == pytest.approx(600.0)

    def test_recs_per_user_day(self):
        candidates = [
            Recommendation(1, 0, 0.9, 100.0),
            Recommendation(2, 2, 0.9, 100.0),
        ]
        result = make_result(candidates, {})
        metrics = evaluate_at_k(result, 10, pop)
        # 2 recs / (2 users * 2 days).
        assert metrics.recs_per_user_day == pytest.approx(0.5)


class TestStratumRestriction:
    def test_users_filter(self):
        candidates = [
            Recommendation(1, 0, 0.9, 100.0),
            Recommendation(2, 2, 0.9, 100.0),
        ]
        truth = {(1, 0): 500.0, (2, 2): 500.0}
        result = make_result(candidates, truth)
        metrics = evaluate_at_k(result, 10, pop, users={1})
        assert metrics.hits == 1
        assert metrics.delivered == 1

    def test_recall_denominator_restricted(self):
        truth = {(1, 0): 500.0, (2, 2): 500.0}
        result = make_result([Recommendation(1, 0, 0.9, 100.0)], truth)
        metrics = evaluate_at_k(result, 10, pop, users={1})
        assert metrics.recall == pytest.approx(1.0)


class TestSweepAndOverlap:
    def test_sweep_monotone_delivery(self):
        candidates = [
            Recommendation(1, t, 0.1 * t, 100.0 + t) for t in range(9)
        ]
        result = make_result(candidates, {})
        metrics = evaluate_sweep(result, [1, 3, 9], pop)
        delivered = [m.delivered for m in metrics]
        assert delivered == sorted(delivered)
        assert [m.k for m in metrics] == [1, 3, 9]

    def test_overlap_ratio(self):
        reference = frozenset({(1, 0), (2, 2)})
        competitor = frozenset({(1, 0), (3, 4)})
        assert overlap_ratio(reference, competitor) == pytest.approx(0.5)

    def test_overlap_with_empty_competitor(self):
        assert overlap_ratio(frozenset({(1, 0)}), frozenset()) == 0.0

    def test_hit_pairs_exposed(self):
        result = make_result(
            [Recommendation(1, 0, 0.9, 100.0)], {(1, 0): 500.0}
        )
        metrics = evaluate_at_k(result, 10, pop)
        assert metrics.hit_pairs == frozenset({(1, 0)})
