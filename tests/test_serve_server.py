"""Tests for repro.serve: admission ladder, micro-batching server."""

import asyncio
import json

import pytest

from repro.exceptions import ConfigError, DatasetError
from repro.obs import MetricsRegistry
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    AsyncRecommendationServer,
    PostRequest,
    RetweetRequest,
    ScoreRequest,
    ServeConfig,
    TokenBucket,
    serve_stream,
)
from repro.eval import CapacityModel
from repro.service import RecommendationService, ServiceConfig


def warm_service(**config_kwargs) -> RecommendationService:
    """Five users, two historical tweets, one live tweet (id 200)."""
    defaults = {"use_scheduler": False, "min_score": 1e-6}
    defaults.update(config_kwargs)
    service = RecommendationService(ServiceConfig(**defaults))
    for user in range(5):
        service.add_user(user)
    for a, b in [(0, 1), (1, 2), (2, 0), (1, 0), (2, 1), (0, 2)]:
        service.add_follow(a, b)
    service.post_tweet(tweet_id=100, author=3, at=0.0)
    service.post_tweet(tweet_id=101, author=3, at=1.0)
    at = 10.0
    for tid in (100, 101):
        for user in (0, 1, 2):
            service.retweet(user=user, tweet=tid, at=at)
            at += 1.0
    service.rebuild("from scratch")
    service.post_tweet(tweet_id=200, author=3, at=500.0)
    return service


class TestTokenBucket:
    def test_disabled_always_admits(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.try_take(float(t)) for t in range(100))

    def test_burst_then_dry(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.1)
        # 0.5s at 2 tokens/sec refills the single-token burst.
        assert bucket.try_take(0.6)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        assert bucket.try_take(0.0)
        assert bucket.try_take(1000.0)
        assert bucket.try_take(1000.0)
        assert not bucket.try_take(1000.0)

    def test_backwards_time_refills_nothing(self):
        bucket = TokenBucket(rate=1000.0, burst=1)
        assert bucket.try_take(10.0)
        assert not bucket.try_take(5.0)

    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0}, {"rate": -1.0}, {"rate": 10.0, "burst": 0.5},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TokenBucket(**kwargs)


class TestAdmissionController:
    def test_ladder_rungs(self):
        controller = AdmissionController(
            AdmissionConfig(rate=None, shed_depth=10, degrade_depth=5)
        )
        assert controller.admit(0.0, queue_depth=0) == "full"
        assert controller.admit(0.0, queue_depth=4) == "full"
        assert controller.admit(0.0, queue_depth=5) == "degraded"
        assert controller.admit(0.0, queue_depth=10) == "shed"

    def test_dry_bucket_degrades(self):
        controller = AdmissionController(
            AdmissionConfig(rate=1.0, burst=1.0, shed_depth=100)
        )
        assert controller.admit(0.0, queue_depth=0) == "full"
        assert controller.admit(0.0, queue_depth=0) == "degraded"

    def test_default_degrade_depth_is_half_shed(self):
        assert AdmissionConfig(shed_depth=100).resolved_degrade_depth == 50
        assert AdmissionConfig(shed_depth=1).resolved_degrade_depth == 1

    def test_decisions_counted(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(
            AdmissionConfig(rate=None, shed_depth=2, degrade_depth=1),
            metrics=metrics,
        )
        for depth in (0, 1, 2):
            controller.admit(0.0, queue_depth=depth)
        counters = metrics.snapshot()["counters"]
        for rung in ("full", "degraded", "shed"):
            assert counters[f"serve.admission[{rung}]"] == 1

    def test_from_capacity_calibration(self):
        model = CapacityModel(
            service_seconds_per_event=0.01, utilization=0.5
        )
        controller = AdmissionController.from_capacity(model, slo_seconds=0.5)
        assert controller.bucket.rate == pytest.approx(50.0)
        assert controller.config.degrade_depth == 50
        assert controller.config.shed_depth == 100

    @pytest.mark.parametrize("kwargs", [
        {"shed_depth": 0},
        {"shed_depth": 10, "degrade_depth": 0},
        {"shed_depth": 10, "degrade_depth": 11},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionConfig(**kwargs)


class TestServeConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_linger": -0.1},
        {"slo_p99": 0.0},
        {"shed_depth": 0},
        {"degrade_depth": 99, "shed_depth": 10},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises((ConfigError, ValueError)):
            ServeConfig(**kwargs)

    def test_from_capacity(self):
        model = CapacityModel(service_seconds_per_event=0.001)
        config = ServeConfig.from_capacity(
            model, slo_p99=0.1, max_batch=8
        )
        assert config.rate == pytest.approx(model.events_per_second)
        assert config.admission().resolved_degrade_depth == 100
        assert config.shed_depth == 200
        assert config.max_batch == 8


class TestServeStream:
    def test_retweets_match_direct_calls(self):
        direct = warm_service()
        expected = [
            direct.retweet(user=user, tweet=200, at=at)
            for user, at in [(0, 600.0), (1, 601.0), (2, 602.0)]
        ]
        served = warm_service()
        responses = serve_stream(
            served,
            [
                RetweetRequest(user=0, tweet=200, at=600.0),
                RetweetRequest(user=1, tweet=200, at=601.0),
                RetweetRequest(user=2, tweet=200, at=602.0),
            ],
        )
        assert [r.status for r in responses] == ["ok"] * 3
        assert [r.served_from for r in responses] == ["propagation"] * 3
        assert [r.notifications for r in responses] == expected

    def test_batches_coalesce(self):
        service = warm_service()
        metrics = MetricsRegistry()
        requests = [
            RetweetRequest(user=i % 3, tweet=200, at=600.0 + i)
            for i in range(20)
        ]
        serve_stream(
            service, requests, ServeConfig(max_batch=8, max_linger=0.0),
            metrics,
        )
        snapshot = metrics.snapshot()
        # 20 requests, all enqueued up front, max_batch 8 -> 3 batches.
        assert snapshot["counters"]["serve.batches"] == 3
        assert snapshot["histograms"]["serve.batch_size"]["max"] == 8

    def test_per_request_dispatch(self):
        service = warm_service()
        metrics = MetricsRegistry()
        requests = [
            RetweetRequest(user=i % 3, tweet=200, at=600.0 + i)
            for i in range(5)
        ]
        serve_stream(service, requests, ServeConfig(max_batch=1), metrics)
        assert metrics.snapshot()["counters"]["serve.batches"] == 5

    def test_posts_interleave_with_retweets(self):
        service = warm_service()
        responses = serve_stream(
            service,
            [
                PostRequest(tweet=300, author=4, at=600.0),
                RetweetRequest(user=0, tweet=300, at=601.0),
                RetweetRequest(user=1, tweet=300, at=602.0),
            ],
        )
        assert [r.status for r in responses] == ["ok"] * 3
        assert 300 in service.tweets

    def test_score_requests_match_score_batch(self):
        direct = warm_service()
        direct.retweet(user=0, tweet=200, at=600.0)
        expected = direct.score_batch([200, 100])

        served = warm_service()
        served.retweet(user=0, tweet=200, at=600.0)
        responses = serve_stream(
            served,
            [ScoreRequest(tweets=(200, 100)), ScoreRequest(tweets=(200,))],
        )
        assert responses[0].scores == expected
        assert responses[1].scores == {200: expected[200]}

    def test_unknown_tweet_refused_at_admission(self):
        service = warm_service()
        results = serve_stream(
            service,
            [RetweetRequest(user=0, tweet=999, at=600.0)],
            return_exceptions=True,
        )
        assert isinstance(results[0], DatasetError)
        assert service.stats.events_ingested == 6  # history only

    def test_unknown_request_type_rejected(self):
        service = warm_service()
        results = serve_stream(
            service, ["not a request"], return_exceptions=True
        )
        assert isinstance(results[0], ConfigError)

    def test_shed_responses_touch_nothing(self):
        service = warm_service()
        metrics = MetricsRegistry()
        requests = [
            RetweetRequest(user=i % 3, tweet=200, at=600.0 + i)
            for i in range(6)
        ]
        responses = serve_stream(
            service,
            requests,
            ServeConfig(shed_depth=2, degrade_depth=2),
            metrics,
        )
        statuses = [r.status for r in responses]
        assert statuses.count("shed") == 4
        assert statuses.count("ok") == 2
        shed = [r for r in responses if r.status == "shed"]
        assert all(r.served_from == "none" for r in shed)
        assert all(not r.notifications for r in shed)
        counters = metrics.snapshot()["counters"]
        assert counters["serve.shed"] == 4
        assert counters["serve.admission[shed]"] == 4
        # Shed events never reached the service.
        assert service.stats.events_ingested == 6 + 2

    def test_degraded_served_from_warm_cache(self):
        service = warm_service()
        # One full propagation of tweet 200 populates its warm state.
        service.retweet(user=0, tweet=200, at=600.0)
        metrics = MetricsRegistry()
        hits_before = service.stats.warm_hits
        requests = [
            RetweetRequest(user=1, tweet=200, at=601.0),
            # User 4 never retweeted anything: not a seed, so the cached
            # fixpoint still has non-seed scores to answer with.
            RetweetRequest(user=4, tweet=200, at=602.0),
        ]
        responses = serve_stream(
            service,
            requests,
            ServeConfig(shed_depth=10, degrade_depth=1),
            metrics,
        )
        assert [r.status for r in responses] == ["ok", "degraded"]
        degraded = responses[1]
        assert degraded.served_from == "warm-cache"
        assert degraded.notifications  # cache answer, not empty
        service.metrics_snapshot()
        assert service.stats.warm_hits > hits_before
        counters = metrics.snapshot()["counters"]
        assert counters["serve.admission[degraded]"] == 1
        # The degraded event still landed in the profiles.
        assert (4, 200) in service._known

    def test_degraded_miss_labeled(self):
        service = warm_service()
        metrics = MetricsRegistry()
        # No propagation of tweet 200 yet: the warm cache has no entry.
        responses = serve_stream(
            service,
            [
                RetweetRequest(user=0, tweet=200, at=600.0),
                RetweetRequest(user=1, tweet=200, at=601.0),
            ],
            ServeConfig(shed_depth=10, degrade_depth=1),
            metrics,
        )
        assert responses[1].status == "degraded"
        assert responses[1].served_from in ("warm-cache", "none")
        counters = metrics.snapshot()["counters"]
        assert counters["serve.admission[degraded]"] == 1

    def test_degrade_unsupported_escalates_to_shed(self):
        class BareService:
            """Duck service without warm_answer/ingest_batch."""

            def __init__(self, inner):
                self._inner = inner
                self.tweets = inner.tweets

            def retweet(self, user, tweet, at):
                return self._inner.retweet(user=user, tweet=tweet, at=at)

            def post_tweet(self, tweet_id, author, at):
                return self._inner.post_tweet(
                    tweet_id=tweet_id, author=author, at=at
                )

        metrics = MetricsRegistry()
        service = BareService(warm_service())
        responses = serve_stream(
            service,
            [
                RetweetRequest(user=0, tweet=200, at=600.0),
                RetweetRequest(user=1, tweet=200, at=601.0),
            ],
            ServeConfig(shed_depth=10, degrade_depth=1),
            metrics,
        )
        assert [r.status for r in responses] == ["ok", "shed"]
        counters = metrics.snapshot()["counters"]
        assert counters["serve.degrade_unsupported"] == 1

    def test_latency_recorded_per_status(self):
        service = warm_service()
        metrics = MetricsRegistry()
        serve_stream(
            service,
            [RetweetRequest(user=0, tweet=200, at=600.0)],
            metrics=metrics,
        )
        histograms = metrics.snapshot()["histograms"]
        assert histograms["serve.latency_seconds"]["count"] == 1
        assert histograms["serve.latency_seconds[ok]"]["count"] == 1
        assert histograms["serve.latency_seconds"]["timing"] is True


class TestDeterminism:
    def run_once(self) -> tuple[str, str]:
        service = warm_service()
        metrics = MetricsRegistry()
        requests = [
            RetweetRequest(user=i % 3, tweet=200, at=600.0 + i)
            for i in range(12)
        ]
        serve_stream(
            service, requests, ServeConfig(max_batch=4, max_linger=0.0),
            metrics,
        )
        serve_snap = json.dumps(
            metrics.snapshot(deterministic=True), sort_keys=True
        )
        service_snap = json.dumps(
            service.metrics_snapshot(deterministic=True), sort_keys=True
        )
        return serve_snap, service_snap

    def test_deterministic_snapshots_byte_stable(self):
        first = self.run_once()
        second = self.run_once()
        assert first[0] == second[0]
        assert first[1] == second[1]


class TestServerLifecycle:
    def test_double_start_rejected(self):
        async def run():
            server = AsyncRecommendationServer(warm_service())
            async with server:
                with pytest.raises(ConfigError):
                    await server.start()

        asyncio.run(run())

    def test_stop_idempotent(self):
        async def run():
            server = AsyncRecommendationServer(warm_service())
            await server.start()
            await server.stop()
            await server.stop()

        asyncio.run(run())

    def test_submit_await_roundtrip(self):
        async def run():
            server = AsyncRecommendationServer(warm_service())
            async with server:
                response = await server.submit(
                    RetweetRequest(user=0, tweet=200, at=600.0)
                )
            return response

        response = asyncio.run(run())
        assert response.status == "ok"
        assert response.latency_s > 0.0
