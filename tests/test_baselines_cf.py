"""Tests for repro.baselines.cf."""

import pytest

from repro.baselines.cf import CollaborativeFilteringRecommender
from repro.data.builders import DatasetBuilder
from repro.data.models import Retweet


def cf_world():
    """Users 0 and 1 co-retweet heavily; user 2 is unrelated; no follow
    edges at all — CF must work network-free."""
    builder = DatasetBuilder().with_users(4)
    for tid in range(3):
        builder.tweet(author=3, at=float(tid), tweet_id=tid)
    builder.tweet(author=3, at=50.0, tweet_id=5)
    builder.tweet(author=3, at=100.0, tweet_id=10)
    train = []
    for tid in range(3):
        for user in (0, 1):
            at = 10.0 + tid + user
            builder.retweet(user=user, tweet=tid, at=at)
            train.append(Retweet(user=user, tweet=tid, time=at))
    # User 2's only retweet is a tweet nobody else touched: no overlap
    # with users 0/1, hence zero similarity to both.
    builder.retweet(user=2, tweet=5, at=55.0)
    train.append(Retweet(user=2, tweet=5, time=55.0))
    return builder.build(), train


class TestFit:
    def test_unfitted_rejected(self):
        rec = CollaborativeFilteringRecommender()
        with pytest.raises(RuntimeError):
            rec.on_event(Retweet(user=0, tweet=0, time=0.0))

    def test_defaults_to_all_profiled_users(self):
        dataset, train = cf_world()
        rec = CollaborativeFilteringRecommender()
        rec.fit(dataset, train)
        recs = rec.on_event(Retweet(user=0, tweet=10, time=101.0))
        assert {r.user for r in recs} <= {1, 2}


class TestScoring:
    def test_similar_user_recommended(self):
        dataset, train = cf_world()
        rec = CollaborativeFilteringRecommender()
        rec.fit(dataset, train, target_users={1})
        recs = rec.on_event(Retweet(user=0, tweet=10, time=101.0))
        assert {r.user for r in recs} == {1}
        assert recs[0].tweet == 10

    def test_network_independent(self):
        # No follow edges exist, yet CF still recommends (key CF property
        # the paper contrasts with graph-bound methods).
        dataset, train = cf_world()
        assert dataset.follow_graph.edge_count == 0
        rec = CollaborativeFilteringRecommender()
        rec.fit(dataset, train, target_users={0, 1, 2})
        assert rec.on_event(Retweet(user=1, tweet=10, time=101.0))

    def test_unrelated_user_not_recommended(self):
        dataset, train = cf_world()
        rec = CollaborativeFilteringRecommender()
        rec.fit(dataset, train, target_users={0, 1, 2})
        recs = rec.on_event(Retweet(user=1, tweet=10, time=101.0))
        # User 2 shares nothing with user 1 -> no recommendation.
        assert all(r.user != 2 for r in recs)

    def test_scores_accumulate_over_retweeters(self):
        dataset, train = cf_world()
        rec = CollaborativeFilteringRecommender()
        rec.fit(dataset, train, target_users={2})
        first = rec.on_event(Retweet(user=0, tweet=10, time=101.0))
        second = rec.on_event(Retweet(user=1, tweet=10, time=102.0))
        if first and second:
            assert second[0].score >= first[0].score

    def test_scores_normalized_below_one(self):
        dataset, train = cf_world()
        rec = CollaborativeFilteringRecommender()
        rec.fit(dataset, train, target_users={0, 1, 2})
        recs = rec.on_event(Retweet(user=0, tweet=10, time=101.0))
        assert all(0.0 < r.score <= 1.0 for r in recs)

    def test_known_tweet_not_rerecommended(self):
        dataset, train = cf_world()
        rec = CollaborativeFilteringRecommender()
        rec.fit(dataset, train, target_users={0, 1})
        # Tweet 0 is already in user 1's train profile.
        recs = rec.on_event(Retweet(user=0, tweet=0, time=101.0))
        assert all(r.tweet != 0 or r.user != 1 for r in recs)

    def test_event_absorption_prevents_reflexive_rec(self):
        dataset, train = cf_world()
        rec = CollaborativeFilteringRecommender()
        rec.fit(dataset, train, target_users={0, 1})
        rec.on_event(Retweet(user=1, tweet=10, time=101.0))
        # User 1 already retweeted tweet 10; a later event must not
        # recommend it back to them.
        recs = rec.on_event(Retweet(user=0, tweet=10, time=102.0))
        assert all(r.user != 1 for r in recs)

    def test_min_score_floor(self):
        dataset, train = cf_world()
        rec = CollaborativeFilteringRecommender(min_score=10.0)
        rec.fit(dataset, train, target_users={0, 1, 2})
        assert rec.on_event(Retweet(user=0, tweet=10, time=101.0)) == []
