"""Tests for repro.core.recommender (the end-to-end SimGraph method)."""

import pytest

from repro.core.recommender import SimGraphRecommender
from repro.core.scheduler import DelayPolicy
from repro.core.simgraph import SimGraph
from repro.data.builders import DatasetBuilder
from repro.data.models import Retweet
from repro.graph.digraph import DiGraph


def co_retweet_world():
    """Users 0-4; 0/1/2 co-retweet two tweets in train; user 3 follows
    into their neighbourhood.  Tweet 10 is the test tweet."""
    builder = DatasetBuilder().with_users(5)
    builder.follow_chain(3, 0, 1)
    builder.follow(0, 1)
    builder.follow(1, 2)
    builder.follow(2, 0)
    builder.follow(3, 2)
    for tid, at in ((0, 0.0), (1, 10.0)):
        builder.tweet(author=4, at=at, tweet_id=tid)
    builder.tweet(author=4, at=1000.0, tweet_id=10)
    train = []
    for tid in (0, 1):
        for user in (0, 1, 2, 3):
            at = 20.0 + tid * 10 + user
            builder.retweet(user=user, tweet=tid, at=at)
            train.append(Retweet(user=user, tweet=tid, time=at))
    return builder.build(), train


class TestFit:
    def test_builds_simgraph(self):
        dataset, train = co_retweet_world()
        rec = SimGraphRecommender(tau=0.0)
        rec.fit(dataset, train)
        assert rec.simgraph is not None
        assert rec.simgraph.edge_count > 0

    def test_injected_simgraph_used(self):
        dataset, train = co_retweet_world()
        graph = DiGraph()
        graph.add_edge(0, 1, weight=0.5)
        injected = SimGraph(graph, tau=0.0)
        rec = SimGraphRecommender(simgraph=injected)
        rec.fit(dataset, train)
        assert rec.simgraph is injected

    def test_unfitted_rejected(self):
        rec = SimGraphRecommender()
        with pytest.raises(RuntimeError):
            rec.on_event(Retweet(user=0, tweet=0, time=0.0))


class TestOnEvent:
    def test_immediate_mode_emits_recommendations(self):
        dataset, train = co_retweet_world()
        rec = SimGraphRecommender(tau=0.0)
        rec.fit(dataset, train)
        recs = rec.on_event(Retweet(user=0, tweet=10, time=1010.0))
        users = {r.user for r in recs}
        assert users  # co-retweeters of 0 get the new tweet
        assert 0 not in users  # the seed never gets recommended its own share

    def test_scores_are_propagation_probabilities(self):
        dataset, train = co_retweet_world()
        rec = SimGraphRecommender(tau=0.0)
        rec.fit(dataset, train)
        recs = rec.on_event(Retweet(user=0, tweet=10, time=1010.0))
        assert all(0.0 < r.score <= 1.0 for r in recs)
        assert all(r.tweet == 10 for r in recs)
        assert all(r.time == 1010.0 for r in recs)

    def test_target_filter(self):
        dataset, train = co_retweet_world()
        rec = SimGraphRecommender(tau=0.0)
        rec.fit(dataset, train, target_users={1})
        recs = rec.on_event(Retweet(user=0, tweet=10, time=1010.0))
        assert {r.user for r in recs} <= {1}

    def test_old_tweet_skipped(self):
        dataset, train = co_retweet_world()
        rec = SimGraphRecommender(tau=0.0, max_tweet_age=3600.0)
        rec.fit(dataset, train)
        # Tweet 10 created at t=1000; event 2 hours later is beyond age.
        recs = rec.on_event(Retweet(user=0, tweet=10, time=1000.0 + 7200.0))
        assert recs == []

    def test_min_score_floor(self):
        dataset, train = co_retweet_world()
        rec = SimGraphRecommender(tau=0.0, min_score=2.0)  # impossible floor
        rec.fit(dataset, train)
        assert rec.on_event(Retweet(user=0, tweet=10, time=1010.0)) == []

    def test_seeds_accumulate_across_events(self):
        dataset, train = co_retweet_world()
        rec = SimGraphRecommender(tau=0.0)
        rec.fit(dataset, train)
        first = rec.on_event(Retweet(user=0, tweet=10, time=1010.0))
        second = rec.on_event(Retweet(user=1, tweet=10, time=1020.0))
        # After user 1 also shares, user 1 must not be recommended.
        assert all(r.user != 1 for r in second)
        # And scores for remaining users cannot drop below the first pass.
        first_scores = {r.user: r.score for r in first}
        for r in second:
            if r.user in first_scores:
                assert r.score >= first_scores[r.user] - 1e-12


class TestScheduledMode:
    def test_events_buffered_until_due(self):
        dataset, train = co_retweet_world()
        policy = DelayPolicy(scale=10**6, min_delay=3600.0, max_delay=10**6)
        rec = SimGraphRecommender(tau=0.0, delay_policy=policy)
        rec.fit(dataset, train)
        assert rec.on_event(Retweet(user=0, tweet=10, time=1010.0)) == []

    def test_finalize_flushes(self):
        dataset, train = co_retweet_world()
        policy = DelayPolicy(scale=10**6, min_delay=3600.0, max_delay=10**6)
        rec = SimGraphRecommender(tau=0.0, delay_policy=policy)
        rec.fit(dataset, train)
        rec.on_event(Retweet(user=0, tweet=10, time=1010.0))
        recs = rec.finalize(end_time=2000.0)
        assert recs
        assert all(r.time == 2000.0 for r in recs)

    def test_immediate_mode_finalize_empty(self):
        dataset, train = co_retweet_world()
        rec = SimGraphRecommender(tau=0.0)
        rec.fit(dataset, train)
        rec.on_event(Retweet(user=0, tweet=10, time=1010.0))
        assert rec.finalize(end_time=2000.0) == []

    def test_batch_collects_all_retweeters_as_seeds(self):
        dataset, train = co_retweet_world()
        policy = DelayPolicy(scale=10**6, min_delay=3600.0, max_delay=10**6)
        rec = SimGraphRecommender(tau=0.0, delay_policy=policy)
        rec.fit(dataset, train)
        rec.on_event(Retweet(user=0, tweet=10, time=1010.0))
        rec.on_event(Retweet(user=1, tweet=10, time=1020.0))
        recs = rec.finalize(end_time=2000.0)
        assert all(r.user not in (0, 1) for r in recs)


class TestWarmStartConsistency:
    def test_incremental_equals_fresh(self):
        """Processing events one at a time must land on the same fixpoint
        as a cold propagation with the full seed set."""
        dataset, train = co_retweet_world()
        incremental = SimGraphRecommender(tau=0.0)
        incremental.fit(dataset, train)
        incremental.on_event(Retweet(user=0, tweet=10, time=1010.0))
        last = incremental.on_event(Retweet(user=1, tweet=10, time=1020.0))

        fresh = SimGraphRecommender(tau=0.0)
        fresh.fit(dataset, train)
        fresh._retweeters.setdefault(10, set()).add(0)
        direct = fresh.on_event(Retweet(user=1, tweet=10, time=1020.0))

        assert {r.user: pytest.approx(r.score, abs=1e-8) for r in last} == {
            r.user: r.score for r in direct
        }
