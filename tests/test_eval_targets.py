"""Tests for repro.eval.targets."""

import pytest

from repro.data.models import ActivityClass, Retweet
from repro.eval.targets import (
    TargetSelection,
    activity_thresholds,
    select_target_users,
)


def stream(counts: dict[int, int]) -> list[Retweet]:
    events = []
    t = 0.0
    for user, count in counts.items():
        for i in range(count):
            events.append(Retweet(user=user, tweet=i, time=t))
            t += 1.0
    return events


class TestActivityThresholds:
    def test_quantile_cutoffs(self):
        counts = {u: u + 1 for u in range(100)}  # 1..100
        low_max, moderate_max = activity_thresholds(counts, 0.5, 0.9)
        assert 45 <= low_max <= 55
        assert 85 <= moderate_max <= 95

    def test_zero_activity_ignored(self):
        counts = {0: 0, 1: 0, 2: 10, 3: 20}
        low_max, moderate_max = activity_thresholds(counts)
        assert low_max >= 1

    def test_empty_counts(self):
        assert activity_thresholds({}) == (1, 2)

    def test_ordering_invariant(self):
        counts = {u: 5 for u in range(10)}
        low_max, moderate_max = activity_thresholds(counts)
        assert low_max < moderate_max


class TestSelectTargetUsers:
    def test_explicit_thresholds(self):
        counts = {1: 5, 2: 50, 3: 500}
        selection = select_target_users(
            stream(counts), per_stratum=10, thresholds=(10, 100)
        )
        assert selection.stratum(ActivityClass.LOW) == {1}
        assert selection.stratum(ActivityClass.MODERATE) == {2}
        assert selection.stratum(ActivityClass.INTENSIVE) == {3}

    def test_per_stratum_cap(self):
        counts = {u: 5 for u in range(50)}
        selection = select_target_users(
            stream(counts), per_stratum=10, thresholds=(10, 100), seed=0
        )
        assert len(selection.stratum(ActivityClass.LOW)) == 10

    def test_small_stratum_taken_whole(self):
        counts = {1: 5, 2: 6}
        selection = select_target_users(
            stream(counts), per_stratum=100, thresholds=(10, 100)
        )
        assert selection.stratum(ActivityClass.LOW) == {1, 2}

    def test_deterministic_under_seed(self):
        counts = {u: 5 for u in range(60)}
        a = select_target_users(stream(counts), per_stratum=10,
                                thresholds=(10, 100), seed=3)
        b = select_target_users(stream(counts), per_stratum=10,
                                thresholds=(10, 100), seed=3)
        assert a.strata == b.strata

    def test_all_users_union(self):
        counts = {1: 5, 2: 50, 3: 500}
        selection = select_target_users(
            stream(counts), per_stratum=10, thresholds=(10, 100)
        )
        assert selection.all_users == {1, 2, 3}

    def test_counts_summary(self):
        counts = {1: 5, 2: 50, 3: 500}
        selection = select_target_users(
            stream(counts), per_stratum=10, thresholds=(10, 100)
        )
        assert selection.counts() == {
            "low": 1, "moderate": 1, "intensive": 1,
        }

    def test_quantile_mode_produces_three_strata(self, small_dataset):
        from repro.data import temporal_split

        split = temporal_split(small_dataset)
        selection = select_target_users(split.train, per_stratum=30)
        assert all(len(selection.stratum(s)) > 0 for s in ActivityClass.ALL)
