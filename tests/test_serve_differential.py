"""Differential suite: batched serving paths vs sequential ground truth.

Three contracts, each pinned exactly (full ``Recommendation`` tuples,
not counts):

* ``RecommendationService.ingest_batch`` delivers, event for event, what
  the same stream produces through sequential ``retweet`` calls — across
  scheduler on/off, reference/csr propagation, same-tweet repeats and a
  mid-stream SimGraph rebuild;
* the asyncio front-end at low load (no degradation, micro-batching on)
  returns the sequential responses for the same mixed post/retweet
  stream;
* the front-end over the sharded coordinator answers identically to the
  front-end over the single-process service.
"""

import pytest

from repro.serve import RetweetRequest, PostRequest, ServeConfig, serve_stream
from repro.service import RecommendationService, ServiceConfig
from repro.synth import SynthConfig, generate_dataset

SYNTH = SynthConfig(n_users=120, seed=9)


def build_service(**config_kwargs) -> RecommendationService:
    """A service primed with the synthetic corpus's history."""
    defaults = {"min_score": 1e-6}
    defaults.update(config_kwargs)
    dataset = generate_dataset(SYNTH)
    service = RecommendationService(ServiceConfig(**defaults))
    for user in dataset.users:
        service.add_user(user)
    for follower, followee, _ in dataset.follow_graph.edges():
        service.add_follow(follower, followee)
    for event in dataset.retweets():
        service.absorb_retweet(event.user, event.tweet)
    service.rebuild("from scratch")
    return service


def live_stream(
    service: RecommendationService, n_events: int = 40, repeats: int = 3
) -> list[tuple[int, int, float]]:
    """Post live tweets and derive a deterministic retweet stream.

    Every tweet is hit ``repeats`` times by different users, so streams
    carry the same-tweet collisions that force ``ingest_batch`` to flush
    mid-batch.
    """
    users = sorted(service.follow_graph.nodes())
    next_tweet = max(service.tweets, default=0) + 1
    n_tweets = max(1, n_events // repeats)
    t0 = 0.0
    for i in range(n_tweets):
        service.post_tweet(
            tweet_id=next_tweet + i, author=users[i % len(users)], at=t0
        )
    events = []
    at = t0
    for i in range(n_events):
        at += 60.0
        tweet = next_tweet + (i % n_tweets)
        user = users[(i * 7 + i // n_tweets) % len(users)]
        events.append((user, tweet, at))
    return events


def as_tuples(recs) -> list[tuple]:
    return [(r.user, r.tweet, r.time, r.score) for r in recs]


class TestIngestBatchEquality:
    @pytest.mark.parametrize("use_scheduler", [False, True])
    @pytest.mark.parametrize("prop_backend", ["reference", "csr"])
    def test_matches_sequential(self, use_scheduler, prop_backend):
        kwargs = {
            "use_scheduler": use_scheduler, "prop_backend": prop_backend,
        }
        sequential = build_service(**kwargs)
        batched = build_service(**kwargs)
        events = live_stream(sequential)
        live_stream(batched)  # identical posts

        expected = [
            as_tuples(sequential.retweet(user=u, tweet=t, at=at))
            for u, t, at in events
        ]
        got = []
        chunk = 7
        for start in range(0, len(events), chunk):
            for recs in batched.ingest_batch(events[start:start + chunk]):
                got.append(as_tuples(recs))
        assert got == expected
        # Scheduler backlogs drain identically too.
        final_at = events[-1][2]
        assert as_tuples(batched.flush(final_at)) == as_tuples(
            sequential.flush(final_at)
        )
        assert batched._known == sequential._known

    def test_mid_stream_rebuild(self):
        # A rebuild interval shorter than the stream span forces at
        # least one maintenance run inside a batch; the flush-before-
        # rebuild boundary must keep results identical.
        kwargs = {
            "use_scheduler": True,
            "prop_backend": "csr",
            "rebuild_interval": 600.0,
        }
        sequential = build_service(**kwargs)
        batched = build_service(**kwargs)
        events = live_stream(sequential, n_events=30)
        live_stream(batched)

        expected = [
            as_tuples(sequential.retweet(user=u, tweet=t, at=at))
            for u, t, at in events
        ]
        got = [
            as_tuples(recs)
            for recs in batched.ingest_batch(events)
        ]
        assert got == expected
        assert batched.stats.rebuilds == sequential.stats.rebuilds
        assert batched.stats.rebuilds >= 2

    def test_unknown_tweet_rejected_before_any_state_change(self):
        service = build_service(use_scheduler=False, prop_backend="csr")
        events = live_stream(service, n_events=6)
        known_before = set(service._known)
        bad = events[:3] + [(0, 10**9, events[-1][2])]
        from repro.exceptions import DatasetError

        with pytest.raises(DatasetError):
            service.ingest_batch(bad)
        assert set(service._known) == known_before
        assert service.stats.events_ingested == 0

    def test_empty_batch(self):
        service = build_service(use_scheduler=False)
        assert service.ingest_batch([]) == []


class TestServerVsDirect:
    def test_batched_server_matches_sequential_service(self):
        direct = build_service(use_scheduler=False, prop_backend="csr")
        served = build_service(use_scheduler=False, prop_backend="csr")
        events = live_stream(direct)
        live_stream(served)

        expected = [
            as_tuples(direct.retweet(user=u, tweet=t, at=at))
            for u, t, at in events
        ]
        responses = serve_stream(
            served,
            [RetweetRequest(user=u, tweet=t, at=at) for u, t, at in events],
            ServeConfig(max_batch=16, max_linger=0.0),
        )
        assert [r.status for r in responses] == ["ok"] * len(events)
        assert [as_tuples(r.notifications) for r in responses] == expected

    def test_mixed_posts_and_retweets(self):
        direct = build_service(use_scheduler=False, prop_backend="csr")
        served = build_service(use_scheduler=False, prop_backend="csr")
        users = sorted(direct.follow_graph.nodes())
        next_tweet = max(direct.tweets, default=0) + 1

        stream = []
        at = 0.0
        for i in range(8):
            at += 30.0
            stream.append(("post", next_tweet + i, users[i], at))
            for j in range(3):
                at += 30.0
                stream.append(
                    ("retweet", users[(i * 3 + j + 1) % len(users)],
                     next_tweet + i, at)
                )

        expected = []
        for kind, *rest in stream:
            if kind == "post":
                tweet, author, at = rest
                direct.post_tweet(tweet_id=tweet, author=author, at=at)
                expected.append([])
            else:
                user, tweet, at = rest
                expected.append(
                    as_tuples(direct.retweet(user=user, tweet=tweet, at=at))
                )

        requests = [
            PostRequest(tweet=r[0], author=r[1], at=r[2])
            if kind == "post"
            else RetweetRequest(user=r[0], tweet=r[1], at=r[2])
            for kind, *r in stream
        ]
        responses = serve_stream(
            served, requests, ServeConfig(max_batch=8, max_linger=0.0)
        )
        assert [as_tuples(r.notifications) for r in responses] == expected


class TestShardedServeSmoke:
    def test_sharded_server_matches_single(self):
        from repro.shard import ShardedRecommendationService

        dataset = generate_dataset(SYNTH)

        def populate(service):
            for user in dataset.users:
                service.add_user(user)
            for follower, followee, _ in dataset.follow_graph.edges():
                service.add_follow(follower, followee)
            for event in dataset.retweets():
                service.absorb_retweet(event.user, event.tweet)
            service.rebuild("from scratch")

        single = RecommendationService(
            ServiceConfig(min_score=1e-6, rebuild_strategy="delta")
        )
        populate(single)
        sharded = ShardedRecommendationService(
            n_shards=2,
            config=ServiceConfig(min_score=1e-6, rebuild_strategy="delta"),
            start_method="inprocess",
        )
        try:
            populate(sharded)
            events = live_stream(single, n_events=18)
            live_stream(sharded)
            requests = [
                RetweetRequest(user=u, tweet=t, at=at) for u, t, at in events
            ]
            config = ServeConfig(max_batch=8, max_linger=0.0)
            single_responses = serve_stream(single, requests, config)
            sharded_responses = serve_stream(sharded, requests, config)
            assert [as_tuples(r.notifications) for r in sharded_responses] == [
                as_tuples(r.notifications) for r in single_responses
            ]
        finally:
            sharded.close()
