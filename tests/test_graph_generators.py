"""Tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.graph.generators import community_preferential_graph


class TestValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            community_preferential_graph([1, 2], [0], seed=0)

    def test_bias_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            community_preferential_graph([1], [0], community_bias=1.5, seed=0)

    def test_trivial_sizes(self):
        g = community_preferential_graph([], [], seed=0)
        assert g.node_count == 0
        g = community_preferential_graph([3], [0], seed=0)
        assert g.node_count == 1
        assert g.edge_count == 0  # no valid target exists


class TestStructure:
    def test_all_nodes_present(self):
        g = community_preferential_graph([2] * 50, [0] * 50, seed=1)
        assert g.node_count == 50

    def test_no_self_loops_or_duplicates(self):
        g = community_preferential_graph([5] * 40, [i % 4 for i in range(40)],
                                         seed=2)
        seen = set()
        for u, v, _ in g.edges():
            assert u != v
            assert (u, v) not in seen
            seen.add((u, v))

    def test_out_degrees_close_to_target(self):
        degrees = [4] * 60
        g = community_preferential_graph(degrees, [0] * 60, seed=3)
        realized = [g.out_degree(n) for n in g.nodes()]
        # Resampling may drop a few edges but most targets are met.
        assert sum(realized) >= 0.9 * sum(degrees)

    def test_deterministic_under_seed(self):
        args = ([3] * 30, [i % 3 for i in range(30)])
        a = community_preferential_graph(*args, seed=7)
        b = community_preferential_graph(*args, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        args = ([3] * 30, [i % 3 for i in range(30)])
        a = community_preferential_graph(*args, seed=1)
        b = community_preferential_graph(*args, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())


class TestHomophilyAndTail:
    def test_community_bias_concentrates_edges(self):
        n = 200
        communities = [i % 4 for i in range(n)]
        degrees = [5] * n
        biased = community_preferential_graph(
            degrees, communities, community_bias=0.9, seed=5
        )
        uniform = community_preferential_graph(
            degrees, communities, community_bias=0.0, seed=5
        )

        def internal_fraction(g):
            internal = sum(
                1 for u, v, _ in g.edges() if communities[u] == communities[v]
            )
            return internal / max(g.edge_count, 1)

        assert internal_fraction(biased) > internal_fraction(uniform) + 0.3

    def test_preferential_attachment_skews_in_degree(self):
        n = 300
        g = community_preferential_graph([4] * n, [0] * n, seed=6)
        in_degrees = np.array([g.in_degree(v) for v in g.nodes()])
        # Preferential attachment: the hub collects far more than the mean.
        assert in_degrees.max() >= 3 * in_degrees.mean()
