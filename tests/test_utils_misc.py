"""Tests for repro.utils.timer and repro.utils.tables."""

import time

import pytest

from repro.utils.tables import format_value, render_table
from repro.utils.timer import Stopwatch, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_zero_before_exit(self):
        t = Timer()
        assert t.elapsed == 0.0


class TestStopwatch:
    def test_accumulates_laps(self):
        sw = Stopwatch()
        for _ in range(3):
            sw.start()
            sw.stop()
        assert sw.laps == 3
        assert sw.total >= 0.0

    def test_mean(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.01)
        sw.stop()
        assert sw.mean() == pytest.approx(sw.total)

    def test_mean_without_laps(self):
        assert Stopwatch().mean() == 0.0

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()


class TestFormatValue:
    def test_int_thousands(self):
        assert format_value(1234567) == "1,234,567"

    def test_float_precision(self):
        assert format_value(3.14159, precision=2) == "3.14"

    def test_small_float_scientific(self):
        assert "e" in format_value(1e-7)

    def test_bool_passthrough(self):
        assert format_value(True) == "True"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"

    def test_zero(self):
        assert format_value(0.0) == "0.0000"


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "name" in lines[0] and "value" in lines[0]
        assert "22" in lines[3]

    def test_title_rendered(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out
