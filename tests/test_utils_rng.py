"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceFactory, make_rng


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        factory = SeedSequenceFactory(42)
        a = factory.generator("alpha").random(8)
        b = factory.generator("alpha").random(8)
        assert np.array_equal(a, b)

    def test_different_names_different_streams(self):
        factory = SeedSequenceFactory(42)
        a = factory.generator("alpha").random(8)
        b = factory.generator("beta").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_different_streams(self):
        a = SeedSequenceFactory(1).generator("x").random(8)
        b = SeedSequenceFactory(2).generator("x").random(8)
        assert not np.array_equal(a, b)

    def test_stable_across_instances(self):
        # Name hashing must not depend on interpreter salt.
        a = SeedSequenceFactory(5).generator("stream").integers(0, 1000, 5)
        b = SeedSequenceFactory(5).generator("stream").integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_seed_property(self):
        assert SeedSequenceFactory(99).seed == 99

    def test_spawn_changes_streams(self):
        factory = SeedSequenceFactory(42)
        child = factory.spawn("child")
        assert child.seed != factory.seed
        a = factory.generator("x").random(4)
        b = child.generator("x").random(4)
        assert not np.array_equal(a, b)

    def test_spawn_is_deterministic(self):
        a = SeedSequenceFactory(42).spawn("c").generator("x").random(4)
        b = SeedSequenceFactory(42).spawn("c").generator("x").random(4)
        assert np.array_equal(a, b)


class TestMakeRng:
    def test_from_int(self):
        rng = make_rng(3)
        assert isinstance(rng, np.random.Generator)

    def test_from_none(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_same_seed_same_stream(self):
        assert np.array_equal(make_rng(11).random(4), make_rng(11).random(4))
